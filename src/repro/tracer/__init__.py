"""Multi-level I/O tracing, equivalent in role to the paper's Recorder tool.

The tracer captures every call at every layer of the simulated I/O stack
(application → HDF5/NetCDF/ADIOS/Silo → MPI-IO → POSIX, plus MPI
communication events) with entry/exit timestamps, the function name, and
all arguments except data buffers — the same record shape Recorder
produces.  Each record also carries *issuer attribution*: which layer was
executing when the call was made, which powers the Figure 3 breakdown of
metadata operations by layer.
"""

from repro.tracer.events import (
    TraceRecord,
    MPIEvent,
    Layer,
    OpClass,
    classify_posix_op,
    DATA_OPS,
    METADATA_OPS,
    COMMIT_OPS,
)
from repro.tracer.columnar import (
    RTRC_MAGIC,
    RTRC_VERSION,
    ColumnarTrace,
    read_rtrc,
    write_rtrc,
)
from repro.tracer.recorder import Recorder
from repro.tracer.recorder_format import from_recorder_text, to_recorder_text
from repro.tracer.profile import FileProfile, TraceProfile, profile_trace
from repro.tracer.synth import synthetic_columnar_trace
from repro.tracer.trace import Trace

__all__ = [
    "ColumnarTrace",
    "RTRC_MAGIC",
    "RTRC_VERSION",
    "read_rtrc",
    "write_rtrc",
    "synthetic_columnar_trace",
    "TraceRecord",
    "MPIEvent",
    "Layer",
    "OpClass",
    "classify_posix_op",
    "DATA_OPS",
    "METADATA_OPS",
    "COMMIT_OPS",
    "Recorder",
    "Trace",
    "from_recorder_text",
    "to_recorder_text",
    "FileProfile",
    "TraceProfile",
    "profile_trace",
]
