"""Seeded synthetic columnar traces for scaling benchmarks and CI.

Real app traces top out around 10^4 ops; the trace-scaling gate needs
10^6–10^7.  :func:`synthetic_columnar_trace` builds a
:class:`~repro.tracer.columnar.ColumnarTrace` of that size directly in
numpy — no per-record objects — with a realistic op mix that exercises
every branch of offset reconstruction:

* per-(rank, file) private streams with explicit ``pwrite``/``pread``,
  sequential ``write``/``read``, and ``SEEK_SET`` seeks;
* a shared ``O_APPEND`` log written by every rank (append landings);
* ``fsync`` mid-stream and ``close`` at the end, so commit/session
  visibility windows are non-trivial;
* mostly-disjoint strided extents plus a bounded number of seeded
  collision pairs, so the overlap pair count stays linear in the trace
  size (a quadratic pair blowup would benchmark the sweep's output
  size, not the reconstruction).

Everything is a pure function of ``(n_ops, nranks, files_per_rank,
seed, collisions)``, so the CI gate and the committed baseline see the
same trace.
"""

from __future__ import annotations

import numpy as np

from repro.posix import flags as F
from repro.tracer.columnar import (
    I64_NONE,
    LAYER_TABLE,
    RECORD_COLUMNS,
    ColumnarTrace,
)

#: function table of every synthetic trace, in interning order
SYNTH_FUNCS = ("open", "pwrite", "pread", "write", "read", "lseek",
               "fsync", "close")
_FID = {name: i for i, name in enumerate(SYNTH_FUNCS)}
_POSIX_ID = LAYER_TABLE.index("posix")
_BLOCK = 4096
_LOG_EVERY = 20  # every 20th data op appends to the shared log
#: explicit (pwrite/pread) extents live above 2^42 while sequential
#: write/read streams march upward from zero — the two regions cannot
#: meet, so overlap pairs stay bounded by the seeded collisions (and
#: >2^32 offsets exercise the full 64-bit offset columns)
_EXPLICIT_BASE = 1 << 42


def synthetic_columnar_trace(n_ops: int, *, nranks: int = 8,
                             files_per_rank: int = 4, seed: int = 0,
                             collisions: int = 256) -> ColumnarTrace:
    """A seeded ``n_ops``-data-op trace as parallel columns.

    ``collisions`` caps the number of deliberately overlapping extent
    pairs (conflict candidates); every other extent is a unique strided
    block of its file.
    """
    rng = np.random.default_rng(seed)
    s_priv = nranks * files_per_rank
    s_tot = s_priv + nranks  # plus one shared-log fd per rank

    # per-stream identity (private streams first, then the log fds)
    st_rank = np.concatenate([np.arange(s_priv) % nranks,
                              np.arange(nranks)])
    st_fd = np.concatenate([8 + np.arange(s_priv) // nranks,
                            np.full(nranks, 100)])
    st_path = np.concatenate([np.arange(s_priv),
                              np.full(nranks, s_priv)])
    st_flags = np.concatenate([
        np.full(s_priv, F.O_RDWR | F.O_CREAT),
        np.full(nranks, F.O_WRONLY | F.O_CREAT | F.O_APPEND)])
    paths = [f"/scratch/rank{s % nranks}/f{s // nranks:03d}.dat"
             for s in range(s_priv)] + ["/scratch/shared.log"]

    # assign each data op to a stream; round-robin interleaves ranks
    i = np.arange(n_ops)
    is_log = (i % _LOG_EVERY) == (_LOG_EVERY - 1)
    j = np.cumsum(~is_log) - 1  # index among private ops
    stream = np.where(is_log, s_priv + (i // _LOG_EVERY) % nranks,
                      j % s_priv)
    blk = (j // s_priv) * _BLOCK  # fresh block per private op
    sizes = rng.integers(512, _BLOCK + 1, size=n_ops)

    u = rng.random(n_ops)
    fid = np.full(n_ops, _FID["pwrite"], dtype=np.int64)
    fid[u >= 0.45] = _FID["pread"]
    fid[u >= 0.70] = _FID["write"]
    fid[u >= 0.85] = _FID["read"]
    fid[u >= 0.95] = _FID["lseek"]
    fid[is_log] = _FID["write"]
    explicit = (fid == _FID["pwrite"]) | (fid == _FID["pread"])
    is_seek = fid == _FID["lseek"]

    # row layout: opens | first half of ops | fsyncs | rest | closes
    h = n_ops // 2
    n_rows = n_ops + 3 * s_tot
    data_rows = s_tot + i
    data_rows[h:] += s_tot
    open_rows = np.arange(s_tot)
    fsync_rows = s_tot + h + np.arange(s_tot)
    close_rows = n_rows - s_tot + np.arange(s_tot)

    cols = {name: (np.full(n_rows, I64_NONE, dtype=dtype)
                   if np.dtype(dtype).itemsize == 8
                   and np.dtype(dtype).kind == "i"
                   else np.zeros(n_rows, dtype=dtype))
            for name, dtype in RECORD_COLUMNS}
    cols["rid"] = np.arange(n_rows, dtype=np.int64)
    cols["tstart"] = np.arange(n_rows, dtype=np.float64) * 1e-6
    cols["tend"] = cols["tstart"] + 5e-7
    cols["layer_id"] = np.full(n_rows, _POSIX_ID, dtype=np.int16)
    cols["issuer_id"] = np.full(n_rows, _POSIX_ID, dtype=np.int16)
    cols["path_id"] = np.full(n_rows, -1, dtype=np.int32)
    cols["func_id"] = np.zeros(n_rows, dtype=np.int32)
    cols["rank"] = np.zeros(n_rows, dtype=np.int64)
    cols["result_i"] = np.zeros(n_rows, dtype=np.int64)

    for rows, func in ((open_rows, "open"), (fsync_rows, "fsync"),
                       (close_rows, "close")):
        cols["func_id"][rows] = _FID[func]
        cols["rank"][rows] = st_rank
        cols["fd"][rows] = st_fd
        cols["path_id"][rows] = st_path
    cols["flags"][open_rows] = st_flags
    cols["size_at_open"][open_rows] = 0
    cols["result_i"][open_rows] = st_fd

    cols["func_id"][data_rows] = fid
    cols["rank"][data_rows] = st_rank[stream]
    cols["fd"][data_rows] = st_fd[stream]
    cols["count"][data_rows[~is_seek]] = sizes[~is_seek]
    cols["result_i"][data_rows[~is_seek]] = sizes[~is_seek]
    cols["path_id"][data_rows[explicit]] = st_path[stream[explicit]] \
        .astype(np.int32)
    cols["offset"][data_rows[explicit]] = _EXPLICIT_BASE + blk[explicit]
    cols["arg_offset"][data_rows[is_seek]] = blk[is_seek]
    cols["whence"][data_rows[is_seek]] = F.SEEK_SET
    cols["result_i"][data_rows[is_seek]] = blk[is_seek]

    # seeded collisions: copy (path, offset) from a write onto another
    # explicit op so exactly these pairs can overlap and conflict
    writes = np.flatnonzero(fid == _FID["pwrite"])
    npairs = min(collisions, writes.size // 2, explicit.sum() // 2)
    if npairs:
        a = rng.choice(writes, size=npairs, replace=False)
        pool = np.setdiff1d(np.flatnonzero(explicit), a)
        b = rng.choice(pool, size=npairs, replace=False)
        cols["path_id"][data_rows[b]] = cols["path_id"][data_rows[a]]
        cols["offset"][data_rows[b]] = cols["offset"][data_rows[a]]

    return ColumnarTrace(
        nranks=nranks,
        meta={"app": "synthetic", "n_ops": int(n_ops),
              "seed": int(seed), "collisions": int(npairs)},
        columns=cols, funcs=list(SYNTH_FUNCS), paths=paths)


__all__ = ["SYNTH_FUNCS", "synthetic_columnar_trace"]
