"""Recorder-style text trace format.

The paper's published data ships per-rank text listings of Recorder
records ("entry/exit time stamps, function name, and all function
parameters, except the data buffer content").  This module writes and
parses an equivalent flat text format:

    # repro-recorder-text v1 nranks=4
    # meta application=FLASH io_library=HDF5
    R 0 0.000123 0.000145 posix app open path=/f fd=3 flags=66
    R 0 0.000150 0.000170 posix app write fd=3 count=128
    M 0 0.000200 0.000230 barrier member coll:0:barrier

Deliberately, the format carries **no simulator ground truth**
(``gt_offset`` is dropped): round-tripping a trace through it and
getting identical analysis results demonstrates that the pipeline uses
only what a real Recorder capture contains.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.errors import TraceError
from repro.tracer.events import Layer, MPIEvent, TraceRecord
from repro.tracer.trace import Trace

_HEADER_PREFIX = "# repro-recorder-text v1"


def _encode_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    return str(value).replace(" ", "%20")


def _decode_value(text: str) -> Any:
    text = text.replace("%20", " ")
    for caster in (int, float):
        try:
            return caster(text)
        except ValueError:
            continue
    return text


def _encode_key(key: tuple) -> str:
    return ":".join(_encode_value(part) for part in key)


def _decode_key(text: str) -> tuple:
    return tuple(_decode_value(p) for p in text.split(":"))


def to_recorder_text(trace: Trace, path: str | Path) -> None:
    """Write the trace in the flat Recorder-style text format."""
    p = Path(path)
    with p.open("w") as fh:
        fh.write(f"{_HEADER_PREFIX} nranks={trace.nranks}\n")
        meta = " ".join(f"{k}={_encode_value(v)}"
                        for k, v in sorted(trace.meta.items())
                        if isinstance(v, (str, int, float, bool)))
        fh.write(f"# meta {meta}\n")
        # lint: allow-per-op-loop (text serialization is per-record)
        for r in trace.records:
            fields = [f"R {r.rank} {r.tstart:.9f} {r.tend:.9f}",
                      r.layer.value, r.issuer.value, r.func]
            kv = []
            if r.path is not None:
                kv.append(f"path={_encode_value(r.path)}")
            if r.fd is not None:
                kv.append(f"fd={r.fd}")
            if r.offset is not None:
                kv.append(f"offset={r.offset}")
            if r.count is not None:
                kv.append(f"count={r.count}")
            for key, value in sorted(r.args.items()):
                if isinstance(value, (str, int, float, bool)):
                    kv.append(f"arg.{key}={_encode_value(value)}")
            fh.write(" ".join(fields + kv) + "\n")
        for e in trace.mpi_events:
            fh.write(f"M {e.rank} {e.tstart:.9f} {e.tend:.9f} "
                     f"{e.kind} {e.role} {_encode_key(e.match_key)}\n")


def from_recorder_text(path: str | Path) -> Trace:
    """Parse a Recorder-style text trace back into a :class:`Trace`."""
    p = Path(path)
    lines = p.read_text().splitlines()
    if not lines or not lines[0].startswith(_HEADER_PREFIX):
        raise TraceError(f"{p} is not a repro-recorder-text file")
    nranks = int(lines[0].split("nranks=")[1])
    meta: dict[str, Any] = {}
    records: list[TraceRecord] = []
    events: list[MPIEvent] = []
    rid = 0
    eid = 0
    for line in lines[1:]:
        if not line.strip():
            continue
        if line.startswith("# meta"):
            for token in line[len("# meta"):].split():
                key, _, raw = token.partition("=")
                meta[key] = _decode_value(raw)
            continue
        if line.startswith("#"):
            continue
        tokens = line.split()
        tag = tokens[0]
        if tag == "R":
            rank, tstart, tend = (int(tokens[1]), float(tokens[2]),
                                  float(tokens[3]))
            layer, issuer, func = tokens[4], tokens[5], tokens[6]
            rec = TraceRecord(rid=rid, rank=rank, layer=Layer(layer),
                              issuer=Layer(issuer), func=func,
                              tstart=tstart, tend=tend)
            rid += 1
            for token in tokens[7:]:
                key, _, raw = token.partition("=")
                value = _decode_value(raw)
                if key == "path":
                    rec.path = str(value)
                elif key == "fd":
                    rec.fd = int(value)
                elif key == "offset":
                    rec.offset = int(value)
                elif key == "count":
                    rec.count = int(value)
                elif key.startswith("arg."):
                    rec.args[key[4:]] = value
                else:
                    raise TraceError(f"unknown field {key!r} in {p}")
            records.append(rec)
        elif tag == "M":
            events.append(MPIEvent(
                eid=eid, rank=int(tokens[1]), tstart=float(tokens[2]),
                tend=float(tokens[3]), kind=tokens[4], role=tokens[5],
                match_key=_decode_key(tokens[6])))
            eid += 1
        else:
            raise TraceError(f"unknown line tag {tag!r} in {p}")
    return Trace(nranks=nranks, records=records, mpi_events=events,
                 meta=meta)
