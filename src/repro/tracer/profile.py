"""Darshan-style per-file I/O profiling of a trace.

The paper's related work (§2.1) contrasts Recorder-style full tracing
with Darshan-style *characterization* — compact per-file counters kept
instead of full logs.  This module derives exactly those counters from a
trace, so users get the familiar profile view (op counts, byte totals,
access-size histogram, time in I/O, shared-vs-unique file split)
alongside the consistency analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.tracer.events import DATA_OPS, Layer, METADATA_OPS, OpClass
from repro.tracer.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing-only import (avoids a
    # cycle: repro.core.report imports this module)
    from repro.core.records import AccessRecord

#: access-size histogram bucket upper bounds (bytes); last is open-ended
SIZE_BUCKETS = (100, 1024, 10 * 1024, 100 * 1024, 1024 * 1024,
                4 * 1024 * 1024)


def bucket_label(index: int) -> str:
    names = ["0-100", "100-1K", "1K-10K", "10K-100K", "100K-1M",
             "1M-4M", "4M+"]
    return names[index]


def size_bucket(nbytes: int) -> int:
    for i, bound in enumerate(SIZE_BUCKETS):
        if nbytes <= bound:
            return i
    return len(SIZE_BUCKETS)


@dataclass
class FileProfile:
    """Darshan-like counters for one file."""

    path: str
    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    metadata_ops: int = 0
    opens: int = 0
    time_in_io: float = 0.0
    ranks: set[int] = field(default_factory=set)
    size_histogram: list[int] = field(
        default_factory=lambda: [0] * (len(SIZE_BUCKETS) + 1))
    max_offset: int = 0

    @property
    def is_shared(self) -> bool:
        return len(self.ranks) > 1

    @property
    def total_ops(self) -> int:
        return self.reads + self.writes + self.metadata_ops + self.opens


@dataclass
class TraceProfile:
    """Whole-run roll-up."""

    files: dict[str, FileProfile] = field(default_factory=dict)
    wallclock: float = 0.0

    @property
    def shared_files(self) -> list[FileProfile]:
        return [f for f in self.files.values() if f.is_shared]

    @property
    def unique_files(self) -> list[FileProfile]:
        return [f for f in self.files.values() if not f.is_shared]

    @property
    def total_bytes(self) -> tuple[int, int]:
        rd = sum(f.bytes_read for f in self.files.values())
        wr = sum(f.bytes_written for f in self.files.values())
        return rd, wr

    @property
    def time_in_io(self) -> float:
        return sum(f.time_in_io for f in self.files.values())

    def histogram(self) -> list[int]:
        total = [0] * (len(SIZE_BUCKETS) + 1)
        for f in self.files.values():
            for i, n in enumerate(f.size_histogram):
                total[i] += n
        return total

    def to_text(self) -> str:
        from repro.util.formatting import human_bytes, human_time
        from repro.util.tables import AsciiTable

        rd, wr = self.total_bytes
        lines = [
            f"Darshan-style profile: {len(self.files)} files "
            f"({len(self.shared_files)} shared, "
            f"{len(self.unique_files)} rank-unique); "
            f"read {human_bytes(rd)}, wrote {human_bytes(wr)}; "
            f"{human_time(self.time_in_io)} in I/O of "
            f"{human_time(self.wallclock)} wallclock"]
        hist = AsciiTable(["access size", "count"],
                          title="Access-size histogram")
        for i, count in enumerate(self.histogram()):
            if count:
                hist.add_row(bucket_label(i), count)
        lines.append(hist.render())
        table = AsciiTable(["file", "ranks", "reads", "writes",
                            "bytes", "meta ops"],
                           title="Busiest files")
        busiest = sorted(self.files.values(),
                         key=lambda f: -(f.bytes_read + f.bytes_written))
        for f in busiest[:10]:
            table.add_row(f.path, len(f.ranks), f.reads, f.writes,
                          human_bytes(f.bytes_read + f.bytes_written),
                          f.metadata_ops)
        lines.append(table.render())
        return "\n".join(lines)


def profile_trace(trace: Trace,
                  accesses: "list[AccessRecord] | None" = None
                  ) -> TraceProfile:
    """Build the per-file counter roll-up from a trace.

    Pass the resolved ``accesses`` (from offset reconstruction) to also
    populate ``max_offset``; counters themselves need only the raw
    records.
    """
    profile = TraceProfile()

    def file_of(path: str) -> FileProfile:
        fp = profile.files.get(path)
        if fp is None:
            fp = FileProfile(path=path)
            profile.files[path] = fp
        return fp

    t_lo = float("inf")
    t_hi = 0.0
    # lint: allow-per-op-loop (profiling summary; object path)
    for rec in trace.records:
        t_lo = min(t_lo, rec.tstart)
        t_hi = max(t_hi, rec.tend)
        if rec.layer != Layer.POSIX or rec.path is None:
            continue
        fp = file_of(rec.path)
        fp.time_in_io += rec.duration
        # every touch counts for the shared/unique split: a file opened
        # or stat'd by many ranks but written by one is still shared
        fp.ranks.add(rec.rank)
        if rec.func in DATA_OPS:
            n = int(rec.count or 0)
            fp.size_histogram[size_bucket(n)] += 1
            if rec.op_class is OpClass.READ:
                fp.reads += 1
                fp.bytes_read += n
            else:
                fp.writes += 1
                fp.bytes_written += n
        elif rec.op_class is OpClass.OPEN:
            fp.opens += 1
        elif rec.func in METADATA_OPS:
            fp.metadata_ops += 1
    profile.wallclock = t_hi - t_lo if trace.records else 0.0

    if accesses:
        for acc in accesses:
            fp = profile.files.get(acc.path)
            if fp is not None:
                fp.max_offset = max(fp.max_offset, acc.stop)
    return profile
