"""The per-run trace collector.

One :class:`Recorder` instance is shared by all ranks of a simulated run
(safe because the engine runs one rank at a time).  The POSIX/MPI-IO/I-O
library layers call :meth:`record` around each operation; MPI communication
calls :meth:`record_mpi`.  Layer attribution works with a per-rank stack:
entering a library pushes its layer, so any nested call knows who issued it.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro.tracer.events import Layer, MPIEvent, TraceRecord
from repro.tracer.trace import Trace


class Recorder:
    """Collects :class:`TraceRecord`/:class:`MPIEvent` streams for a run."""

    def __init__(self, nranks: int):
        self.nranks = int(nranks)
        self._records: list[list[TraceRecord]] = [[] for _ in range(nranks)]
        self._mpi_events: list[list[MPIEvent]] = [[] for _ in range(nranks)]
        self._stacks: list[list[Layer]] = [[Layer.APP] for _ in range(nranks)]
        self._origins: list[float | None] = [None] * nranks
        self._next_rid = 0
        self._next_eid = 0

    # -- layer attribution -------------------------------------------------------

    @contextmanager
    def in_layer(self, rank: int, layer: Layer) -> Iterator[None]:
        """Mark that ``rank`` is executing inside ``layer`` (re-entrant)."""
        stack = self._stacks[rank]
        stack.append(layer)
        try:
            yield
        finally:
            stack.pop()

    def issuer(self, rank: int) -> Layer:
        """The layer currently executing on ``rank`` (who issues new calls)."""
        return self._stacks[rank][-1]

    # -- record ingestion ----------------------------------------------------------

    def record(self, rank: int, layer: Layer, func: str,
               tstart: float, tend: float, *,
               path: str | None = None, fd: int | None = None,
               offset: int | None = None, count: int | None = None,
               args: dict[str, Any] | None = None, result: Any = None,
               gt_offset: int | None = None) -> TraceRecord:
        rec = TraceRecord(
            rid=self._next_rid, rank=rank, layer=layer,
            issuer=self.issuer(rank), func=func,
            tstart=tstart, tend=tend, path=path, fd=fd, offset=offset,
            count=count, args=dict(args or {}), result=result,
            gt_offset=gt_offset)
        self._next_rid += 1
        self._records[rank].append(rec)
        return rec

    def record_mpi(self, rank: int, kind: str, match_key: tuple, role: str,
                   tstart: float, tend: float) -> MPIEvent:
        ev = MPIEvent(eid=self._next_eid, rank=rank, kind=kind,
                      match_key=match_key, role=role,
                      tstart=tstart, tend=tend)
        self._next_eid += 1
        self._mpi_events[rank].append(ev)
        return ev

    # -- barrier-based timestamp alignment ------------------------------------------

    def set_time_origin(self, rank: int, t_local: float) -> None:
        """Fix ``rank``'s zero point (the exit of the run's first barrier).

        The paper aligns node clocks by performing a barrier at startup and
        treating each rank's barrier-exit local time as ``time = 0``; this
        implements exactly that adjustment.
        """
        if self._origins[rank] is None:
            self._origins[rank] = float(t_local)

    # -- finalization ---------------------------------------------------------------

    def build_trace(self, *, meta: dict[str, Any] | None = None) -> Trace:
        """Produce the immutable aligned trace for analysis."""
        records: list[TraceRecord] = []
        events: list[MPIEvent] = []
        for rank in range(self.nranks):
            origin = self._origins[rank] or 0.0
            records.extend(r.shifted(-origin) for r in self._records[rank])
            events.extend(e.shifted(-origin) for e in self._mpi_events[rank])
        records.sort(key=lambda r: (r.tstart, r.rank, r.rid))
        events.sort(key=lambda e: (e.tstart, e.rank, e.eid))
        # Renumber ids to the sorted position.  Ingestion order within one
        # rank is preserved (ties sort by the provisional id), so this is a
        # pure relabeling — and it makes ids a function of the trace
        # *content* rather than of global interleaving, which is what lets
        # partitioned per-worker shards merge byte-identically to a
        # single-process run (see repro.partition.merge).
        for i, r in enumerate(records):
            r.rid = i
        for i, e in enumerate(events):
            e.eid = i
        return Trace(nranks=self.nranks, records=records, mpi_events=events,
                     meta=dict(meta or {}))
