"""Declarative fault plans: what goes wrong, and when.

A :class:`FaultPlan` is a frozen, JSON-able description of every fault a
run will suffer: server crashes (scheduled by virtual time or by global
operation count), write-back cache drops, a transient per-operation
server error rate, and the two deliberately-broken recovery modes used
to prove the crash-consistency checker catches real bugs.  Plans carry
their own seed; identical ``(seed, plan)`` pairs reproduce identical
fault schedules, which is what makes chaos reports byte-stable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Any

from repro.errors import PFSError


class FaultKind(str, enum.Enum):
    """The fault taxonomy (see ``docs/fault_model.md``)."""

    OST_CRASH = "ost-crash"        # one data server loses volatile state
    MDS_CRASH = "mds-crash"        # the metadata server restarts
    CACHE_DROP = "cache-drop"      # a client's write-back buffer is lost
    TRANSIENT_ERROR = "transient"  # one server op fails, retryable

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class CrashEvent:
    """One scheduled server crash + restart.

    ``target`` is ``"mds"`` or ``"ost:<index>"``.  Exactly one of
    ``at_time`` (virtual seconds) and ``at_op`` (global client-op count)
    selects the trigger; ``downtime`` is how long the server stays
    unreachable (clients see transient errors and retry).
    """

    target: str
    at_time: float | None = None
    at_op: int | None = None
    downtime: float = 2e-3

    def __post_init__(self) -> None:
        if (self.at_time is None) == (self.at_op is None):
            raise PFSError(
                "CrashEvent needs exactly one of at_time / at_op")
        if self.target != "mds" and not self.target.startswith("ost:"):
            raise PFSError(
                f"CrashEvent target must be 'mds' or 'ost:<i>', "
                f"got {self.target!r}")
        if self.downtime < 0:
            raise PFSError("CrashEvent downtime must be >= 0")

    @property
    def kind(self) -> FaultKind:
        return (FaultKind.MDS_CRASH if self.target == "mds"
                else FaultKind.OST_CRASH)

    @property
    def ost_index(self) -> int | None:
        if self.target == "mds":
            return None
        return int(self.target.split(":", 1)[1])

    def to_dict(self) -> dict[str, Any]:
        return {"target": self.target, "at_time": self.at_time,
                "at_op": self.at_op, "downtime": self.downtime}


@dataclass(frozen=True)
class CacheDropEvent:
    """Lose one client's unflushed write-back buffers (node failure
    before the data ever reached a server)."""

    client: int
    at_time: float | None = None
    at_op: int | None = None

    def __post_init__(self) -> None:
        if (self.at_time is None) == (self.at_op is None):
            raise PFSError(
                "CacheDropEvent needs exactly one of at_time / at_op")

    def to_dict(self) -> dict[str, Any]:
        return {"client": self.client, "at_time": self.at_time,
                "at_op": self.at_op}


@dataclass(frozen=True)
class FaultPlan:
    """Everything that will go wrong in one run.

    ``error_rate`` injects seeded transient failures on that fraction of
    server operations (capped by ``max_errors``); every failure is
    retryable and the client's :class:`~repro.pfs.config.RetryPolicy`
    decides whether the run rides it out.  ``broken_recovery`` disables
    whole-write rollback on OST crash so torn stripes surface — a
    deliberately buggy recovery used to prove the checker catches it.
    """

    name: str = "fault-free"
    seed: int = 0
    crashes: tuple[CrashEvent, ...] = ()
    cache_drops: tuple[CacheDropEvent, ...] = ()
    error_rate: float = 0.0
    max_errors: int | None = None
    flush_delay: float = 0.0
    broken_recovery: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate <= 1.0:
            raise PFSError("error_rate must be in [0, 1]")
        if self.flush_delay < 0:
            raise PFSError("flush_delay must be >= 0")

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing (fault-free baseline)."""
        return (not self.crashes and not self.cache_drops
                and self.error_rate == 0.0 and self.flush_delay == 0.0)

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON form (stable key order via sort at dump time)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "crashes": [c.to_dict() for c in self.crashes],
            "cache_drops": [d.to_dict() for d in self.cache_drops],
            "error_rate": self.error_rate,
            "max_errors": self.max_errors,
            "flush_delay": self.flush_delay,
            "broken_recovery": self.broken_recovery,
        }


@dataclass
class InjectedFault:
    """One fault the injector actually fired (the audit log entry)."""

    kind: FaultKind
    t: float
    op_count: int
    target: str = ""
    detail: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind.value, "t": self.t,
                "op_count": self.op_count, "target": self.target,
                "detail": self.detail}


@dataclass
class FaultStats:
    """Aggregate injector counters for one run."""

    errors_injected: int = 0
    crashes_fired: int = 0
    cache_drops_fired: int = 0
    extents_discarded: int = 0
    extents_torn: int = 0

    def to_dict(self) -> dict[str, int]:
        return {"errors_injected": self.errors_injected,
                "crashes_fired": self.crashes_fired,
                "cache_drops_fired": self.cache_drops_fired,
                "extents_discarded": self.extents_discarded,
                "extents_torn": self.extents_torn}

