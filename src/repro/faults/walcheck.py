"""Acked-but-unflushed WAL loss accounting (the iFast risk audit).

The ``wal`` checkpoint proxy (:func:`repro.apps.checkpoint.main_wal`)
acknowledges a checkpoint record as soon as the append to the
rank-local write-ahead log returns, and flushes the log to immutable
segment objects asynchronously.  The crash checker
(:mod:`repro.faults.checker`) judges each *store* against its
semantics contract — but the WAL protocol's promise is cross-file:
**every acked record survives somewhere**, either in the WAL file
itself or in a durably flushed segment.  This module audits that
promise after a chaos replay.

An acked record counts as *lost* when its bytes in the settled WAL no
longer match what was written **and** no durable segment covers its
log range.  On a healthy deployment the WAL lives on host-local
storage — modelled by mapping the WAL directory to strong semantics
via ``PFSConfig.semantics_overrides`` — and the audit must count zero
losses under every fault plan (losing strong-acked data is already a
checker violation).  Re-run with the WAL on the shared store's own
model and the audit quantifies exactly the acked-but-unflushed window
the paper warns about: data the semantics contract *legally* discards
even though the application saw an ack, which is why the checker stays
silent while the audit does not.

Segment coverage needs no knowledge of the proxy's batching: each
rank's segments absorb its log front-to-back, so the running sum of a
rank's segment sizes, in trace order, maps segment bytes to WAL
offsets.  A segment is durable when its settled content matches every
payload written to it.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.offsets import reconstruct_offsets

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pfs.replay import ReplayResult
    from repro.tracer.trace import Trace


@dataclass(frozen=True)
class LostAckedRecord:
    """One acknowledged WAL record that survives nowhere."""

    rank: int
    path: str
    offset: int
    nbytes: int
    t_acked: float

    def to_dict(self) -> dict:
        return {"rank": self.rank, "path": self.path,
                "offset": self.offset, "nbytes": self.nbytes,
                "t_acked": self.t_acked}


@dataclass
class WalAudit:
    """The acked-durable ledger of one replayed WAL run."""

    wal_dir: str
    seg_dir: str
    acked_records: int = 0
    acked_bytes: int = 0
    flushed_segments: int = 0
    flushed_bytes: int = 0
    survived_in_wal: int = 0
    covered_by_segment: int = 0
    #: WAL appends that failed in the replay — the application never
    #: saw an ack, so they owe nothing
    unacked_failures: int = 0
    lost: list[LostAckedRecord] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Every acknowledged record survives in the WAL or a segment."""
        return not self.lost

    @property
    def lost_bytes(self) -> int:
        return sum(r.nbytes for r in self.lost)

    def to_dict(self) -> dict:
        return {
            "wal_dir": self.wal_dir, "seg_dir": self.seg_dir,
            "acked_records": self.acked_records,
            "acked_bytes": self.acked_bytes,
            "flushed_segments": self.flushed_segments,
            "flushed_bytes": self.flushed_bytes,
            "survived_in_wal": self.survived_in_wal,
            "covered_by_segment": self.covered_by_segment,
            "unacked_failures": self.unacked_failures,
            "lost": [r.to_dict() for r in self.lost],
            "lost_bytes": self.lost_bytes,
            "ok": self.ok,
        }


def audit_wal(trace: "Trace", result: "ReplayResult",
              settle_order: str = "close") -> WalAudit | None:
    """Audit acked-but-unflushed loss after a (possibly faulty) replay.

    Returns ``None`` when the trace does not describe a WAL run (its
    ``meta["options"]`` lacks ``wal_dir``/``seg_dir``).
    """
    # runtime import: replay imports the checker from this package, so
    # a module-level import here would close the cycle
    from repro.pfs.replay import synth_payload

    opts = trace.meta.get("options") or {}
    wal_dir, seg_dir = opts.get("wal_dir"), opts.get("seg_dir")
    if not wal_dir or not seg_dir:
        return None
    audit = WalAudit(wal_dir=str(wal_dir), seg_dir=str(seg_dir))
    wal_prefix = str(wal_dir).rstrip("/") + "/"
    seg_prefix = str(seg_dir).rstrip("/") + "/"
    sim = result.simulator
    assert sim is not None

    failed = {(f.rank, f.path, f.tstart) for f in result.failed_ops}
    settled: dict[str, bytes] = {}

    def content(path: str) -> bytes:
        if path not in settled:
            store = sim.files.get(path)
            settled[path] = store.settle(settle_order) if store else b""
        return settled[path]

    def matches(acc) -> bool:
        data = content(acc.path)[acc.offset:acc.offset + acc.nbytes]
        return data == synth_payload(acc.rid, acc.nbytes)

    # segment coverage: per rank, the running sum of segment sizes maps
    # segment bytes onto WAL offsets; only durable segments cover
    cursor: dict[int, int] = {}
    covered: dict[int, list[tuple[int, int]]] = {}
    wal_writes = []
    for acc in reconstruct_offsets(trace.records):
        if not acc.is_write or acc.nbytes <= 0:
            continue
        if acc.path.startswith(wal_prefix):
            wal_writes.append(acc)
        elif acc.path.startswith(seg_prefix):
            lo = cursor.get(acc.rank, 0)
            cursor[acc.rank] = lo + acc.nbytes
            audit.flushed_segments += 1
            if (acc.rank, acc.path, acc.tstart) not in failed \
                    and matches(acc):
                audit.flushed_bytes += acc.nbytes
                insort(covered.setdefault(acc.rank, []),
                       (lo, lo + acc.nbytes))

    def is_covered(rank: int, lo: int, hi: int) -> bool:
        pos = lo
        for a, b in covered.get(rank, ()):  # sorted, disjoint
            if a <= pos < b:
                pos = b
                if pos >= hi:
                    return True
        return pos >= hi

    for acc in wal_writes:
        if (acc.rank, acc.path, acc.tstart) in failed:
            audit.unacked_failures += 1
            continue
        audit.acked_records += 1
        audit.acked_bytes += acc.nbytes
        if matches(acc):
            audit.survived_in_wal += 1
        elif is_covered(acc.rank, acc.offset, acc.offset + acc.nbytes):
            audit.covered_by_segment += 1
        else:
            audit.lost.append(LostAckedRecord(
                rank=acc.rank, path=acc.path, offset=acc.offset,
                nbytes=acc.nbytes, t_acked=acc.tend))
    audit.lost.sort(key=lambda r: (r.rank, r.path, r.offset))
    return audit


__all__ = ["LostAckedRecord", "WalAudit", "audit_wal"]
