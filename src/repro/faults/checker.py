"""Crash-recovery contracts, checked after the fact.

Every consistency model implies a *durability* contract that recovery
must honour when servers crash (§5 of the paper frames checkpointing
entirely around this):

=========  ==============================================================
strong     every acknowledged write survives any later crash
           (write-through: ack *is* durability)
commit     everything up to the last ``commit()``/``close()`` survives;
           data written after it may vanish, but **whole writes** — no
           torn fragment is ever visible
session    everything up to the last ``close()`` survives (same rule,
           with close as the only commit point)
eventual   durable data is never lost and nothing is ever corrupted;
           recent writes may be lost or stale
object     a completed PUT (the close) is durable; data of an
           in-flight PUT may vanish whole, torn objects never
=========  ==============================================================

:class:`CrashConsistencyChecker` replays the audit trail the stores kept
(:class:`~repro.pfs.storage.CrashRecord`) against those contracts and
returns one :class:`Violation` per broken promise.  On a correctly
implemented PFS the list is empty for every fault plan; the deliberately
broken modes (``FaultPlan.broken_recovery``, ``PFSConfig.mds_journal =
False``) exist so tests can prove the checker actually catches
torn writes and lost commits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.semantics import Semantics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pfs.client import PFSimulator
    from repro.pfs.storage import CrashRecord, ExtentRef, FileStore


#: violation kinds, most to least severe
LOST_ACKED = "lost-acked"          # strong: an acknowledged write vanished
LOST_COMMITTED = "lost-committed"  # commit/session: a published write vanished
LOST_DURABLE = "lost-durable"      # any: data past its durability point vanished
TORN_VISIBLE = "torn-visible"      # any: a partial write survived recovery


@dataclass(frozen=True)
class Violation:
    """One broken crash-recovery promise."""

    path: str
    kind: str
    crash_t: float
    target: str
    writer: int
    seq: int
    detail: str

    def to_dict(self) -> dict:
        return {"path": self.path, "kind": self.kind,
                "crash_t": self.crash_t, "target": self.target,
                "writer": self.writer, "seq": self.seq,
                "detail": self.detail}


class CrashConsistencyChecker:
    """Judge recovery outcomes against the per-semantics contract."""

    def check(self, sim: "PFSimulator") -> list[Violation]:
        """All contract violations across the simulator's files."""
        out: list[Violation] = []
        for path, store in sorted(sim.files.items()):
            out.extend(self.check_store(
                store, sim.config.semantics_for(path)))
        return out

    def check_store(self, store: FileStore,
                    semantics: Semantics) -> list[Violation]:
        out: list[Violation] = []
        for rec in store.crashes:
            for ref in rec.discarded:
                v = self._judge_discard(store.path, semantics, rec, ref)
                if v is not None:
                    out.append(v)
        # torn fragments that recovery left visible break every model
        seen: set[tuple[int, int]] = set()
        for ext in store.extents:
            if not (ext.torn and ext.live):
                continue
            key = (ext.writer, ext.seq)
            if key in seen:
                continue
            seen.add(key)
            crash_t, target = self._tearing_fault(store, ext.writer,
                                                  ext.seq)
            out.append(Violation(
                path=store.path, kind=TORN_VISIBLE, crash_t=crash_t,
                target=target, writer=ext.writer, seq=ext.seq,
                detail="recovery kept a partial stripe fragment of a "
                       "torn write"))
        return out

    def _judge_discard(self, path: str, semantics: Semantics,
                       rec: CrashRecord,
                       ref: ExtentRef) -> Violation | None:
        """Was recovery allowed to roll this write back at ``rec.t``?"""
        def v(kind: str, detail: str) -> Violation:
            return Violation(path=path, kind=kind, crash_t=rec.t,
                             target=rec.target, writer=ref.writer,
                             seq=ref.seq, detail=detail)
        if ref.t_durable <= rec.t:
            return v(LOST_DURABLE,
                     f"write durable at t={ref.t_durable:.6f} was "
                     f"rolled back by a crash at t={rec.t:.6f}")
        if semantics is Semantics.STRONG:
            if ref.t_complete <= rec.t:
                return v(LOST_ACKED,
                         f"write acknowledged at t={ref.t_complete:.6f}"
                         f" was lost by a crash at t={rec.t:.6f}")
        elif semantics in (Semantics.COMMIT, Semantics.SESSION,
                           Semantics.OBJECT):
            if ref.commit_point <= rec.t:
                point = ("commit" if semantics is Semantics.COMMIT
                         else "PUT" if semantics is Semantics.OBJECT
                         else "close")
                return v(LOST_COMMITTED,
                         f"write published by {point} at "
                         f"t={ref.commit_point:.6f} was lost by a "
                         f"crash at t={rec.t:.6f}")
        # eventual: only durability (checked above) is promised
        return None

    @staticmethod
    def _tearing_fault(store: FileStore, writer: int,
                       seq: int) -> tuple[float, str]:
        for rec in store.crashes:
            for ref in rec.torn:
                if ref.writer == writer and ref.seq == seq:
                    return rec.t, rec.target
        return float("nan"), "unknown"
