"""Deterministic fault injection and crash-recovery contracts.

``plan`` declares *what* goes wrong (crashes, cache drops, transient
error rates) and *when* (virtual time or op count); ``injector`` fires
the plan reproducibly from a seeded RNG; ``checker`` audits the
recovered state against the per-semantics durability contract;
``walcheck`` audits the cross-file acked-durable promise of the
write-ahead-log checkpoint proxy.  The chaos harness that sweeps all
application configurations under a fault matrix lives in
:mod:`repro.pfs.chaos`.
"""

from __future__ import annotations

from repro.faults.checker import (
    LOST_ACKED,
    LOST_COMMITTED,
    LOST_DURABLE,
    TORN_VISIBLE,
    CrashConsistencyChecker,
    Violation,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    CacheDropEvent,
    CrashEvent,
    FaultKind,
    FaultPlan,
    FaultStats,
    InjectedFault,
)
from repro.faults.walcheck import LostAckedRecord, WalAudit, audit_wal

__all__ = [
    "CacheDropEvent",
    "CrashConsistencyChecker",
    "CrashEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultStats",
    "InjectedFault",
    "LOST_ACKED",
    "LOST_COMMITTED",
    "LOST_DURABLE",
    "LostAckedRecord",
    "TORN_VISIBLE",
    "Violation",
    "WalAudit",
    "audit_wal",
]
