"""Deterministic fault injector: turns a :class:`FaultPlan` into fires.

The injector owns three trigger mechanisms:

* **scheduled events** (crashes, cache drops) fire when the polling
  client's virtual clock passes ``at_time`` or when the global operation
  count reaches ``at_op``;
* **transient errors** are drawn per server operation from a seeded RNG
  stream, so the error schedule depends only on ``(plan.seed,
  operation order)`` — replay order is deterministic, hence so is the
  fault schedule;
* **retry jitter** comes from per-client seeded streams, keeping
  backoff timing reproducible without coupling clients to each other.

The injector never touches PFS state itself: it *decides*, the
simulator *applies* (see ``PFSimulator._apply_fault``).  Everything it
fires lands in :attr:`log`, the audit trail that chaos reports embed and
that the consistency checker uses for attribution.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.faults.plan import (
    CacheDropEvent,
    CrashEvent,
    FaultKind,
    FaultPlan,
    FaultStats,
    InjectedFault,
)
from repro.util.rng import make_rng

#: RNG stream selectors (arbitrary, fixed forever for reproducibility)
_ERROR_STREAM = 0xFA01
_JITTER_STREAM = 0xFA02


class FaultInjector:
    """One run's fault schedule, consulted by the PFS simulator."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.op_count = 0
        self.stats = FaultStats()
        self.log: list[InjectedFault] = []
        self._error_rng = make_rng(plan.seed, _ERROR_STREAM)
        self._jitter_rngs: dict[int, np.random.Generator] = {}
        # pending scheduled events, split by trigger kind and kept in
        # firing order (ties broken by plan declaration order)
        events = list(plan.crashes) + list(plan.cache_drops)
        self._by_time = sorted(
            (e for e in events if e.at_time is not None),
            key=lambda e: e.at_time)
        self._by_op = sorted(
            (e for e in events if e.at_op is not None),
            key=lambda e: e.at_op)

    # -- scheduled events --------------------------------------------------------

    def note_op(self) -> None:
        """Count one client operation (the at_op trigger clock)."""
        self.op_count += 1

    def take_due(self, now: float) -> Iterator[CrashEvent | CacheDropEvent]:
        """Pop and yield every event whose trigger has passed."""
        while self._by_op and self._by_op[0].at_op <= self.op_count:
            yield self._by_op.pop(0)
        while self._by_time and self._by_time[0].at_time <= now:
            yield self._by_time.pop(0)

    @property
    def pending(self) -> int:
        return len(self._by_time) + len(self._by_op)

    # -- transient errors ---------------------------------------------------------

    def draw_error(self, op: str, target: str, client_id: int,
                   now: float) -> bool:
        """Should this server operation fail transiently?  One seeded
        draw per call, so the answer stream is a pure function of the
        plan seed and the (deterministic) operation order."""
        if self.plan.error_rate <= 0.0:
            return False
        if (self.plan.max_errors is not None
                and self.stats.errors_injected >= self.plan.max_errors):
            return False
        if float(self._error_rng.random()) >= self.plan.error_rate:
            return False
        self.stats.errors_injected += 1
        self.record(FaultKind.TRANSIENT_ERROR, now, target=target,
                    detail=f"client {client_id} {op}")
        return True

    # -- retry jitter ---------------------------------------------------------------

    def jitter(self, client_id: int) -> float:
        """A uniform [0, 1) draw from the client's private stream."""
        rng = self._jitter_rngs.get(client_id)
        if rng is None:
            rng = make_rng(self.plan.seed, _JITTER_STREAM, client_id)
            self._jitter_rngs[client_id] = rng
        return float(rng.random())

    # -- audit trail ----------------------------------------------------------------

    def record(self, kind: FaultKind, t: float, *, target: str = "",
               detail: str = "") -> InjectedFault:
        fault = InjectedFault(kind=kind, t=t, op_count=self.op_count,
                              target=target, detail=detail)
        self.log.append(fault)
        return fault

    def log_dicts(self) -> list[dict]:
        return [f.to_dict() for f in self.log]
