"""Per-rank virtual clocks with injectable skew.

The paper (Section 5.2) orders I/O operations from different nodes by local
timestamps and argues this is safe because observed clock skew (< 20 us) is
far smaller than the gap between synchronized conflicting operations (tens
of ms).  To reproduce and *test* that argument we model two notions of time:

* ``true`` time — the simulator's global virtual time, used for scheduling
  and as ground truth;
* ``local`` time — what the rank's own clock reads, i.e. true time plus a
  fixed per-rank skew.  Trace timestamps come from local time, exactly as
  Recorder's come from each node's system clock.

The tracer then re-aligns local timestamps with the barrier-exit trick from
the paper, and tests verify conflict detection is robust for skews smaller
than the inter-operation gap.
"""

from __future__ import annotations


class RankClock:
    """Virtual clock of one rank.

    ``advance`` moves true time forward; ``sync_to`` implements the
    "cannot observe an event before it happened" rule used by message
    receipt and barrier exit.
    """

    __slots__ = ("rank", "skew", "_true")

    def __init__(self, rank: int, skew: float = 0.0):
        self.rank = int(rank)
        self.skew = float(skew)
        self._true = 0.0

    @property
    def true_time(self) -> float:
        """Global virtual time of this rank's next action."""
        return self._true

    @property
    def local_time(self) -> float:
        """What this rank's own (possibly skewed) clock reads."""
        return self._true + self.skew

    def advance(self, dt: float) -> float:
        """Move forward by ``dt`` (>= 0) seconds of virtual time."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt {dt}")
        self._true += dt
        return self._true

    def sync_to(self, true_time: float) -> float:
        """Raise true time to at least ``true_time`` (never moves backward)."""
        if true_time > self._true:
            self._true = true_time
        return self._true
