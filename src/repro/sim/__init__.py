"""Deterministic cooperative multi-rank simulator.

Each simulated MPI rank runs as an OS thread, but only one thread executes
at a time and control transfers happen at well-defined *checkpoints*
(every traced I/O or communication operation).  The scheduler always
resumes the runnable rank with the smallest ``(virtual time, rank)`` key,
so a given program + seed yields a bit-identical execution, timestamps
included — which is what makes trace-analysis results reproducible and
testable.
"""

from repro.sim.clock import RankClock
from repro.sim.engine import SimConfig, SimEngine, RankContext

__all__ = ["RankClock", "SimConfig", "SimEngine", "RankContext"]
