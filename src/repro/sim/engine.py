"""The cooperative, deterministic multi-rank execution engine.

Ranks run as OS threads but execute strictly one at a time.  A thread gives
up control only at *checkpoints* (:meth:`SimEngine.checkpoint`,
:meth:`SimEngine.wait_until`), and the engine always resumes the runnable
rank with the smallest ``(true virtual time, rank)`` key.  Together with
seeded RNGs this makes entire application runs — including every trace
timestamp — bit-reproducible, regardless of OS scheduling.

Blocking is predicate-based: a rank blocks with a callable that the engine
re-evaluates whenever any other rank reaches a checkpoint.  MPI receive
("a matching send was posted") and barrier ("generation advanced") are both
one-line predicates on shared state guarded by the engine's big lock (only
one rank runs at a time, so plain Python data structures are safe).
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.errors import DeadlockError, SimulationError
from repro.obs import registry as obs
from repro.sim.clock import RankClock
from repro.util.rng import make_rng

_READY = "ready"
_RUNNING = "running"
_BLOCKED = "blocked"
_DONE = "done"

#: public names for :meth:`SimEngine.rank_status` values
RANK_READY = _READY
RANK_RUNNING = _RUNNING
RANK_BLOCKED = _BLOCKED
RANK_DONE = _DONE


@dataclass
class SimConfig:
    """Knobs of a simulated run.

    ``clock_skew_us`` draws a fixed per-rank skew uniformly from
    ``[-clock_skew_us, +clock_skew_us]`` microseconds (the paper observed
    < 20 us on Quartz).  The cost fields are the virtual-time charges that
    the POSIX/MPI layers apply per operation; absolute values are
    arbitrary, only their ratios shape the traces.

    ``rank_base``/``world_size`` let one engine host a *contiguous block*
    of a larger rank set: the engine runs ``nranks`` ranks whose global
    ids are ``rank_base .. rank_base + nranks - 1`` out of ``world_size``
    total.  Skews are always drawn for the full world and sliced, so a
    partitioned run sees the same per-rank skews as a single-process one.
    ``thread_cap`` bounds how many rank threads one process may spawn;
    above it the engine refuses with a pointer at ``study partition``.
    """

    nranks: int = 8
    seed: int = 7
    clock_skew_us: float = 0.0
    # virtual-time costs (seconds)
    cpu_op_cost: float = 1e-7
    io_meta_cost: float = 50e-6
    io_byte_cost: float = 5e-9
    net_latency: float = 2e-6
    net_byte_cost: float = 1e-9
    barrier_cost: float = 5e-6
    # partitioned-run support
    rank_base: int = 0
    world_size: int | None = None
    thread_cap: int = 512

    def __post_init__(self) -> None:
        if self.nranks < 1:
            raise SimulationError(f"nranks must be >= 1, got {self.nranks}")
        if self.rank_base < 0:
            raise SimulationError(
                f"rank_base must be >= 0, got {self.rank_base}")
        if self.world_size is not None:
            if self.rank_base + self.nranks > self.world_size:
                raise SimulationError(
                    f"rank block [{self.rank_base}, "
                    f"{self.rank_base + self.nranks}) exceeds world_size "
                    f"{self.world_size}")
        elif self.rank_base != 0:
            raise SimulationError("rank_base requires an explicit world_size")

    @property
    def world(self) -> int:
        """Total ranks across all partitions (== nranks when unsplit)."""
        return self.nranks if self.world_size is None else self.world_size


class _RankState:
    __slots__ = ("clock", "status", "reason", "predicate", "event", "thread")

    def __init__(self, clock: RankClock):
        self.clock = clock
        self.status = _READY
        self.reason = ""
        self.predicate: Callable[[], bool] | None = None
        self.event = threading.Event()
        self.thread: threading.Thread | None = None


@dataclass
class RankContext:
    """Everything a rank's program sees: its identity, clock, engine, rng.

    The application harness (:mod:`repro.apps.base`) attaches the MPI
    communicator, the traced POSIX API, and the I/O libraries as extra
    attributes in ``services``.
    """

    rank: int
    nranks: int
    engine: "SimEngine"
    clock: RankClock
    rng: Any
    services: dict[str, Any] = field(default_factory=dict)

    def __getattr__(self, name: str) -> Any:
        services = object.__getattribute__(self, "services")
        try:
            return services[name]
        except KeyError:
            raise AttributeError(name) from None


class SimEngine:
    """Owns the rank threads, their clocks, and the scheduling discipline."""

    def __init__(self, config: SimConfig):
        if config.nranks > config.thread_cap:
            raise SimulationError(
                f"nranks={config.nranks} exceeds the single-process thread "
                f"cap of {config.thread_cap} OS threads; split the run "
                f"across worker processes with `repro.study partition "
                f"--partitions N` (or raise SimConfig.thread_cap if you "
                f"really want one process)")
        self.config = config
        base = config.rank_base
        skews = self._draw_skews(config)
        self._ranks = [_RankState(RankClock(base + r, skews[r]))
                       for r in range(config.nranks)]
        self._current: int | None = None
        self._failure: BaseException | None = None
        self._main_event = threading.Event()
        self._started = False
        #: virtual-time callbacks, fired by the dispatcher in (t, FIFO)
        #: order before any rank whose clock has passed them runs
        self._scheduled: list[
            tuple[float, int, Callable[[float], None]]] = []
        self._sched_counter = itertools.count()
        # observability instruments, captured once (no-ops when metrics
        # are off, so the dispatch loop pays one dead call per event)
        reg = obs.current()
        self._obs_scheduled = reg.counter("sim.events_scheduled")
        self._obs_fired = reg.counter("sim.events_fired")
        self._obs_checkpoints = reg.counter("sim.checkpoints")
        self._obs_blocks = reg.counter("sim.blocks")
        self._obs_vtime = reg.gauge("sim.virtual_time")
        reg.counter("sim.engines").inc()
        reg.counter("sim.ranks").inc(config.nranks)

    @staticmethod
    def _draw_skews(config: SimConfig) -> list[float]:
        """Per-rank skews for this engine's rank block.

        Always drawn for the full world from the same seeded stream so
        every partition of the same world sees identical skews.
        """
        if config.clock_skew_us <= 0:
            return [0.0] * config.nranks
        rng = make_rng(config.seed, 0xC10C)
        bound = config.clock_skew_us * 1e-6
        skews = rng.uniform(-bound, bound, size=config.world).tolist()
        return skews[config.rank_base:config.rank_base + config.nranks]

    # -- public API ------------------------------------------------------------

    @property
    def nranks(self) -> int:
        return self.config.nranks

    @property
    def rank_base(self) -> int:
        return self.config.rank_base

    @property
    def world_size(self) -> int:
        return self.config.world

    @property
    def local_ranks(self) -> range:
        """Global ids of the ranks hosted by this engine."""
        return range(self.config.rank_base,
                     self.config.rank_base + self.config.nranks)

    def _state(self, rank: int) -> _RankState:
        """Rank state by *global* rank id (engine hosts a contiguous block)."""
        return self._ranks[rank - self.config.rank_base]

    def clock(self, rank: int) -> RankClock:
        return self._state(rank).clock

    def rank_status(self, rank: int) -> tuple[str, float]:
        """(status, true_time) of a hosted rank, for matching/safety rules."""
        state = self._state(rank)
        return state.status, state.clock.true_time

    def rank_reason(self, rank: int) -> str:
        """Human-readable blocking reason (empty when not blocked)."""
        return self._state(rank).reason

    @property
    def current_rank(self) -> int | None:
        """Global id of the most recently dispatched rank."""
        return self._current

    def run(self, program: Callable[[RankContext], Any],
            services_factory: Callable[[RankContext], dict[str, Any]] | None = None,
            ) -> list[Any]:
        """Execute ``program`` SPMD on every rank; return per-rank results.

        ``services_factory`` may populate per-rank services (communicator,
        file APIs) before any rank starts; it receives the bare context and
        returns the services dict.
        """
        if self._started:
            raise SimulationError("a SimEngine can only run once")
        self._started = True

        base = self.config.rank_base
        results: list[Any] = [None] * self.nranks
        contexts = [
            RankContext(rank=base + r, nranks=self.world_size, engine=self,
                        clock=self._ranks[r].clock,
                        rng=make_rng(self.config.seed, base + r))
            for r in range(self.nranks)
        ]
        if services_factory is not None:
            for ctx in contexts:
                ctx.services.update(services_factory(ctx))

        def runner(local: int) -> None:
            state = self._ranks[local]
            state.event.wait()  # wait to be scheduled the first time
            if self._failure is not None:
                self._finish_rank(base + local)
                return
            try:
                results[local] = program(contexts[local])
            except BaseException as exc:  # propagate to the driving thread
                if self._failure is None:
                    self._failure = exc
            finally:
                self._finish_rank(base + local)

        for r, state in enumerate(self._ranks):
            state.thread = threading.Thread(
                target=runner, args=(r,), name=f"simrank-{base + r}",
                daemon=True)
            state.thread.start()

        self._dispatch_next()
        self._main_event.wait()
        for state in self._ranks:
            assert state.thread is not None
            state.thread.join()
        if self._failure is not None:
            raise self._failure
        return results

    # -- checkpoints called from inside rank threads ------------------------------

    def checkpoint(self, rank: int) -> None:
        """Offer the scheduler a chance to switch to an earlier-time rank."""
        state = self._state(rank)
        state.status = _READY
        state.event.clear()
        self._obs_checkpoints.inc()
        self._dispatch_next()
        state.event.wait()
        self._raise_if_failed()

    def wait_until(self, rank: int, predicate: Callable[[], bool],
                   reason: str) -> None:
        """Block this rank until ``predicate()`` is true.

        The predicate is evaluated under the engine's one-runner-at-a-time
        discipline, so it may read any shared state without extra locking.
        """
        state = self._state(rank)
        while not predicate():
            state.status = _BLOCKED
            state.reason = reason
            state.predicate = predicate
            state.event.clear()
            self._obs_blocks.inc()
            self._dispatch_next()
            state.event.wait()
            self._raise_if_failed()
        state.predicate = None
        state.reason = ""
        state.status = _RUNNING

    def advance(self, rank: int, dt: float) -> float:
        """Charge ``dt`` seconds of virtual time to ``rank``."""
        return self._state(rank).clock.advance(dt)

    def schedule(self, t: float, callback: Callable[[float], None]) -> None:
        """Run ``callback(t)`` once virtual time reaches ``t``.

        The callback fires under the engine's one-runner-at-a-time
        discipline, before any rank whose clock has passed ``t`` is
        dispatched, so it may mutate shared state (crash a simulated
        server, drop a cache) without extra locking.  Callbacks with
        equal times fire in registration order; determinism of the
        schedule follows from determinism of the run.
        """
        heapq.heappush(self._scheduled,
                       (t, next(self._sched_counter), callback))
        self._obs_scheduled.inc()

    # -- internals -----------------------------------------------------------------

    def _finish_rank(self, rank: int) -> None:
        self._state(rank).status = _DONE
        self._dispatch_next()

    def _raise_if_failed(self) -> None:
        if self._failure is not None:
            # Re-raised inside a rank thread to unwind it; the original
            # exception object still reaches the driving thread.
            raise SimulationError("simulation aborted") from self._failure

    def _dispatch_next(self) -> None:
        if self._failure is not None:
            self._wake_everyone()
            return
        while True:
            # Unblock any rank whose wait predicate has become true.
            for state in self._ranks:
                if state.status == _BLOCKED and state.predicate is not None:
                    try:
                        ready = state.predicate()
                    except BaseException as exc:
                        self._failure = exc
                        self._wake_everyone()
                        return
                    if ready:
                        state.status = _READY
            candidates = [(s.clock.true_time, s.clock.rank)
                          for s in self._ranks if s.status == _READY]
            # Fire scheduled virtual-time callbacks that come before the
            # next runnable rank (or any time no rank is runnable — a
            # callback may be exactly what unblocks one).
            if self._scheduled and (
                    not candidates
                    or self._scheduled[0][0] <= min(candidates)[0]):
                t, _, callback = heapq.heappop(self._scheduled)
                self._obs_fired.inc()
                try:
                    callback(t)
                except BaseException as exc:
                    self._failure = exc
                    self._wake_everyone()
                    return
                continue  # state may have changed; re-evaluate
            break
        if candidates:
            t, nxt = min(candidates)
            self._obs_vtime.set_max(t)
            self._current = nxt
            state = self._state(nxt)
            state.status = _RUNNING
            state.event.set()
            return
        blocked = {s.clock.rank: s.reason
                   for s in self._ranks if s.status == _BLOCKED}
        if blocked:
            self._failure = DeadlockError(
                f"deadlock: {len(blocked)} rank(s) blocked, none runnable",
                blocked)
            self._wake_everyone()
            return
        # Everyone done.
        self._main_event.set()

    def _wake_everyone(self) -> None:
        for state in self._ranks:
            state.event.set()
        self._main_event.set()
