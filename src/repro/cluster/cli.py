"""``python -m repro.study cluster`` — operate the analysis cluster.

Actions, all under the study CLI's uniform 0/1/2 exit contract:

* ``start``    — boot a manager in-process and spawn N worker
  subprocesses, print one JSON ready document (manager address plus
  every worker's node id, pid and port — the CI smoke job SIGKILLs a
  pid from it), then serve until SIGINT/SIGTERM.
* ``worker``   — run one cluster worker (what ``start`` spawns).
* ``status``   — print the membership snapshot; exit 1 if any
  registered node is dead, 0 when all are alive.
* ``loadtest`` — drive the seeded load generator through the
  membership-routed failover client.
* ``chaos``    — run the deterministic kill/partition suite and write
  the invariant report; exit 1 on any violated invariant.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.study.cli import EXIT_FINDINGS, EXIT_OK, _UsageError


def cluster_main(argv: list[str] | None = None) -> int:
    argv = list(argv or [])
    actions = {
        "start": _start_main,
        "worker": _worker_main,
        "status": _status_main,
        "loadtest": _loadtest_main,
        "chaos": _chaos_main,
    }
    if not argv or argv[0] not in actions:
        raise _UsageError(
            "usage: python -m repro.study cluster "
            f"<{'|'.join(actions)}> [options]")
    return actions[argv[0]](argv[1:])


def _require_port(args: argparse.Namespace) -> None:
    if args.port is None:
        raise _UsageError("--port is required (see the cluster's "
                          "ready document)")


def _write_ready(doc: dict, ready_file: Path | None) -> None:
    text = json.dumps(doc, sort_keys=True)
    print(text, flush=True)
    if ready_file is not None:
        ready_file.parent.mkdir(parents=True, exist_ok=True)
        ready_file.write_text(text + "\n")


def _start_main(argv: list[str]) -> int:
    import os
    import signal
    import subprocess
    import time

    parser = argparse.ArgumentParser(
        prog="python -m repro.study cluster start",
        description="Boot a manager plus N worker subprocesses.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="manager TCP port (default 0 = "
                             "ephemeral; the ready document reports "
                             "it)")
    parser.add_argument("--workers", type=int, default=3, metavar="N",
                        help="worker nodes to spawn (default 3)")
    parser.add_argument("--rf", type=int, default=2,
                        help="cache replication factor (default 2)")
    parser.add_argument("--cache-dir", type=Path,
                        default=Path(".repro-cache"), metavar="DIR",
                        help="shared cache base holding the per-node "
                             "shard roots (default .repro-cache/)")
    parser.add_argument("--queue-limit", type=int, default=16,
                        metavar="N")
    parser.add_argument("--pool-workers", type=int, default=1,
                        metavar="N",
                        help="analysis processes per worker node "
                             "(default 1)")
    parser.add_argument("--debug", action="store_true",
                        help="serve debug endpoints (sleep) on the "
                             "workers")
    parser.add_argument("--ready-file", type=Path, default=None,
                        metavar="FILE")
    parser.add_argument("--boot-timeout", type=float, default=60.0,
                        metavar="S",
                        help="how long to wait for every worker to "
                             "register (default 60)")
    args = parser.parse_args(argv)
    if args.workers < 1 or args.rf < 1:
        raise _UsageError("--workers and --rf must be >= 1")
    if args.rf > args.workers:
        raise _UsageError("--rf cannot exceed --workers")

    from repro.cluster.manager import ClusterManager, ManagerConfig
    from repro.serve.client import request_sync
    from repro.serve.server import ServerHandle

    node_ids = [f"w{i}" for i in range(args.workers)]
    manager = ClusterManager(ManagerConfig(
        host=args.host, port=args.port, rf=args.rf))
    handle = ServerHandle(manager).start()

    procs: list[subprocess.Popen] = []
    try:
        for node_id in node_ids:
            cmd = [sys.executable, "-m", "repro.study", "cluster",
                   "worker",
                   "--node-id", node_id,
                   "--manager-host", args.host,
                   "--manager-port", str(handle.port),
                   "--nodes", ",".join(node_ids),
                   "--rf", str(args.rf),
                   "--cache-dir", str(args.cache_dir),
                   "--queue-limit", str(args.queue_limit),
                   "--pool-workers", str(args.pool_workers)]
            if args.debug:
                cmd.append("--debug")
            # each worker leads its own process group so teardown can
            # sweep its whole tree: a SIGKILLed worker leaves orphaned
            # analysis-pool children that inherited its listening
            # socket, and killing only the Popen pid would leak them
            procs.append(subprocess.Popen(
                cmd, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL, start_new_session=True))

        deadline = time.monotonic() + args.boot_timeout
        snapshot: dict = {}
        while time.monotonic() < deadline:
            try:
                doc = request_sync(args.host, handle.port,
                                   "membership")
            except Exception:  # noqa: BLE001 — manager still binding
                doc = {}
            snapshot = (doc.get("result") or {}) if doc.get("ok") \
                else {}
            if snapshot.get("alive", 0) >= args.workers:
                break
            if any(p.poll() is not None for p in procs):
                raise _UsageError(
                    "a worker subprocess exited during boot")
            time.sleep(0.1)
        else:
            raise _UsageError(
                f"cluster did not reach {args.workers} alive workers "
                f"within {args.boot_timeout:g}s")

        by_node = {n["node"]: n for n in snapshot.get("nodes", [])}
        _write_ready({
            "event": "ready",
            "role": "cluster",
            "host": args.host,
            "port": handle.port,
            "pid": os.getpid(),
            "rf": args.rf,
            "workers": [{
                "node": node_id,
                "pid": procs[i].pid,
                "port": by_node.get(node_id, {}).get("port"),
            } for i, node_id in enumerate(node_ids)],
        }, args.ready_file)

        stop = {"flag": False}

        def _on_signal(signum, frame):  # noqa: ARG001 — signal API
            stop["flag"] = True

        for sig in (signal.SIGINT, signal.SIGTERM):
            signal.signal(sig, _on_signal)
        while not stop["flag"]:
            time.sleep(0.2)
        return EXIT_OK
    finally:
        print("[cluster: stopping]", file=sys.stderr)
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()  # the worker drains its own pool
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                pass
            try:  # sweep the group: pool children a kill orphaned
                os.killpg(proc.pid, signal.SIGKILL)
            except OSError:
                pass
        handle.stop()


def _worker_main(argv: list[str]) -> int:
    import asyncio
    import os
    import signal

    parser = argparse.ArgumentParser(
        prog="python -m repro.study cluster worker",
        description="Run one cluster worker node.")
    parser.add_argument("--node-id", required=True)
    parser.add_argument("--manager-host", default="127.0.0.1")
    parser.add_argument("--manager-port", type=int, required=True)
    parser.add_argument("--nodes", required=True,
                        help="comma-separated node ids of the whole "
                             "cluster (the sticky ring input)")
    parser.add_argument("--rf", type=int, default=2)
    parser.add_argument("--cache-dir", type=Path,
                        default=Path(".repro-cache"), metavar="DIR")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--queue-limit", type=int, default=16,
                        metavar="N")
    parser.add_argument("--pool-workers", type=int, default=1,
                        metavar="N")
    parser.add_argument("--debug", action="store_true")
    parser.add_argument("--ready-file", type=Path, default=None,
                        metavar="FILE")
    args = parser.parse_args(argv)
    nodes = tuple(n.strip() for n in args.nodes.split(",") if n.strip())
    if args.node_id not in nodes:
        raise _UsageError(f"--node-id {args.node_id!r} must appear in "
                          f"--nodes")

    from repro.cluster.worker import ClusterWorker, WorkerConfig
    from repro.serve.server import ServeConfig

    async def run() -> int:
        worker = ClusterWorker(WorkerConfig(
            node_id=args.node_id,
            manager_host=args.manager_host,
            manager_port=args.manager_port,
            nodes=nodes, cache_dir=args.cache_dir, rf=args.rf,
            serve=ServeConfig(host=args.host, port=args.port,
                              queue_limit=args.queue_limit,
                              workers=args.pool_workers,
                              debug=args.debug)))
        await worker.start()
        _write_ready({"event": "ready", "role": "worker",
                      "node": args.node_id, "host": args.host,
                      "port": worker.port, "pid": os.getpid()},
                     args.ready_file)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):
                pass
        forever = asyncio.ensure_future(worker.serve_forever())
        try:
            await stop.wait()
        finally:
            await worker.stop()
            forever.cancel()
        return EXIT_OK

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return EXIT_OK
    except OSError as exc:
        raise _UsageError(f"cannot bind {args.host}:{args.port}: "
                          f"{exc.strerror or exc}")


def _status_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.study cluster status",
        description="Print the cluster membership snapshot.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None,
                        help="manager port (see the ready document)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    args = parser.parse_args(argv)
    _require_port(args)

    from repro.serve.client import ServeConnectionError, request_sync

    try:
        doc = request_sync(args.host, args.port, "membership")
    except ServeConnectionError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_FINDINGS
    if not doc.get("ok"):
        print(f"manager refused: {doc.get('error')}", file=sys.stderr)
        return EXIT_FINDINGS
    snapshot = doc["result"]
    if args.format == "json":
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        lines = [f"cluster: {len(snapshot['nodes'])} node(s), "
                 f"rf {snapshot['rf']}, {snapshot['alive']} alive, "
                 f"{snapshot['dead']} dead"]
        for node in snapshot["nodes"]:
            lines.append(
                f"  {node['node']:>6}  {node['status']:<8} "
                f"{node['host']}:{node['port']}  "
                f"beats {node['beats']}  gen {node['generation']}  "
                f"age {node['age_s']:.2f}s")
        print("\n".join(lines))
    return EXIT_OK if snapshot["dead"] == 0 else EXIT_FINDINGS


def _loadtest_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.study cluster loadtest",
        description="Drive the seeded load generator through the "
                    "membership-routed failover client.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None,
                        help="manager port (see the ready document)")
    parser.add_argument("--clients", type=int, default=4, metavar="N")
    parser.add_argument("--requests", type=int, default=25,
                        metavar="N")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--zipf", type=float, default=1.2, metavar="S")
    parser.add_argument("--nranks", type=int, default=2)
    parser.add_argument("--deadline", type=float, default=60.0,
                        metavar="S")
    parser.add_argument("--check-health", action="store_true",
                        help="probe healthz before each node's first "
                             "use and fail over on non-ok status")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)
    _require_port(args)

    from repro.cluster.client import ClusterClient
    from repro.serve.client import ServeConnectionError
    from repro.serve.loadgen import LoadSpec, report_text, run_load_sync

    spec = LoadSpec(clients=args.clients,
                    requests_per_client=args.requests,
                    seed=args.seed, zipf_s=args.zipf,
                    nranks=args.nranks, deadline_s=args.deadline)
    try:
        spec.validate()
    except ValueError as exc:
        raise _UsageError(str(exc))

    def factory(client_id: int) -> ClusterClient:
        return ClusterClient(manager_host=args.host,
                             manager_port=args.port,
                             seed=args.seed * 1000003 + client_id,
                             check_health=args.check_health)

    try:
        report = run_load_sync(args.host, args.port, spec,
                               client_factory=factory)
    except ServeConnectionError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_FINDINGS
    as_json = json.dumps(report, indent=2, sort_keys=True)
    print(as_json if args.format == "json" else report_text(report))
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(as_json + "\n")
    return EXIT_OK if report["ok"] else EXIT_FINDINGS


def _chaos_main(argv: list[str]) -> int:
    import tempfile

    parser = argparse.ArgumentParser(
        prog="python -m repro.study cluster chaos",
        description="Run the deterministic cluster kill/partition "
                    "suite and check the replication invariants.")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--workers", type=int, default=3, metavar="N")
    parser.add_argument("--rf", type=int, default=2)
    parser.add_argument("--requests", type=int, default=24,
                        metavar="N", help="requests per plan "
                                          "(default 24)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        metavar="DIR",
                        help="scratch cache base (default: a fresh "
                             "temporary directory)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the invariant JSON report here")
    args = parser.parse_args(argv)
    if args.workers < 2 or not 1 <= args.rf <= args.workers:
        raise _UsageError("need --workers >= 2 and "
                          "1 <= --rf <= --workers")
    if args.requests < 1:
        raise _UsageError("--requests must be >= 1")

    from repro.cluster.chaos import run_cluster_chaos

    base = args.cache_dir or Path(tempfile.mkdtemp(
        prefix="repro-cluster-chaos-"))
    report = run_cluster_chaos(nworkers=args.workers, rf=args.rf,
                               requests=args.requests,
                               seed=args.seed, base_dir=base)
    as_json = json.dumps(report, indent=2, sort_keys=True)
    if args.format == "json":
        print(as_json)
    else:
        lines = [f"cluster chaos: {len(report['plans'])} plan(s), "
                 f"{report['nworkers']} workers, rf {report['rf']}, "
                 f"seed {report['seed']}"]
        for plan in report["plans"]:
            verdict = "ok" if plan["ok"] else "VIOLATED"
            lines.append(
                f"  {plan['plan']:<24} {verdict:<9} "
                f"acked {plan['acked']:>3}  "
                f"failures {len(plan['failures'])}  "
                f"lost {len(plan['lost'])}  "
                f"faults [{', '.join(plan['faults_fired']) or '-'}]")
        lines.append("result: " + ("ok" if report["ok"]
                                   else f"{report['violations']} "
                                        f"plan(s) violated"))
        print("\n".join(lines))
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(as_json + "\n")
    return EXIT_OK if report["ok"] else EXIT_FINDINGS


__all__ = ["cluster_main"]
