"""A cluster worker: a stateless analysis server plus a heartbeat.

A worker is the existing :class:`repro.serve.server.AnalysisServer` —
same handlers, same protocol, same admission and coalescing — composed
with two cluster-specific pieces:

* its cache is a :class:`repro.cluster.store.ReplicatedStore` pinned to
  this node, so every committed result lands on all ``rf`` replica
  roots and every read may be served from any of them;
* a background task registers with the manager and then beats every
  ``heartbeat_interval_s``.

Workers are *stateless* in the 3FS sense: the only durable state is
the replicated cache tier, so any worker can compute any key on a miss
regardless of ring placement — the ring governs where results live,
not who may produce them.  A manager outage is survivable by design:
heartbeats fail silently (and are retried), the worker keeps serving,
and a manager that restarts with an empty table answers a beat with
``known=false``, which makes the worker re-register.

For chaos tests, ``drop_heartbeats`` silences the beat loop without
touching the serving path — the "partitioned from the manager but
healthy" failure mode, injected deterministically.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from pathlib import Path

from repro.cluster.membership import DEFAULT_HEARTBEAT_INTERVAL_S
from repro.cluster.store import ReplicatedStore
from repro.obs import registry as obs
from repro.pfs.config import RetryPolicy
from repro.serve.client import ServeClient
from repro.serve.server import AnalysisServer, ServeConfig

#: heartbeats are cheap and frequent — fail fast, the next beat is
#: moments away (retrying hard would only pile up behind a partition)
BEAT_RETRY = RetryPolicy(max_attempts=2, base_delay=0.02,
                         backoff=2.0, jitter=0.1)


@dataclass
class WorkerConfig:
    """Identity and wiring of one cluster worker."""

    node_id: str
    manager_host: str = "127.0.0.1"
    manager_port: int = 0
    #: all node ids of the cluster (the sticky ring input); every
    #: worker must be started with the same sorted set
    nodes: tuple[str, ...] = ()
    #: shared cache base directory holding the per-node shard roots
    cache_dir: Path = Path(".repro-cache")
    rf: int = 2
    heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S
    #: attempts to reach the manager at startup before serving anyway
    register_attempts: int = 20
    serve: ServeConfig = field(default_factory=ServeConfig)


class ClusterWorker:
    """One serving node: AnalysisServer + replicated cache + heartbeat.

    ServerHandle-compatible (``start``/``serve_forever``/``stop``,
    ``.port``, ``.config``), so the same background-thread harness that
    runs a standalone server runs a worker.
    """

    def __init__(self, config: WorkerConfig, *,
                 registry: obs.MetricsRegistry | None = None):
        if not config.nodes:
            raise ValueError("WorkerConfig.nodes must list the cluster")
        if config.node_id not in config.nodes:
            raise ValueError(
                f"node {config.node_id!r} not in {config.nodes}")
        self.cluster = config
        self.registry = registry if registry is not None \
            else obs.MetricsRegistry()
        self.store = ReplicatedStore(
            base=config.cache_dir, nodes=tuple(config.nodes),
            rf=config.rf, local=config.node_id)
        config.serve.node_id = config.node_id
        self.server = AnalysisServer(config.serve, cache=self.store,
                                     registry=self.registry)
        #: chaos hook: while True, the beat loop stays silent and the
        #: manager eventually declares this node dead
        self.drop_heartbeats = False
        self._beat_task: asyncio.Task | None = None
        self._registered = False
        reg = self.registry
        self._c_beats = reg.counter("cluster.worker.heartbeats_sent")
        self._c_beat_failures = reg.counter(
            "cluster.worker.heartbeat_failures")
        self._c_reregistrations = reg.counter(
            "cluster.worker.reregistrations")

    # -- ServerHandle compatibility ----------------------------------------

    @property
    def config(self) -> ServeConfig:
        return self.server.config

    @property
    def port(self) -> int | None:
        return self.server.port

    async def start(self) -> None:
        await self.server.start()
        await self._register(self.cluster.register_attempts)
        self._beat_task = asyncio.ensure_future(self._beat_loop())

    async def serve_forever(self) -> None:
        await self.server.serve_forever()

    async def stop(self) -> None:
        await self._stop_beating()
        await self.server.stop()

    async def abort(self) -> None:
        """SIGKILL stand-in: heartbeats and serving cease at once."""
        await self._stop_beating()
        await self.server.abort()

    async def _stop_beating(self) -> None:
        if self._beat_task is not None:
            self._beat_task.cancel()
            try:
                await self._beat_task
            except asyncio.CancelledError:
                pass
            self._beat_task = None

    # -- manager traffic ---------------------------------------------------

    def _manager_client(self) -> ServeClient:
        return ServeClient(host=self.cluster.manager_host,
                           port=self.cluster.manager_port,
                           retry=BEAT_RETRY, connect_timeout_s=2.0)

    async def _register(self, attempts: int) -> bool:
        """Announce this node; bounded retries, then serve anyway.

        An unreachable manager must not stop a worker from serving —
        clients holding an older membership snapshot can still reach
        it, and registration is retried from the beat loop.
        """
        assert self.server.port is not None
        params = {"node": self.cluster.node_id,
                  "host": self.server.config.host,
                  "port": self.server.port}
        for attempt in range(max(1, attempts)):
            client = self._manager_client()
            try:
                doc = await client.request("register", params)
            except Exception:  # noqa: BLE001 — manager down is normal
                await asyncio.sleep(
                    min(0.5, self.cluster.heartbeat_interval_s))
            else:
                if doc.get("ok"):
                    self._registered = True
                    return True
            finally:
                await client.close()
        self._registered = False
        return False

    async def _beat_loop(self) -> None:
        interval = self.cluster.heartbeat_interval_s
        while True:
            await asyncio.sleep(interval)
            if self.drop_heartbeats:
                continue
            if not self._registered:
                if await self._register(1):
                    self._c_reregistrations.inc()
                continue
            client = self._manager_client()
            try:
                doc = await client.request(
                    "heartbeat", {"node": self.cluster.node_id})
            except Exception:  # noqa: BLE001 — keep serving regardless
                self._c_beat_failures.inc()
            else:
                result = doc.get("result") or {}
                if doc.get("ok") and not result.get("known", True):
                    # the manager restarted and lost its table
                    self._registered = False
                else:
                    self._c_beats.inc()
            finally:
                await client.close()


__all__ = [
    "BEAT_RETRY",
    "ClusterWorker",
    "WorkerConfig",
]
