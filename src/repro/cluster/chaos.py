"""Deterministic cluster chaos: seeded fault plans, checked invariants.

The fault vocabulary is reused from :mod:`repro.faults` — the same
frozen :class:`~repro.faults.plan.FaultPlan` / ``CrashEvent`` /
``CacheDropEvent`` types that drive the PFS chaos matrix — with the
cluster interpretation documented here once:

* ``CrashEvent(target="ost:<i>", at_op=k, downtime=d)`` — SIGKILL
  worker ``i`` just before request ``k``; restart it (same node id,
  fresh ephemeral port, same shard root) just before request ``k+d``.
  A downtime beyond the schedule length means "never restarted".
* ``CrashEvent(target="mds", ...)`` — kill and later restart the
  *manager* (on its original port, with an empty node table — workers
  must re-register off a ``known=false`` heartbeat).
* ``CacheDropEvent(client=i, at_op=k)`` — partition worker ``i`` from
  the manager: its heartbeats are suppressed for a fixed window while
  it keeps serving (the healthy-but-unreachable failure mode).

Determinism is by construction, not by luck: one in-process cluster
per plan, one *serial* request schedule whose tokens come from
``random.Random(f"{seed}:{plan}")``, faults fired at fixed request
indices.  Everything timing-shaped (latencies, failover counts — which
depend on how far an in-flight request got when the kill landed) is
quarantined under per-plan ``"timing"`` keys, so the rest of the
report is byte-stable across reruns and machines.

Two invariants, per the replication design (write-all/read-any — in
the consistency-model paper's terms, every committed write is visible
to a read through *any* replica, so replica choice can never return
stale data):

1. **No acked result is lost.**  Every payload a client received an
   ``ok`` for is still readable from at least one *surviving* replica
   root after the dust settles.
2. **No request fails while a replica lives.**  Under every plan here
   at least one worker is alive at each schedule index, so every
   request must succeed (possibly after failover).
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.cluster.client import ClusterClient
from repro.obs.registry import MetricsRegistry
from repro.cluster.manager import ClusterManager, ManagerConfig
from repro.cluster.store import ReplicatedStore
from repro.cluster.worker import ClusterWorker, WorkerConfig
from repro.faults.plan import CacheDropEvent, CrashEvent, FaultPlan
from repro.serve.handlers import request_key
from repro.serve.server import ServeConfig, ServerHandle

#: how many requests a heartbeat partition lasts
HEARTBEAT_LOSS_OPS = 8
#: distinct sleep tokens per schedule — small on purpose, so keys
#: repeat and acked results get re-read through surviving replicas
TOKEN_SPACE = 8
#: a downtime longer than any schedule: "killed, never restarted"
NEVER = 10**6
#: per-request deadline: generous next to the 0/0.5 s sleeps, small
#: enough that a half-open connection (stale address of a restarted
#: node) costs seconds, not the schedule — the client-side exchange
#: bound is deadline + grace per attempt
REQUEST_DEADLINE_S = 5.0


def cluster_fault_plans(seed: int = 7) -> list[FaultPlan]:
    """The seeded cluster fault matrix (`at_op` = request index)."""
    return [
        FaultPlan(name="fault-free", seed=seed),
        FaultPlan(name="worker-kill-restart", seed=seed, crashes=(
            CrashEvent(target="ost:1", at_op=6, downtime=8),)),
        FaultPlan(name="worker-kill-norestart", seed=seed, crashes=(
            CrashEvent(target="ost:2", at_op=10, downtime=NEVER),)),
        FaultPlan(name="worker-kill-midrequest", seed=seed, crashes=(
            CrashEvent(target="ost:0", at_op=12, downtime=6),)),
        FaultPlan(name="heartbeat-loss", seed=seed, cache_drops=(
            CacheDropEvent(client=1, at_op=8),)),
        FaultPlan(name="manager-partition", seed=seed, crashes=(
            CrashEvent(target="mds", at_op=8, downtime=8),)),
    ]


def schedule_tokens(seed: int, plan_name: str,
                    requests: int) -> list[int]:
    """The serial request schedule: one seeded token per index."""
    rng = random.Random(f"{seed}:{plan_name}")
    return [rng.randrange(TOKEN_SPACE) for _ in range(requests)]


@dataclass
class ClusterHarness:
    """One in-process cluster: a manager and N workers on threads."""

    nworkers: int = 3
    rf: int = 2
    base_dir: Path = Path(".repro-cache")
    manager_handle: ServerHandle | None = None
    worker_handles: dict[str, ServerHandle | None] = \
        field(default_factory=dict)

    @property
    def node_ids(self) -> tuple[str, ...]:
        return tuple(f"w{i}" for i in range(self.nworkers))

    @property
    def manager_port(self) -> int:
        assert self.manager_handle is not None
        return self.manager_handle.port

    def start(self) -> "ClusterHarness":
        self.manager_handle = ServerHandle(ClusterManager(
            ManagerConfig(rf=self.rf))).start()
        for node_id in self.node_ids:
            self.worker_handles[node_id] = self._start_worker(node_id)
        return self

    def _start_worker(self, node_id: str) -> ServerHandle:
        worker = ClusterWorker(WorkerConfig(
            node_id=node_id,
            manager_host="127.0.0.1",
            manager_port=self.manager_port,
            nodes=self.node_ids,
            cache_dir=self.base_dir,
            rf=self.rf,
            serve=ServeConfig(debug=True, workers=0, drain_s=1.0)))
        return ServerHandle(worker).start()

    def kill_worker(self, node_id: str) -> None:
        handle = self.worker_handles.get(node_id)
        if handle is not None:
            handle.kill()
            self.worker_handles[node_id] = None

    def restart_worker(self, node_id: str) -> None:
        self.worker_handles[node_id] = self._start_worker(node_id)

    def kill_manager(self) -> int:
        """Kill the manager; returns the port a restart must rebind."""
        assert self.manager_handle is not None
        port = self.manager_port
        self.manager_handle.kill()
        self.manager_handle = None
        return port

    def restart_manager(self, port: int) -> None:
        # same address, empty node table: workers re-register when
        # their next heartbeat answers known=false
        self.manager_handle = ServerHandle(ClusterManager(
            ManagerConfig(port=port, rf=self.rf))).start()

    def worker(self, node_id: str) -> ClusterWorker | None:
        handle = self.worker_handles.get(node_id)
        return handle.server if handle is not None else None

    def alive_nodes(self) -> list[str]:
        return [node_id for node_id, handle
                in self.worker_handles.items() if handle is not None]

    def stop(self) -> None:
        for node_id, handle in self.worker_handles.items():
            if handle is not None:
                handle.stop()
            self.worker_handles[node_id] = None
        if self.manager_handle is not None:
            self.manager_handle.stop()
            self.manager_handle = None


async def _run_plan(plan: FaultPlan, harness: ClusterHarness,
                    requests: int) -> dict:
    """Drive one plan's serial schedule; returns the per-plan report."""
    tokens = schedule_tokens(plan.seed, plan.name, requests)
    registry = MetricsRegistry()
    client = ClusterClient(manager_host="127.0.0.1",
                           manager_port=harness.manager_port,
                           seed=plan.seed, registry=registry)
    kills: dict[int, list[str]] = {}
    restarts: dict[int, list[str]] = {}
    partitions: dict[int, list[int]] = {}
    for crash in plan.crashes:
        assert crash.at_op is not None, "cluster plans schedule by op"
        kills.setdefault(crash.at_op, []).append(crash.target)
        restart_at = crash.at_op + int(crash.downtime)
        if restart_at < requests:
            restarts.setdefault(restart_at, []).append(crash.target)
    for drop in plan.cache_drops:
        assert drop.at_op is not None
        partitions.setdefault(drop.at_op, []).append(drop.client)

    acked: dict[str, dict] = {}
    failures: list[dict] = []
    faults_fired: list[str] = []
    manager_port_to_rebind: int | None = None
    started = time.monotonic()

    for op, token in enumerate(tokens):
        for target in kills.get(op, []):
            if target == "mds":
                manager_port_to_rebind = harness.kill_manager()
                faults_fired.append(f"kill mds@{op}")
            else:
                node_id = f"w{int(target.split(':', 1)[1])}"
                harness.kill_worker(node_id)
                faults_fired.append(f"kill {node_id}@{op}")
        for target in restarts.get(op, []):
            if target == "mds":
                assert manager_port_to_rebind is not None
                harness.restart_manager(manager_port_to_rebind)
                faults_fired.append(f"restart mds@{op}")
            else:
                node_id = f"w{int(target.split(':', 1)[1])}"
                harness.restart_worker(node_id)
                faults_fired.append(f"restart {node_id}@{op}")
        for client_idx in partitions.get(op, []):
            node_id = f"w{client_idx}"
            worker = harness.worker(node_id)
            if worker is not None:
                worker.drop_heartbeats = True
                faults_fired.append(f"partition {node_id}@{op}")
        for start_op, clients in partitions.items():
            if op == start_op + HEARTBEAT_LOSS_OPS:
                for client_idx in clients:
                    worker = harness.worker(f"w{client_idx}")
                    if worker is not None:
                        worker.drop_heartbeats = False
                        faults_fired.append(
                            f"heal w{client_idx}@{op}")

        params = {"seconds": 0.0, "token": token}
        mid_request = plan.name == "worker-kill-midrequest" \
            and (op + 1) in kills
        if mid_request:
            # the next index kills a worker; put a slow request in
            # flight first so the kill lands mid-computation and the
            # client must fail over with work outstanding
            params = {"seconds": 0.5, "token": f"midflight-{token}"}
            pending = asyncio.ensure_future(client.request(
                "sleep", params, deadline_s=REQUEST_DEADLINE_S))
            await asyncio.sleep(0.1)
            for target in kills.get(op + 1, []):
                if target != "mds":
                    node_id = f"w{int(target.split(':', 1)[1])}"
                    harness.kill_worker(node_id)
                    faults_fired.append(f"kill {node_id}@{op + 1} "
                                        f"(mid-request)")
                    kills[op + 1] = [t for t in kills[op + 1]
                                     if t == "mds"]
            doc = await pending
        else:
            doc = await client.request("sleep", params,
                                       deadline_s=REQUEST_DEADLINE_S)
        if doc.get("ok"):
            acked[request_key("sleep", params)] = doc["result"]
        else:
            failures.append({"op": op, "token": token,
                             "error": doc.get("error")})

    await client.close()
    elapsed = time.monotonic() - started

    # invariant 1: every acked key still readable from >= 1 surviving
    # replica root (a detached reader over the shared cache base)
    reader = ReplicatedStore(base=harness.base_dir,
                             nodes=harness.node_ids, rf=harness.rf)
    live = set(harness.alive_nodes())
    lost = []
    for key in sorted(acked):
        live_holders = [n for n in reader.holders(key) if n in live]
        if not live_holders:
            lost.append(key)

    report = {
        "plan": plan.name,
        "seed": plan.seed,
        "requests": requests,
        "acked": len(acked),
        "failures": failures,
        "lost": lost,
        "faults_fired": faults_fired,
        "alive_at_end": sorted(live),
        "ok": not failures and not lost,
        "timing": {
            "elapsed_s": round(elapsed, 3),
            "failovers": registry.counter(
                "cluster.client.failovers").value,
        },
    }
    return report


def run_cluster_chaos(plans: list[FaultPlan] | None = None, *,
                      nworkers: int = 3, rf: int = 2,
                      requests: int = 24, seed: int = 7,
                      base_dir: str | Path) -> dict:
    """Run every plan on a fresh in-process cluster; aggregate report.

    Deterministic across reruns modulo the quarantined per-plan
    ``"timing"`` subdocuments.
    """
    plans = plans if plans is not None else cluster_fault_plans(seed)
    base = Path(base_dir)
    plan_reports = []
    for plan in plans:
        harness = ClusterHarness(nworkers=nworkers, rf=rf,
                                 base_dir=base / plan.name).start()
        try:
            plan_reports.append(asyncio.run(
                _run_plan(plan, harness, requests)))
        finally:
            harness.stop()
    return {
        "seed": seed,
        "nworkers": nworkers,
        "rf": rf,
        "requests_per_plan": requests,
        "plans": plan_reports,
        "violations": sum(1 for r in plan_reports if not r["ok"]),
        "ok": all(r["ok"] for r in plan_reports),
    }


def strip_timing(report: dict) -> dict:
    """The deterministic projection of a chaos report (drops every
    quarantined ``"timing"`` subdocument)."""
    doc = dict(report)
    doc["plans"] = [{k: v for k, v in plan.items() if k != "timing"}
                    for plan in report.get("plans", [])]
    return doc


__all__ = [
    "HEARTBEAT_LOSS_OPS",
    "ClusterHarness",
    "NEVER",
    "TOKEN_SPACE",
    "cluster_fault_plans",
    "run_cluster_chaos",
    "schedule_tokens",
    "strip_timing",
]
