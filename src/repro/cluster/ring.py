"""Consistent-hash ring: the cluster's shard map.

Cache keys are placed on a 64-bit ring; each node contributes
``vnodes`` virtual points (SHA-256 of ``"{node}#{v}"``), and a key
belongs to the first ``rf`` *distinct* nodes clockwise from its own
hash point.  Two properties make this the right shard map for a
replicated cache tier, and both are pinned by hypothesis tests:

* **balance** — with 64 virtual points per node the exact keyspace
  share of every node stays within a small constant factor of ``1/n``
  (the shares are computable in closed form from the ring arcs, no
  sampling needed);
* **minimal remapping** — adding a node only moves keys *to* the new
  node, and removing a node only moves the keys it owned.  Every other
  key keeps its replica set, which is what keeps a membership change
  from invalidating the whole cache tier.

The ring is a pure function of the sorted node-id tuple: every party
(manager, workers, clients, the chaos invariant checker) that knows
the member list derives the identical shard map with no coordination.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass, field

#: virtual points each node contributes to the ring
DEFAULT_VNODES = 64
#: ring positions are 64-bit: the top 8 bytes of a SHA-256 digest
RING_BITS = 64
RING_SIZE = 1 << RING_BITS


def ring_hash(data: str) -> int:
    """Deterministic 64-bit ring position for ``data``."""
    digest = hashlib.sha256(data.encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class HashRing:
    """Immutable consistent-hash ring over a set of node ids."""

    nodes: tuple[str, ...]
    vnodes: int = DEFAULT_VNODES
    #: sorted (position, node) virtual points; derived, never passed
    _points: tuple[tuple[int, str], ...] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if len(set(self.nodes)) != len(self.nodes):
            raise ValueError("ring nodes must be unique")
        if self.vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        points = sorted(
            (ring_hash(f"{node}#{v}"), node)
            for node in self.nodes for v in range(self.vnodes))
        object.__setattr__(self, "_points", tuple(points))

    def __len__(self) -> int:
        return len(self.nodes)

    def replicas(self, key: str, rf: int) -> list[str]:
        """The first ``rf`` distinct nodes clockwise from ``key``.

        Fewer than ``rf`` nodes on the ring means every node is a
        replica — the set degrades, it never errors.
        """
        if rf < 1:
            raise ValueError("rf must be >= 1")
        if not self._points:
            return []
        want = min(rf, len(self.nodes))
        start = bisect.bisect_right(
            self._points, (ring_hash(key), "￿"))
        chosen: list[str] = []
        for i in range(len(self._points)):
            _, node = self._points[(start + i) % len(self._points)]
            if node not in chosen:
                chosen.append(node)
                if len(chosen) == want:
                    break
        return chosen

    def primary(self, key: str) -> str | None:
        """The first replica of ``key`` (``None`` on an empty ring)."""
        owners = self.replicas(key, 1) if self.nodes else []
        return owners[0] if owners else None

    def shares(self) -> dict[str, float]:
        """Exact keyspace fraction owned (as primary) by each node.

        Computed from the ring arcs: every position in the half-open
        arc ``(previous point, point]`` maps to ``point``'s node.  The
        fractions sum to 1.0 and need no key sampling — the balance
        property tests gate on these.
        """
        if not self._points:
            return {}
        owned = {node: 0 for node in self.nodes}
        previous = self._points[-1][0] - RING_SIZE  # wraparound arc
        for position, node in self._points:
            owned[node] += position - previous
            previous = position
        return {node: arc / RING_SIZE
                for node, arc in sorted(owned.items())}

    def to_dict(self) -> dict:
        return {"nodes": sorted(self.nodes), "vnodes": self.vnodes}


__all__ = [
    "DEFAULT_VNODES",
    "HashRing",
    "RING_BITS",
    "RING_SIZE",
    "ring_hash",
]
