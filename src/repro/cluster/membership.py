"""Heartbeat-driven membership: who is in the cluster, and who is alive.

The failure detector is deliberately boring and deliberately pure:
every judgement is a function of ``(last heartbeat, now)`` with ``now``
passed in explicitly, so tests drive it with virtual timestamps and the
verdicts are bit-for-bit reproducible — no sleeps, no wall clock in the
logic.  The transport (the manager's TCP loop) owns the real clock; the
policy here never reads one.

Three states, by heartbeat age:

* ``alive``   — last beat within ``suspect_after_s``;
* ``suspect`` — a beat (or two) missed, but inside ``failure_timeout_s``;
  routing still uses the node, operators see the warning;
* ``dead``    — past ``failure_timeout_s``.  Routing skips the node;
  a fresh heartbeat resurrects it instantly (the detector holds no
  grudge — a partitioned-but-healthy worker rejoins by beating).

Membership is *sticky*: a registered node stays on the shard ring
(:mod:`repro.cluster.ring`) even while dead, so replica placement never
churns on transient failures — only routing changes.  A node that
re-registers under its own id (a restart on a new port) updates its
address in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: how often workers beat (seconds; the manager advertises this)
DEFAULT_HEARTBEAT_INTERVAL_S = 0.2
#: beats older than this mark the node suspect
DEFAULT_SUSPECT_AFTER_S = 0.5
#: beats older than this mark the node dead (routing skips it)
DEFAULT_FAILURE_TIMEOUT_S = 1.5

STATUS_ALIVE = "alive"
STATUS_SUSPECT = "suspect"
STATUS_DEAD = "dead"


@dataclass
class NodeInfo:
    """One registered worker: address plus heartbeat bookkeeping."""

    node_id: str
    host: str
    port: int
    registered_at: float
    last_beat: float
    beats: int = 0
    #: bumped on every (re-)registration; a restarted node is a new
    #: incarnation of the same ring position
    generation: int = 1


@dataclass
class FailureDetector:
    """Pure timeout policy: heartbeat age -> alive/suspect/dead."""

    suspect_after_s: float = DEFAULT_SUSPECT_AFTER_S
    failure_timeout_s: float = DEFAULT_FAILURE_TIMEOUT_S

    def __post_init__(self) -> None:
        if not 0 < self.suspect_after_s <= self.failure_timeout_s:
            raise ValueError(
                "need 0 < suspect_after_s <= failure_timeout_s")

    def status(self, last_beat: float, now: float) -> str:
        age = now - last_beat
        if age <= self.suspect_after_s:
            return STATUS_ALIVE
        if age <= self.failure_timeout_s:
            return STATUS_SUSPECT
        return STATUS_DEAD


@dataclass
class Membership:
    """The manager's node table: registrations + heartbeat verdicts."""

    detector: FailureDetector = field(default_factory=FailureDetector)
    rf: int = 2
    _nodes: dict[str, NodeInfo] = field(default_factory=dict)

    def register(self, node_id: str, host: str, port: int,
                 now: float) -> NodeInfo:
        """Add (or re-address) a worker; registration is a heartbeat."""
        info = self._nodes.get(node_id)
        if info is None:
            info = NodeInfo(node_id=node_id, host=host, port=port,
                            registered_at=now, last_beat=now)
            self._nodes[node_id] = info
        else:
            info.host = host
            info.port = port
            info.last_beat = now
            info.generation += 1
        return info

    def beat(self, node_id: str, now: float) -> bool:
        """Record a heartbeat; ``False`` asks the node to re-register."""
        info = self._nodes.get(node_id)
        if info is None:
            return False
        info.last_beat = now
        info.beats += 1
        return True

    def status(self, node_id: str, now: float) -> str | None:
        info = self._nodes.get(node_id)
        if info is None:
            return None
        return self.detector.status(info.last_beat, now)

    def node(self, node_id: str) -> NodeInfo | None:
        return self._nodes.get(node_id)

    def ring_nodes(self) -> list[str]:
        """Every registered node id, sorted — the shard-map input.

        Dead nodes stay on the ring on purpose: placement is sticky,
        only routing reacts to failures.
        """
        return sorted(self._nodes)

    def routable(self, now: float) -> list[str]:
        """Nodes a request may be sent to (alive or merely suspect)."""
        return [node_id for node_id in self.ring_nodes()
                if self.status(node_id, now) != STATUS_DEAD]

    def alive(self, now: float) -> list[str]:
        return [node_id for node_id in self.ring_nodes()
                if self.status(node_id, now) == STATUS_ALIVE]

    def snapshot(self, now: float) -> dict:
        """JSON-able membership view (the ``membership`` endpoint)."""
        nodes = []
        for node_id in self.ring_nodes():
            info = self._nodes[node_id]
            nodes.append({
                "node": node_id,
                "host": info.host,
                "port": info.port,
                "status": self.detector.status(info.last_beat, now),
                "age_s": round(max(0.0, now - info.last_beat), 4),
                "beats": info.beats,
                "generation": info.generation,
            })
        return {
            "rf": self.rf,
            "nodes": nodes,
            "ring": self.ring_nodes(),
            "alive": sum(1 for n in nodes
                         if n["status"] == STATUS_ALIVE),
            "dead": sum(1 for n in nodes
                        if n["status"] == STATUS_DEAD),
            "suspect_after_s": self.detector.suspect_after_s,
            "failure_timeout_s": self.detector.failure_timeout_s,
        }


__all__ = [
    "DEFAULT_FAILURE_TIMEOUT_S",
    "DEFAULT_HEARTBEAT_INTERVAL_S",
    "DEFAULT_SUSPECT_AFTER_S",
    "FailureDetector",
    "Membership",
    "NodeInfo",
    "STATUS_ALIVE",
    "STATUS_DEAD",
    "STATUS_SUSPECT",
]
