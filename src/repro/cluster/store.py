"""Shard-replicated result store: write-all / read-any over the ring.

The cluster's cache tier is the batch ``.repro-cache/`` split into one
root per node (``<base>/node-<id>/``), with placement decided by the
consistent-hash ring: every cache key has ``rf`` replica nodes, a
committed payload is written to **all** of their roots, and a read may
be served from **any** of them — the CRAQ-style discipline of the 3FS
design notes, scaled down to directories.  The consequence the chaos
suite pins: killing any single node (with ``rf >= 2``) loses zero
committed results, because every key the dead node held has a live
replica whose root holds the identical payload.

Each per-node root is a plain :class:`repro.study.cache.ResultCache`
(same atomic tempfile+rename writes, same corrupt→miss degradation,
same content-addressed keys as the batch CLI), so a node's shard
directory is independently inspectable and prunable with the existing
``study cache`` tooling.

Reads probe the local node first when it is a replica (no hop beats a
hop), then the remaining replicas in ring order.  A hit found on a
peer is *repaired* into the local replica root when the local node
owns the key — read-repair keeps a restarted node's shard warming
itself back up without a dedicated recovery pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.study.cache import CacheStats, ResultCache

#: per-node shard directory prefix under the shared base directory
NODE_ROOT_PREFIX = "node-"


def node_root(base: str | Path, node_id: str) -> Path:
    """The one naming convention every cluster party derives roots by."""
    return Path(base) / f"{NODE_ROOT_PREFIX}{node_id}"


@dataclass
class ReplicatedStore:
    """Write-all/read-any cache over per-node shard roots.

    Duck-typed to :class:`~repro.study.cache.ResultCache` (``get`` /
    ``put`` / ``enabled`` / ``stats`` / ``root``), so an
    :class:`~repro.serve.server.AnalysisServer` uses one as its cache
    unchanged.
    """

    base: Path
    nodes: tuple[str, ...]
    rf: int = 2
    #: the node this store serves on; ``None`` for a detached reader
    #: (the invariant checker reads surviving roots this way)
    local: str | None = None
    enabled: bool = True
    vnodes: int = DEFAULT_VNODES
    stats: CacheStats = field(default_factory=CacheStats)
    _ring: HashRing = field(init=False, repr=False)
    _caches: dict[str, ResultCache] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.base = Path(self.base)
        self.nodes = tuple(sorted(self.nodes))
        if not self.nodes:
            raise ValueError("a ReplicatedStore needs >= 1 node")
        if self.rf < 1:
            raise ValueError("rf must be >= 1")
        if self.local is not None and self.local not in self.nodes:
            raise ValueError(
                f"local node {self.local!r} not in {self.nodes}")
        self._ring = HashRing(self.nodes, vnodes=self.vnodes)
        self._caches = {
            node: ResultCache(root=node_root(self.base, node),
                              enabled=self.enabled)
            for node in self.nodes}

    @property
    def ring(self) -> HashRing:
        return self._ring

    @property
    def root(self) -> Path:
        """The local shard root (what ``fingerprint`` advertises)."""
        if self.local is not None:
            return node_root(self.base, self.local)
        return self.base

    def replicas(self, key: str) -> list[str]:
        """The nodes whose roots must hold ``key`` once committed."""
        return self._ring.replicas(key, self.rf)

    def _read_order(self, replicas: list[str]) -> list[str]:
        if self.local in replicas:
            return [self.local] + [n for n in replicas
                                   if n != self.local]
        return replicas

    def get(self, key: str) -> dict | None:
        """Read-any: the first replica root that answers wins."""
        if not self.enabled:
            self.stats.misses += 1
            return None
        replicas = self.replicas(key)
        for node in self._read_order(replicas):
            payload = self._caches[node].get(key)
            if payload is not None:
                self.stats.hits += 1
                if node != self.local and self.local in replicas:
                    # read-repair: refill the local replica so a
                    # restarted node re-warms its own shard
                    self._caches[self.local].put(key, payload)
                return payload
        self.stats.misses += 1
        return None

    def put(self, key: str, payload: dict) -> None:
        """Write-all: commit to every replica root of the key's shard.

        Individual roots keep :class:`ResultCache`'s swallow-on-failure
        contract (the cache is an accelerator); the replication factor
        is what makes any *single* loss survivable.
        """
        if not self.enabled:
            return
        for node in self.replicas(key):
            self._caches[node].put(key, payload)
        self.stats.writes += 1

    def holders(self, key: str) -> list[str]:
        """Which replica roots hold ``key`` right now (diagnostics and
        the chaos invariant checker)."""
        return [node for node in self.replicas(key)
                if self._caches[node].get(key) is not None]


__all__ = [
    "NODE_ROOT_PREFIX",
    "ReplicatedStore",
    "node_root",
]
