"""Membership-routed client: the retrying client, made failover-aware.

The per-connection machinery is unchanged — every wire exchange still
goes through :class:`repro.serve.client.ServeClient` with its seeded
backoff.  What this layer adds is *where* to send the request and what
to do when a node stops answering:

1. fetch the membership snapshot from the manager (cached between
   requests; refreshed on demand when a sweep comes up empty);
2. derive the key's replica set from the shard ring — reads prefer
   the nodes whose roots hold the committed payload (a cache hit needs
   no recomputation), but because workers are stateless *any* routable
   node is an acceptable fallback;
3. on connect-refused, reset, deadline, or ``overloaded``, mark the
   node degraded and fail over to the next candidate.  ``bad_request``
   never fails over (no node will like the request better), and
   ``internal`` is returned to the caller, who knows the taxonomy.

With ``check_health=True`` the client probes ``healthz`` before the
first use of a node each sweep and treats any non-``ok`` status
(``degraded``, ``draining``) as the failover signal it is — the server
saying "routable, but not by preference" before the request is risked.

A manager outage degrades routing freshness, not availability: the
last snapshot keeps being used, and refresh failures surface only if
every known node is also unreachable.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.cluster.ring import HashRing
from repro.obs import registry as obs
from repro.pfs.config import RetryPolicy
from repro.serve import protocol
from repro.serve.client import (
    ServeClient,
    ServeConnectionError,
    is_failover_response,
)
from repro.serve.handlers import request_key

#: per-node budget before failing over; failover IS the retry story
#: here, so each node gets only a couple of quick attempts
NODE_RETRY = RetryPolicy(max_attempts=2, base_delay=0.05,
                         backoff=2.0, jitter=0.1)


class ClusterUnavailableError(ServeConnectionError):
    """No routable node could answer within the failover budget.

    A subclass of :class:`ServeConnectionError` so every caller built
    for the single-server client (the load generator, the CLI) handles
    cluster exhaustion identically to server unreachability.
    """


@dataclass
class ClusterClient:
    """One closed-loop requester routed through cluster membership.

    Duck-typed to :class:`~repro.serve.client.ServeClient` for the
    load generator (``request``/``close``), so ``run_load`` drives a
    cluster exactly as it drives one server.
    """

    manager_host: str = "127.0.0.1"
    manager_port: int = 0
    seed: int = 0
    #: probe healthz before first use of a node each sweep and treat
    #: non-'ok' as a failover signal (the degraded-healthz satellite)
    check_health: bool = False
    retry: RetryPolicy = field(default_factory=lambda: NODE_RETRY)
    registry: obs.MetricsRegistry | None = None
    _membership: dict | None = None
    _ring: HashRing | None = None
    _rf: int = 2
    #: node -> address from the latest snapshot
    _addresses: dict[str, tuple[str, int]] = field(default_factory=dict)
    _routable: list[str] = field(default_factory=list)
    #: nodes that failed this client recently; deprioritized, not banned
    _degraded: set[str] = field(default_factory=set)
    _clients: dict[str, ServeClient] = field(default_factory=dict)

    def __post_init__(self) -> None:
        reg = self.registry if self.registry is not None \
            else obs.NullRegistry()
        self._c_requests = reg.counter("cluster.client.requests")
        self._c_failovers = reg.counter("cluster.client.failovers")
        self._c_refreshes = reg.counter("cluster.client.refreshes")
        self._c_health_rejects = reg.counter(
            "cluster.client.health_rejects")

    # -- membership --------------------------------------------------------

    async def refresh(self) -> dict:
        """Fetch the membership snapshot and rebuild the route table."""
        manager = ServeClient(host=self.manager_host,
                              port=self.manager_port, seed=self.seed,
                              retry=self.retry)
        try:
            doc = await manager.request("membership", {})
        finally:
            await manager.close()
        if not doc.get("ok"):
            raise ClusterUnavailableError(
                f"manager refused membership query: "
                f"{doc.get('error')}")
        snapshot = doc["result"]
        self._membership = snapshot
        self._rf = int(snapshot.get("rf", 2))
        ring_nodes = tuple(snapshot.get("ring", []))
        self._ring = HashRing(ring_nodes) if ring_nodes else None
        self._addresses = {
            n["node"]: (n["host"], n["port"])
            for n in snapshot.get("nodes", [])}
        self._routable = [n["node"] for n in snapshot.get("nodes", [])
                          if n["status"] != "dead"]
        self._c_refreshes.inc()
        return snapshot

    async def _ensure_membership(self) -> None:
        if self._membership is None:
            await self.refresh()

    def _targets(self, key: str | None) -> list[str]:
        """Candidate nodes in preference order for one request.

        Replicas of the key first (in ring order), then the remaining
        routable nodes — any worker can compute any key, so the tail
        of the list is a correctness fallback, not a guess.  Nodes
        marked degraded sink to the back of each class rather than
        vanish: when everything is degraded, something must still be
        tried.

        Nodes the detector marked dead are excluded outright, replicas
        included: a really-killed worker's port may *hang* instead of
        refusing (its orphaned pool children can inherit the listening
        socket), so trying it costs the whole deadline bound, not one
        RST.  Only when the snapshot lists nobody routable at all does
        the sweep fall back to every known address — a manager that
        lost all its heartbeats beats failing without trying.
        """
        pool = list(self._routable) or list(self._addresses)
        if key is not None and self._ring is not None:
            replicas = [n for n in self._ring.replicas(key, self._rf)
                        if n in pool]
            rest = [n for n in pool if n not in replicas]
            ordered = replicas + rest
        else:
            ordered = pool
        fresh = [n for n in ordered if n not in self._degraded]
        stale = [n for n in ordered if n in self._degraded]
        return fresh + stale

    def _client_for(self, node: str) -> ServeClient:
        client = self._clients.get(node)
        host, port = self._addresses[node]
        if client is None or (client.host, client.port) != (host, port):
            client = ServeClient(host=host, port=port,
                                 retry=self.retry, seed=self.seed)
            self._clients[node] = client
        return client

    # -- requesting --------------------------------------------------------

    async def request(self, endpoint: str, params: dict | None = None,
                      *, deadline_s: float | None = None) -> dict:
        """One request -> the first non-failover response.

        Sweeps the candidate nodes in preference order; if the whole
        sweep fails, refreshes membership once (the snapshot may be
        stale) and sweeps again before giving up.
        """
        params = params or {}
        await self._ensure_membership()
        self._c_requests.inc()
        try:
            key = request_key(endpoint, params)
        except protocol.BadRequest:
            # inline endpoints (healthz/metrics) have no shard; any
            # routable node answers
            key = None
        failures: list[str] = []
        for sweep in range(2):
            if sweep:
                try:
                    await self.refresh()
                except Exception as exc:  # noqa: BLE001 — stale
                    # routing beats no routing; the resweep still uses
                    # the previous snapshot
                    failures.append(f"membership refresh: {exc}")
            response = await self._sweep(endpoint, params, key,
                                         deadline_s, failures)
            if response is not None:
                return response
        raise ClusterUnavailableError(
            f"{endpoint} failed on every routable node: "
            f"{'; '.join(failures) if failures else 'no nodes known'}")

    async def _sweep(self, endpoint: str, params: dict,
                     key: str | None, deadline_s: float | None,
                     failures: list[str]) -> dict | None:
        for node in self._targets(key):
            client = self._client_for(node)
            if self.check_health \
                    and not await self._healthy(node, client):
                failures.append(f"{node}: healthz not ok")
                continue
            try:
                response = await client.request(
                    endpoint, params, deadline_s=deadline_s)
            except Exception as exc:  # noqa: BLE001 — any transport
                # failure is a failover signal by definition
                self._note_failover(node)
                failures.append(f"{node}: {type(exc).__name__}")
                await client.close()
                continue
            if is_failover_response(response) \
                    and endpoint != "healthz":
                self._note_failover(node)
                failures.append(
                    f"{node}: answered "
                    f"{protocol.response_error_code(response)!r}")
                continue
            self._degraded.discard(node)
            return response
        return None

    async def _healthy(self, node: str, client: ServeClient) -> bool:
        try:
            doc = await client.request("healthz", {})
        except Exception:  # noqa: BLE001 — unreachable means not ok
            self._note_failover(node)
            await client.close()
            return False
        if is_failover_response(doc):
            self._c_health_rejects.inc()
            self._note_failover(node)
            return False
        return True

    def _note_failover(self, node: str) -> None:
        self._degraded.add(node)
        self._c_failovers.inc()

    async def close(self) -> None:
        clients, self._clients = list(self._clients.values()), {}
        for client in clients:
            await client.close()


def cluster_request_sync(manager_host: str, manager_port: int,
                         endpoint: str, params: dict | None = None, *,
                         deadline_s: float | None = None,
                         seed: int = 0,
                         check_health: bool = False) -> dict:
    """Blocking one-shot cluster request (CLI and smoke-test path)."""

    async def go() -> dict:
        client = ClusterClient(manager_host=manager_host,
                               manager_port=manager_port, seed=seed,
                               check_health=check_health)
        try:
            return await client.request(endpoint, params,
                                        deadline_s=deadline_s)
        finally:
            await client.close()

    return asyncio.run(go())


__all__ = [
    "ClusterClient",
    "ClusterUnavailableError",
    "NODE_RETRY",
    "cluster_request_sync",
]
