"""repro.cluster: a heartbeat-managed, shard-replicated analysis cluster.

The single-process analysis service (:mod:`repro.serve`) grown into a
small cluster that keeps answering — and loses no committed cache
results — when a node dies:

* :mod:`repro.cluster.ring` — the consistent-hash shard map;
* :mod:`repro.cluster.membership` — heartbeat bookkeeping with a pure,
  virtual-time-testable failure detector;
* :mod:`repro.cluster.manager` — the membership service;
* :mod:`repro.cluster.store` — write-all/read-any replicated cache;
* :mod:`repro.cluster.worker` — stateless serving nodes;
* :mod:`repro.cluster.client` — membership-routed failover client;
* :mod:`repro.cluster.chaos` — deterministic kill/partition suite.

See ``docs/cluster.md`` for the design and its invariants.
"""

from __future__ import annotations

from repro.cluster.chaos import cluster_fault_plans, run_cluster_chaos
from repro.cluster.client import (
    ClusterClient,
    ClusterUnavailableError,
    cluster_request_sync,
)
from repro.cluster.manager import ClusterManager, ManagerConfig
from repro.cluster.membership import FailureDetector, Membership
from repro.cluster.ring import HashRing, ring_hash
from repro.cluster.store import ReplicatedStore, node_root
from repro.cluster.worker import ClusterWorker, WorkerConfig

__all__ = [
    "ClusterClient",
    "ClusterManager",
    "ClusterUnavailableError",
    "ClusterWorker",
    "FailureDetector",
    "HashRing",
    "ManagerConfig",
    "Membership",
    "ReplicatedStore",
    "WorkerConfig",
    "cluster_fault_plans",
    "cluster_request_sync",
    "node_root",
    "ring_hash",
    "run_cluster_chaos",
]
