"""The cluster manager: membership by heartbeat, over the serve protocol.

One small asyncio TCP service speaking the same length-prefixed
canonical-JSON frames as :mod:`repro.serve.protocol`, answering only
membership traffic — it never computes, caches, or proxies analysis
work (the 3FS shape: a tiny cluster manager beside stateless
services).  Losing the manager therefore costs *routing freshness*,
never results: workers keep serving, clients keep using their last
membership snapshot, and heartbeats resume when the manager returns.

Endpoints (all inline, no admission queue — membership reads must stay
answerable under any load):

* ``register``   — ``{node, host, port}``: join (or re-address) the
  cluster; registration counts as a heartbeat.
* ``heartbeat``  — ``{node}``: refresh liveness.  An unknown node gets
  ``{"known": false}`` and is expected to re-register (the manager may
  have restarted and lost its table).
* ``membership`` — the node table with per-node alive/suspect/dead
  verdicts, the sticky ring node list, and the detector's tunables.
* ``healthz`` / ``metrics`` — liveness and the ``cluster.*`` registry.

Time discipline: the TCP loop stamps events with an injectable
``clock`` (default ``time.monotonic``); every liveness *judgement* is
delegated to the pure :class:`~repro.cluster.membership.Membership`
policy with an explicit ``now``, so the detector itself stays
virtual-time-testable.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Callable

from repro.cluster.membership import (
    DEFAULT_FAILURE_TIMEOUT_S,
    DEFAULT_HEARTBEAT_INTERVAL_S,
    DEFAULT_SUSPECT_AFTER_S,
    FailureDetector,
    Membership,
)
from repro.obs import registry as obs
from repro.serve import protocol


@dataclass
class ManagerConfig:
    """Tunables of one :class:`ClusterManager` instance."""

    host: str = "127.0.0.1"
    #: 0 = ephemeral; the bound port is on ``manager.port`` after start
    port: int = 0
    #: replica count the cluster advertises to workers and clients
    rf: int = 2
    heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S
    suspect_after_s: float = DEFAULT_SUSPECT_AFTER_S
    failure_timeout_s: float = DEFAULT_FAILURE_TIMEOUT_S
    #: how long shutdown waits (kept for ServerHandle compatibility;
    #: the manager holds no long-running work to drain)
    drain_s: float = 2.0
    max_frame: int = protocol.MAX_FRAME


class ClusterManager:
    """Heartbeat bookkeeper for one cluster, ServerHandle-compatible."""

    def __init__(self, config: ManagerConfig | None = None, *,
                 registry: obs.MetricsRegistry | None = None,
                 clock: Callable[[], float] = time.monotonic):
        self.config = config or ManagerConfig()
        self.registry = registry if registry is not None \
            else obs.MetricsRegistry()
        self.clock = clock
        self.membership = Membership(
            detector=FailureDetector(
                suspect_after_s=self.config.suspect_after_s,
                failure_timeout_s=self.config.failure_timeout_s),
            rf=self.config.rf)
        self.port: int | None = None
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        reg = self.registry
        self._c_registrations = reg.counter("cluster.registrations")
        self._c_heartbeats = reg.counter("cluster.heartbeats")
        self._c_requests = reg.counter("cluster.manager.requests")
        self._c_bad = reg.counter("cluster.manager.bad_requests")
        self._g_alive = reg.gauge("cluster.nodes_alive")
        self._g_dead = reg.gauge("cluster.nodes_dead")

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("manager already started")
        self._server = await asyncio.start_server(
            self._serve_connection, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def stop(self) -> None:
        # listener first (no new connections), then RST live ones so
        # the port frees immediately — wait_closed() last, because on
        # this Python it also waits for handler completion
        if self._server is not None:
            self._server.close()
        for writer in list(self._writers):
            try:
                writer.transport.abort()
            except (OSError, RuntimeError):
                pass
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections,
                                 return_exceptions=True)
        if self._server is not None:
            try:
                await self._server.wait_closed()
            except (RuntimeError, OSError):
                pass
        self._server = None

    # -- connection handling -----------------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        self._writers.add(writer)
        try:
            while True:
                try:
                    doc = await protocol.read_frame(
                        reader, max_frame=self.config.max_frame)
                except (EOFError, asyncio.IncompleteReadError):
                    break
                except protocol.FrameTooLarge as exc:
                    await self._write(writer, protocol.error_response(
                        None, protocol.ERR_BAD_REQUEST, str(exc)))
                    break
                except protocol.ProtocolError as exc:
                    await self._write(writer, protocol.error_response(
                        None, protocol.ERR_BAD_REQUEST, str(exc)))
                    continue
                try:
                    response = self._handle(doc)
                except Exception as exc:  # noqa: BLE001 — same taxonomy
                    # discipline as the analysis server: degrade to
                    # 'internal', never to a dead manager
                    response = protocol.error_response(
                        doc.get("id"), protocol.ERR_INTERNAL,
                        f"{type(exc).__name__}: {exc}")
                await self._write(writer, response)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, RuntimeError):
                pass

    async def _write(self, writer: asyncio.StreamWriter,
                     doc: dict) -> None:
        try:
            await protocol.write_frame(writer, doc)
        except (ConnectionError, OSError):
            pass

    # -- request handling --------------------------------------------------

    def _handle(self, doc: dict) -> dict:
        self._c_requests.inc()
        try:
            request = protocol.parse_request(doc)
        except protocol.BadRequest as exc:
            self._c_bad.inc()
            return protocol.error_response(
                doc.get("id"), protocol.ERR_BAD_REQUEST, str(exc))
        now = self.clock()
        handlers = {
            "register": self._register,
            "heartbeat": self._heartbeat,
            "membership": self._membership,
            "healthz": self._healthz,
            "metrics": self._metrics,
        }
        handler = handlers.get(request.endpoint)
        if handler is None:
            self._c_bad.inc()
            return protocol.error_response(
                request.id, protocol.ERR_BAD_REQUEST,
                f"unknown manager endpoint {request.endpoint!r}; "
                f"known: {', '.join(sorted(handlers))}")
        try:
            result = handler(request.params, now)
        except protocol.BadRequest as exc:
            self._c_bad.inc()
            return protocol.error_response(
                request.id, protocol.ERR_BAD_REQUEST, str(exc))
        self._update_gauges(now)
        return protocol.ok_response(request.id, result)

    def _update_gauges(self, now: float) -> None:
        snapshot = self.membership.snapshot(now)
        self._g_alive.set(snapshot["alive"])
        self._g_dead.set(snapshot["dead"])

    @staticmethod
    def _str_param(params: dict, name: str) -> str:
        value = params.get(name)
        if not isinstance(value, str) or not value:
            raise protocol.BadRequest(
                f"{name!r} must be a non-empty string")
        return value

    def _register(self, params: dict, now: float) -> dict:
        node = self._str_param(params, "node")
        host = self._str_param(params, "host")
        port = params.get("port")
        if not isinstance(port, int) or isinstance(port, bool) \
                or not 1 <= port <= 65535:
            raise protocol.BadRequest("'port' must be a TCP port")
        info = self.membership.register(node, host, port, now)
        self._c_registrations.inc()
        return {
            "registered": True,
            "node": node,
            "generation": info.generation,
            "rf": self.config.rf,
            "ring": self.membership.ring_nodes(),
            "heartbeat_interval_s": self.config.heartbeat_interval_s,
            "failure_timeout_s": self.config.failure_timeout_s,
        }

    def _heartbeat(self, params: dict, now: float) -> dict:
        node = self._str_param(params, "node")
        known = self.membership.beat(node, now)
        if known:
            self._c_heartbeats.inc()
        return {"known": known,
                "alive": len(self.membership.alive(now))}

    def _membership(self, params: dict, now: float) -> dict:
        return self.membership.snapshot(now)

    def _healthz(self, params: dict, now: float) -> dict:
        snapshot = self.membership.snapshot(now)
        return {"status": "ok",
                "role": "manager",
                "nodes": len(snapshot["nodes"]),
                "alive": snapshot["alive"],
                "dead": snapshot["dead"],
                "rf": self.config.rf}

    def _metrics(self, params: dict, now: float) -> dict:
        return {"metrics": self.registry.snapshot()}


__all__ = [
    "ClusterManager",
    "ManagerConfig",
]
