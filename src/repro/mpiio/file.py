"""MPI-IO file handles with independent and two-phase collective access.

Every MPI-IO call is recorded at the ``mpiio`` layer, and the POSIX calls
it issues are attributed to ``mpiio`` via the tracer's layer stack — so
the analysis can tell library-generated accesses from application ones,
as Recorder does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import MPIError
from repro.mpi.comm import Communicator
from repro.mpiio.views import FileView, VectorType
from repro.posix import flags as F
from repro.posix.api import PosixAPI
from repro.tracer.events import Layer
from repro.tracer.recorder import Recorder


@dataclass
class MPIIOHints:
    """The subset of ROMIO hints that shape access patterns.

    ``cb_nodes`` is the number of collective-buffering aggregator ranks;
    ``cb_buffer_size`` caps how many bytes an aggregator writes per POSIX
    call (large exchanges become several consecutive writes, as ROMIO's
    do).
    """

    cb_nodes: int = 0  # 0 = auto: one aggregator per 8 ranks, min 1
    # Scaled to simulator workloads (real ROMIO uses MiBs); only the ratio
    # to application request sizes matters for pattern shapes.
    cb_buffer_size: int = 64 << 10

    def resolved_cb_nodes(self, nranks: int) -> int:
        if self.cb_nodes > 0:
            return min(self.cb_nodes, nranks)
        return max(1, nranks // 8)


class MPIFile:
    """One rank's handle on a collectively opened file."""

    #: open modes (subset of MPI_MODE_*)
    MODE_RDONLY = F.O_RDONLY
    MODE_WRONLY = F.O_WRONLY
    MODE_RDWR = F.O_RDWR
    MODE_CREATE = F.O_CREAT

    def __init__(self, comm: Communicator, posix: PosixAPI, path: str,
                 amode: int, recorder: Recorder | None = None,
                 hints: MPIIOHints | None = None):
        self.comm = comm
        self.posix = posix
        self.path = path
        self.recorder = recorder
        self.hints = hints or MPIIOHints()
        self.view = FileView()
        self._view_pointer = 0
        self.rank = comm.rank          # position within the communicator
        self.trace_rank = posix.rank   # global rank, for trace attribution
        self.nranks = comm.size
        self._closed = False
        t0 = self._now()
        with self._as_layer():
            self.fd = posix.open(path, amode)
        self.comm.barrier()
        self._record("MPI_File_open", t0)

    # -- plumbing -------------------------------------------------------------

    @classmethod
    def open(cls, comm: Communicator, posix: PosixAPI, path: str,
             amode: int, recorder: Recorder | None = None,
             hints: MPIIOHints | None = None) -> "MPIFile":
        """Collective open (every rank of ``comm`` must call)."""
        return cls(comm, posix, path, amode, recorder, hints)

    def _now(self) -> float:
        return self.posix.ctx.clock.local_time

    def _as_layer(self):
        if self.recorder is None:
            import contextlib
            return contextlib.nullcontext()
        return self.recorder.in_layer(self.trace_rank, Layer.MPIIO)

    def _record(self, func: str, tstart: float, *, offset: int | None = None,
                count: int | None = None) -> None:
        if self.recorder is not None:
            self.recorder.record(self.trace_rank, Layer.MPIIO, func, tstart,
                                 self._now(), path=self.path, fd=self.fd,
                                 offset=offset, count=count)

    def _check_open(self) -> None:
        if self._closed:
            raise MPIError(f"file {self.path!r} already closed")

    @property
    def aggregator_ranks(self) -> list[int]:
        """Evenly spaced collective-buffering aggregators."""
        n_agg = self.hints.resolved_cb_nodes(self.nranks)
        return [round(i * self.nranks / n_agg) for i in range(n_agg)]

    # -- independent operations ------------------------------------------------

    def write_at(self, offset: int, data: "bytes | int") -> int:
        self._check_open()
        t0 = self._now()
        if isinstance(data, int):
            data = self.posix.payload(data)
        with self._as_layer():
            n = self.posix.pwrite(self.fd, data, offset)
        self._record("MPI_File_write_at", t0, offset=offset, count=n)
        return n

    def read_at(self, offset: int, count: int) -> bytes:
        self._check_open()
        t0 = self._now()
        with self._as_layer():
            data = self.posix.pread(self.fd, count, offset)
        self._record("MPI_File_read_at", t0, offset=offset, count=len(data))
        return data

    def write(self, data: "bytes | int") -> int:
        """Independent write at the file pointer (shared per handle)."""
        self._check_open()
        t0 = self._now()
        if isinstance(data, int):
            data = self.posix.payload(data)
        with self._as_layer():
            n = self.posix.write(self.fd, data)
        self._record("MPI_File_write", t0, count=n)
        return n

    def read(self, count: int) -> bytes:
        self._check_open()
        t0 = self._now()
        with self._as_layer():
            data = self.posix.read(self.fd, count)
        self._record("MPI_File_read", t0, count=len(data))
        return data

    def seek(self, offset: int, whence: int = F.SEEK_SET) -> int:
        self._check_open()
        t0 = self._now()
        with self._as_layer():
            pos = self.posix.lseek(self.fd, offset, whence)
        self._record("MPI_File_seek", t0, offset=offset)
        return pos

    # -- file views --------------------------------------------------------------

    def set_view(self, displacement: int,
                 filetype: VectorType | None = None) -> None:
        """``MPI_File_set_view``: subsequent view-relative operations
        address the file through ``filetype`` tiles starting at
        ``displacement``.  Resets the view pointer."""
        self._check_open()
        t0 = self._now()
        self.view = FileView(displacement=displacement,
                             filetype=filetype)
        self._view_pointer = 0
        self._record("MPI_File_set_view", t0, offset=displacement)

    def write_all(self, data: "bytes | int") -> int:
        """Collective write at the view pointer: each rank's bytes land
        at the strided file positions its view exposes."""
        self._check_open()
        t0 = self._now()
        if isinstance(data, int):
            data = self.posix.payload(data)
        data = bytes(data)
        runs = self.view.resolve(self._view_pointer, len(data))
        extents = []
        cursor = 0
        for off, n in runs:
            extents.append((off, data[cursor:cursor + n]))
            cursor += n
        self._view_pointer += len(data)
        gathered: list[list[tuple[int, bytes]]] = self.comm.allgather(
            [(int(o), bytes(d)) for o, d in extents])
        flat = [part for parts in gathered for part in parts]
        self._exchange_and_write(flat)
        self.comm.barrier()
        self._record("MPI_File_write_all", t0, count=len(data))
        return len(data)

    # -- collective operations ----------------------------------------------------

    def write_at_all(self, offset: int, data: "bytes | int") -> int:
        """Two-phase collective write.

        All ranks must call; each contributes one (offset, data) extent
        (pass ``b""``/0 to contribute nothing).  Contributions are
        exchanged, and each aggregator writes the coalesced runs of its
        file domain with large consecutive ``pwrite`` calls.
        """
        self._check_open()
        t0 = self._now()
        if isinstance(data, int):
            data = self.posix.payload(data)
        contribution = (int(offset), bytes(data))
        all_parts: list[tuple[int, bytes]] = self.comm.allgather(contribution)
        self._exchange_and_write(all_parts)
        self.comm.barrier()
        self._record("MPI_File_write_at_all", t0, offset=offset,
                     count=len(data))
        return len(data)

    def write_at_all_vector(
            self, extents: Sequence[tuple[int, "bytes | int"]]) -> int:
        """Collective write where each rank contributes several extents
        (the effect of a strided file view)."""
        self._check_open()
        t0 = self._now()
        mine = []
        total = 0
        for off, data in extents:
            if isinstance(data, int):
                data = self.posix.payload(data)
            mine.append((int(off), bytes(data)))
            total += len(data)
        gathered: list[list[tuple[int, bytes]]] = self.comm.allgather(mine)
        flat = [part for parts in gathered for part in parts]
        self._exchange_and_write(flat)
        self.comm.barrier()
        self._record("MPI_File_write_at_all", t0, count=total)
        return total

    def _exchange_and_write(self, parts: list[tuple[int, bytes]]) -> None:
        """Phase two of two-phase I/O, with ROMIO-style file domains.

        The global extent ``[lo, hi)`` is striped round-robin over the
        aggregators in units of ``cb_buffer_size``: in exchange round
        ``k``, aggregator ``m`` owns
        ``[lo + (k*n_agg + m)*cb, +cb)``.  Each aggregator therefore
        issues a sequence of large writes separated by a constant stride
        of ``(n_agg-1)*cb`` within one collective call — the
        "strided cyclic" per-process signature the paper reports for
        collective-I/O applications (Table 3) — or a single write when
        one round suffices.
        """
        parts = [(o, d) for o, d in parts if d]
        if not parts:
            return
        lo = min(o for o, _ in parts)
        hi = max(o + len(d) for o, d in parts)
        aggs = self.aggregator_ranks
        n_agg = len(aggs)
        try:
            my_index = aggs.index(self.rank)
        except ValueError:
            return  # not an aggregator: nothing to write in phase two
        cb = self.hints.cb_buffer_size
        parts.sort(key=lambda p: p[0])
        with self._as_layer():
            round_no = 0
            while True:
                stripe_lo = lo + (round_no * n_agg + my_index) * cb
                if stripe_lo >= hi:
                    break
                stripe_hi = min(stripe_lo + cb, hi)
                self._write_stripe(parts, stripe_lo, stripe_hi)
                round_no += 1

    def _write_stripe(self, parts: list[tuple[int, bytes]],
                      stripe_lo: int, stripe_hi: int) -> None:
        """Coalesce contributions clipped to one stripe and write the runs."""
        runs: list[tuple[int, bytearray]] = []
        for off, data in parts:
            a = max(off, stripe_lo)
            b = min(off + len(data), stripe_hi)
            if a >= b:
                continue
            piece = data[a - off:b - off]
            if runs and a <= runs[-1][0] + len(runs[-1][1]):
                run_off, buf = runs[-1]
                end = a + len(piece)
                if end > run_off + len(buf):
                    buf.extend(b"\x00" * (end - run_off - len(buf)))
                # later contribution wins on overlap (iteration order is
                # offset-then-rank order, so this is deterministic)
                buf[a - run_off:a - run_off + len(piece)] = piece
            else:
                runs.append((a, bytearray(piece)))
        for off, buf in runs:
            self.posix.pwrite(self.fd, bytes(buf), off)

    def read_at_all(self, offset: int, count: int) -> bytes:
        """Collective read; data is served with large aggregator reads."""
        self._check_open()
        t0 = self._now()
        wants: list[tuple[int, int]] = self.comm.allgather(
            (int(offset), int(count)))
        live = [(o, c) for o, c in wants if c > 0]
        if live:
            lo = min(o for o, _ in live)
            hi = max(o + c for o, c in live)
            aggs = self.aggregator_ranks
            n_agg = len(aggs)
            bounds = [lo + ((hi - lo) * i) // n_agg for i in range(n_agg + 1)]
            if self.rank in aggs:
                i = aggs.index(self.rank)
                dom_lo, dom_hi = bounds[i], bounds[i + 1]
                if dom_hi > dom_lo:
                    with self._as_layer():
                        self.posix.pread(self.fd, dom_hi - dom_lo, dom_lo)
        self.comm.barrier()
        # Aggregator exchange is modelled by the barrier; every rank then
        # has its bytes — serve them from the shared VFS for correctness.
        data = b""
        if count > 0:
            inode = self.posix.fds.get(self.fd).inode
            data = self.posix.vfs.read_at(inode, offset, count, self._now())
        self._record("MPI_File_read_at_all", t0, offset=offset,
                     count=len(data))
        return data

    # -- sync / close --------------------------------------------------------------

    def sync(self) -> None:
        """Collective MPI_File_sync: every rank fsyncs its descriptor."""
        self._check_open()
        t0 = self._now()
        with self._as_layer():
            self.posix.fsync(self.fd)
        self.comm.barrier()
        self._record("MPI_File_sync", t0)

    def close(self) -> None:
        self._check_open()
        t0 = self._now()
        with self._as_layer():
            self.posix.close(self.fd)
        self.comm.barrier()
        self._closed = True
        self._record("MPI_File_close", t0)
