"""MPI-IO file views: vector filetypes and view-relative addressing.

Real applications rarely compute strided offsets by hand the way our
proxies do — they set a *file view* (``MPI_File_set_view``) built from a
derived datatype, and the MPI-IO layer maps view-relative positions onto
the strided file bytes.  This module implements the mapping for the
workhorse case, ``MPI_Type_vector`` over a contiguous etype:

    VectorType(count=3, blocklength=2, stride=5, etype_size=4)

describes a repeating tile exposing 3 blocks of 2 etypes, block starts
5 etypes apart; the tile's extent is ``((count-1)*stride + blocklength)``
etypes.  A view is the tile repeated from a byte displacement; position
``k`` of the view maps into tile ``k // tile_bytes_visible`` at the
corresponding block.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MPIError


@dataclass(frozen=True)
class VectorType:
    """``MPI_Type_vector(count, blocklength, stride)`` over an etype.

    ``extent_etypes`` models ``MPI_Type_create_resized``: the tile
    advances by that many etypes instead of its natural extent — the
    standard way to build the interleaved distributed-array view
    (``count=1`` blocks advancing by ``nranks * blocklength``).
    """

    count: int
    blocklength: int
    stride: int
    etype_size: int = 1
    extent_etypes: int | None = None

    def __post_init__(self) -> None:
        if self.count < 1 or self.blocklength < 1 or self.etype_size < 1:
            raise MPIError("vector type fields must be positive")
        if self.stride < self.blocklength:
            raise MPIError("stride smaller than blocklength would "
                           "overlap blocks")
        natural = (self.count - 1) * self.stride + self.blocklength
        if self.extent_etypes is not None \
                and self.extent_etypes < natural:
            raise MPIError("resized extent smaller than the type's "
                           "natural span")

    @property
    def visible_bytes(self) -> int:
        """Accessible bytes per tile."""
        return self.count * self.blocklength * self.etype_size

    @property
    def extent_bytes(self) -> int:
        """File bytes a tile advances by (natural or resized extent)."""
        if self.extent_etypes is not None:
            return self.extent_etypes * self.etype_size
        return ((self.count - 1) * self.stride
                + self.blocklength) * self.etype_size

    def map_offset(self, view_offset: int) -> int:
        """File-relative byte for view-relative byte ``view_offset``."""
        if view_offset < 0:
            raise MPIError(f"negative view offset {view_offset}")
        tile, pos = divmod(view_offset, self.visible_bytes)
        block_bytes = self.blocklength * self.etype_size
        block, within = divmod(pos, block_bytes)
        return (tile * self.extent_bytes
                + block * self.stride * self.etype_size + within)


@dataclass(frozen=True)
class FileView:
    """A displacement plus an optional filetype (None = contiguous)."""

    displacement: int = 0
    filetype: VectorType | None = None

    def resolve(self, view_offset: int, nbytes: int
                ) -> list[tuple[int, int]]:
        """Map a view-relative extent to absolute (offset, len) runs."""
        if nbytes < 0:
            raise MPIError(f"negative byte count {nbytes}")
        if self.filetype is None:
            return [(self.displacement + view_offset, nbytes)] \
                if nbytes else []
        ft = self.filetype
        runs: list[tuple[int, int]] = []
        pos = view_offset
        remaining = nbytes
        block_bytes = ft.blocklength * ft.etype_size
        while remaining > 0:
            abs_off = self.displacement + ft.map_offset(pos)
            # view space is the blocks concatenated, so the position
            # within the current block is simply pos mod block size
            within_block = pos % block_bytes
            take = min(remaining, block_bytes - within_block)
            if runs and runs[-1][0] + runs[-1][1] == abs_off:
                runs[-1] = (runs[-1][0], runs[-1][1] + take)
            else:
                runs.append((abs_off, take))
            pos += take
            remaining -= take
        return runs
