"""Miniature MPI-IO implementation layered over the traced POSIX API.

Supports independent (``write_at``/``read_at``) and collective
(``write_at_all``/``read_at_all``) file access.  Collective writes use
ROMIO-style two-phase I/O: contributions are exchanged so that a small set
of *aggregator* ranks issue large contiguous POSIX writes over disjoint
file domains — the mechanism behind the paper's Figure 2(a), where only
six aggregator processes touch the FLASH checkpoint file.
"""

from repro.mpiio.file import MPIFile, MPIIOHints

__all__ = ["MPIFile", "MPIIOHints"]
