"""Zero-dependency metrics registry: counters, gauges, histograms, timers.

The simulator needs two instrument layers (the Recorder-vs-Darshan
split of the paper's §2.1 related work): cheap always-on counters that
attribute work to PFS components, and opt-in structured self-tracing
(:mod:`repro.obs.tracer`).  This module is the counter layer.

Design constraints, in order:

* **Metrics-off must cost nothing measurable.**  The module-level
  *current registry* defaults to a null registry whose instruments are
  shared no-op singletons; components capture their instruments once at
  construction time, so the hot path pays a single no-op method call
  per event and the ``study`` JSON stays byte-identical with metrics
  off (the obs-overhead bench gates this).
* **Deterministic payloads stay deterministic.**  Instruments live
  beside the simulation state, never inside it: nothing a component
  returns or serializes may depend on the registry.
* **Process pools aggregate.**  A worker process snapshots its local
  registry and the parent :meth:`MetricsRegistry.merge`\\ s it, so one
  export covers the whole matrix regardless of ``--jobs``.

Usage::

    from repro import obs

    with obs.collecting() as registry:
        run_study(...)                       # instruments fire
    print(registry.snapshot()["pfs.reads"])  # {'type': 'counter', ...}
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

#: histogram bucket upper bounds for timers (seconds); last is open-ended
TIMER_BOUNDS = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)


class Counter:
    """Monotonic event count (ops issued, bytes moved, hits, retries)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value (virtual time, live inode count)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        if value > self.value:
            self.value = value

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Value distribution with fixed bucket bounds (durations, sizes)."""

    __slots__ = ("name", "bounds", "counts", "count", "total", "min",
                 "max")

    def __init__(self, name: str, bounds: tuple[float, ...] = TIMER_BOUNDS):
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[len(self.bounds)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {"type": "histogram", "count": self.count,
                "total": self.total,
                "min": self.min if self.count else 0.0,
                "max": self.max, "bounds": list(self.bounds),
                "counts": list(self.counts)}


class Timer(Histogram):
    """Histogram of elapsed seconds with a scoped context manager."""

    __slots__ = ()

    def to_dict(self) -> dict:
        return {**super().to_dict(), "type": "timer"}

    @contextmanager
    def time(self) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - t0)


class _NullInstrument:
    """Shared no-op stand-in for every instrument kind."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @contextmanager
    def time(self) -> Iterator[None]:
        yield


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The metrics-off registry: every lookup returns the same no-op."""

    __slots__ = ()

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str,
                  bounds: tuple[float, ...] = TIMER_BOUNDS
                  ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def timer(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[None]:
        yield

    def event(self, name: str, **attrs) -> None:
        pass

    def snapshot(self) -> dict:
        return {}


class MetricsRegistry:
    """Name-addressed instrument store.

    Instruments are created on first use and addressed by dotted name
    (``layer.component.metric``); asking twice returns the same object,
    so many simulator instances within one run accumulate into shared
    counters.  Asking for a name under a different instrument kind is a
    bug and raises ``TypeError``.
    """

    def __init__(self, *, trace: bool = False) -> None:
        from repro.obs.tracer import SelfTracer

        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        #: structured span/event self-tracer; None unless opted in
        self.tracer = SelfTracer() if trace else None

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[None]:
        """Scoped self-trace span; a no-op without a tracer."""
        if self.tracer is None:
            yield
        else:
            with self.tracer.span(name, **attrs):
                yield

    def event(self, name: str, **attrs) -> None:
        """Point self-trace event; a no-op without a tracer."""
        if self.tracer is not None:
            self.tracer.event(name, **attrs)

    def _get(self, name: str, cls, *args):
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name, *args)
            self._instruments[name] = inst
        elif type(inst) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, not {cls.__name__}")
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str,
                  bounds: tuple[float, ...] = TIMER_BOUNDS) -> Histogram:
        return self._get(name, Histogram, bounds)

    def timer(self, name: str) -> Timer:
        return self._get(name, Timer, TIMER_BOUNDS)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def snapshot(self) -> dict:
        """Plain-JSON view: ``{name: {"type": ..., ...}}``, sorted."""
        return {name: self._instruments[name].to_dict()
                for name in self.names()}

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. from a pool worker) into this
        registry: counters and histograms add, gauges keep the max."""
        for name, doc in sorted(snapshot.items()):
            kind = doc.get("type")
            if kind == "counter":
                self.counter(name).inc(doc["value"])
            elif kind == "gauge":
                self.gauge(name).set_max(doc["value"])
            elif kind in ("histogram", "timer"):
                bounds = tuple(doc["bounds"])
                hist = (self.timer(name) if kind == "timer"
                        else self.histogram(name, bounds))
                if hist.bounds != bounds:
                    raise ValueError(
                        f"metric {name!r}: bucket bounds differ")
                hist.count += doc["count"]
                hist.total += doc["total"]
                if doc["count"]:
                    hist.min = min(hist.min, doc["min"])
                    hist.max = max(hist.max, doc["max"])
                for i, n in enumerate(doc["counts"]):
                    hist.counts[i] += n
            else:
                raise ValueError(
                    f"metric {name!r}: unknown kind {kind!r}")


#: the active registry; the null default keeps instruments free
_current: MetricsRegistry | NullRegistry = NullRegistry()


def current() -> MetricsRegistry | NullRegistry:
    """The registry new components capture their instruments from."""
    return _current


def enabled() -> bool:
    return isinstance(_current, MetricsRegistry)


def enable(registry: MetricsRegistry | None = None, *,
           trace: bool = False) -> MetricsRegistry:
    """Install (and return) an active registry.

    Components capture instruments at construction time, so enable
    metrics *before* building engines/simulators you want observed.
    ``trace=True`` additionally attaches a span/event self-tracer.
    """
    global _current
    _current = registry if registry is not None \
        else MetricsRegistry(trace=trace)
    return _current


def disable() -> None:
    global _current
    _current = NullRegistry()


@contextmanager
def collecting(registry: MetricsRegistry | None = None, *,
               trace: bool = False) -> Iterator[MetricsRegistry]:
    """Scoped :func:`enable`: restores the previous registry on exit."""
    global _current
    previous = _current
    reg = enable(registry, trace=trace)
    try:
        yield reg
    finally:
        _current = previous
