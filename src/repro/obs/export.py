"""Metrics export: JSON-lines documents and the text dashboard.

Two faces for one registry:

* :func:`to_jsonl` — one canonical-JSON object per line (metrics first,
  sorted by name, then self-trace spans/events in time order).  This is
  what ``--metrics out.json`` writes and what CI uploads as an
  artifact; line-oriented so ``grep pfs.`` and ``jq`` both work on it.
* :func:`render_dashboard` — the human view: counter/gauge tables per
  layer, a timer table, and a bar chart of the busiest counters, built
  from :mod:`repro.util.tables` and :mod:`repro.util.asciiplot`.
"""

from __future__ import annotations

import json

from repro.obs.registry import MetricsRegistry
from repro.util.asciiplot import barchart
from repro.util.formatting import human_time
from repro.util.tables import AsciiTable


def to_jsonl(registry: MetricsRegistry) -> str:
    """The registry (and any self-trace) as a JSON-lines document."""
    lines = [json.dumps({"metric": name, **doc}, sort_keys=True)
             for name, doc in registry.snapshot().items()]
    if registry.tracer is not None:
        lines += [json.dumps(doc, sort_keys=True)
                  for doc in registry.tracer.records()]
    return "\n".join(lines) + ("\n" if lines else "")


def parse_jsonl(text: str) -> tuple[MetricsRegistry, list[dict]]:
    """Rebuild a registry (+ raw trace records) from :func:`to_jsonl`."""
    registry = MetricsRegistry()
    snapshot: dict[str, dict] = {}
    trace_records: list[dict] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        doc = json.loads(line)
        if "metric" in doc:
            snapshot[doc.pop("metric")] = doc
        else:
            trace_records.append(doc)
    registry.merge(snapshot)
    if trace_records:
        from repro.obs.tracer import SelfTracer

        registry.tracer = SelfTracer()
        registry.tracer.merge(trace_records)
    return registry, trace_records


def _format_value(name: str, value: float) -> str:
    if "bytes" in name:
        from repro.util.formatting import human_bytes

        return human_bytes(int(value))
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return f"{int(value):,}"


def render_dashboard(registry: MetricsRegistry, *,
                     top: int = 12) -> str:
    """Counter/gauge/timer tables plus a busiest-counters bar chart."""
    snapshot = registry.snapshot()
    if not snapshot:
        return "(no metrics recorded)"
    sections: list[str] = []

    counters = {n: d for n, d in snapshot.items()
                if d["type"] == "counter"}
    gauges = {n: d for n, d in snapshot.items() if d["type"] == "gauge"}
    timers = {n: d for n, d in snapshot.items()
              if d["type"] in ("timer", "histogram")}

    if counters or gauges:
        table = AsciiTable(["metric", "kind", "value"],
                           title="Counters and gauges")
        for name, doc in sorted({**counters, **gauges}.items()):
            table.add_row(name, doc["type"],
                          _format_value(name, doc["value"]))
        sections.append(table.render())

    if timers:
        table = AsciiTable(
            ["timer", "count", "total", "mean", "max"],
            title="Timers and histograms")
        for name, doc in sorted(timers.items()):
            count = doc["count"]
            mean = doc["total"] / count if count else 0.0
            table.add_row(name, count, human_time(doc["total"]),
                          human_time(mean), human_time(doc["max"]))
        sections.append(table.render())

    busiest = sorted(((n, d["value"]) for n, d in counters.items()
                      if d["value"] > 0 and "bytes" not in n),
                     key=lambda item: (-item[1], item[0]))[:top]
    if busiest:
        sections.append(barchart(busiest,
                                 title=f"Busiest counters (top {top})"))

    if registry.tracer is not None and (registry.tracer.spans
                                        or registry.tracer.events):
        tracer = registry.tracer
        table = AsciiTable(["span/event", "t", "seconds", "attrs"],
                           title="Self-trace (slowest spans first)")
        spans = sorted(tracer.spans, key=lambda s: -s.seconds)[:top]
        for span in spans:
            attrs = " ".join(f"{k}={v}"
                             for k, v in sorted(span.attrs.items()))
            table.add_row(span.name, f"{span.start:.3f}",
                          f"{span.seconds:.4f}", attrs)
        for event in tracer.events[:top]:
            attrs = " ".join(f"{k}={v}"
                             for k, v in sorted(event.attrs.items()))
            table.add_row(event.name, f"{event.t:.3f}", "-", attrs)
        sections.append(table.render())

    return "\n\n".join(sections)
