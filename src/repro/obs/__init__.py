"""repro.obs — metrics registry + self-tracing for the simulator stack.

The observability leg of the system (after lint: static analysis,
faults: robustness, parallel/cache: performance).  Always-on-capable
counters/gauges/histograms/timers live in :mod:`repro.obs.registry`;
opt-in structured span/event self-tracing in :mod:`repro.obs.tracer`;
JSON-lines export and the text dashboard in :mod:`repro.obs.export`.

Metrics are **off by default**: :func:`current` returns a null registry
whose instruments are shared no-ops, so the instrumented hot paths in
``sim``/``pfs``/``posix``/``study`` cost one no-op call per event and
every study payload stays byte-identical to an uninstrumented run.
"""

from __future__ import annotations

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Timer,
    collecting,
    current,
    disable,
    enable,
    enabled,
)
from repro.obs.tracer import EventRecord, SelfTracer, SpanRecord

__all__ = [
    "Counter",
    "EventRecord",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "SelfTracer",
    "SpanRecord",
    "Timer",
    "collecting",
    "current",
    "disable",
    "enable",
    "enabled",
]
