"""Structured span/event self-tracing of the simulator itself.

Where :mod:`repro.obs.registry` keeps Darshan-style aggregate counters,
this is the Recorder-style layer: individual timestamped spans (a study
cell computing, a chaos matrix replaying) and point events (a cache
drop firing, a worker merge), each carrying free-form attributes.
Opt-in — a tracer exists only when the caller asked for one
(``obs.enable(trace=True)`` / ``--metrics`` CLI runs), so the always-on
path never allocates per-event records.

Timestamps are host wallclock seconds relative to the tracer's start;
they describe the *simulator process*, never simulated virtual time,
and are exported only into the metrics sidecar — study payloads stay
deterministic.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass
class SpanRecord:
    """One closed span: a named, timed stretch of simulator work."""

    name: str
    start: float
    end: float
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {"kind": "span", "name": self.name,
                "start": round(self.start, 6),
                "seconds": round(self.seconds, 6), "attrs": self.attrs}


@dataclass
class EventRecord:
    """One point-in-time event with attributes."""

    name: str
    t: float
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"kind": "event", "name": self.name,
                "t": round(self.t, 6), "attrs": self.attrs}


class SelfTracer:
    """Accumulates spans and events for one observed session."""

    def __init__(self) -> None:
        self._t0 = time.perf_counter()
        self.spans: list[SpanRecord] = []
        self.events: list[EventRecord] = []

    def _now(self) -> float:
        return time.perf_counter() - self._t0

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[SpanRecord]:
        record = SpanRecord(name=name, start=self._now(), end=0.0,
                            attrs=attrs)
        try:
            yield record
        finally:
            record.end = self._now()
            self.spans.append(record)

    def event(self, name: str, **attrs: Any) -> None:
        self.events.append(EventRecord(name=name, t=self._now(),
                                       attrs=attrs))

    def records(self) -> list[dict]:
        """Every span and event as plain dicts, in time order."""
        docs = [s.to_dict() for s in self.spans]
        docs += [e.to_dict() for e in self.events]
        docs.sort(key=lambda d: (d.get("start", d.get("t", 0.0)),
                                 d["name"]))
        return docs

    def merge(self, records: list[dict], *, offset: float = 0.0) -> None:
        """Fold exported records (e.g. from a pool worker) back in."""
        for doc in records:
            attrs = dict(doc.get("attrs", {}))
            if doc.get("kind") == "span":
                start = doc["start"] + offset
                self.spans.append(SpanRecord(
                    name=doc["name"], start=start,
                    end=start + doc["seconds"], attrs=attrs))
            else:
                self.events.append(EventRecord(
                    name=doc["name"], t=doc["t"] + offset, attrs=attrs))
