"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class.  Subsystems define narrower types:
simulator scheduling problems, POSIX errno-style failures, MPI misuse, and
trace-analysis validation failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """A problem inside the deterministic cooperative simulator."""


class DeadlockError(SimulationError):
    """All live ranks are blocked and no event can unblock them.

    Carries ``states``: a mapping of rank -> human-readable blocked reason,
    so test failures print the full wait-for picture.
    """

    def __init__(self, message: str, states: dict[int, str] | None = None):
        super().__init__(message)
        self.states = dict(states or {})


class MPIError(ReproError):
    """Misuse of the simulated MPI API (bad rank, mismatched collective...)."""


class CollectiveMismatchError(MPIError):
    """Ranks disagreed on which collective they entered next."""


class PosixError(ReproError, OSError):
    """An errno-carrying failure from the virtual file system.

    Mirrors ``OSError``: ``errno`` holds a value from the :mod:`errno`
    module and ``path`` names the offending file when known.
    """

    def __init__(self, err: int, message: str, path: str | None = None):
        ReproError.__init__(self, message)
        OSError.__init__(self, err, message)
        self.path = path


class TraceError(ReproError):
    """A malformed or internally inconsistent trace."""


class AnalysisError(ReproError):
    """The analysis pipeline was invoked with invalid inputs."""


class PFSError(ReproError):
    """A failure inside the parallel-file-system simulator."""


class PFSFaultError(PFSError):
    """A transient, retryable server-side failure (injected fault or a
    crashed server still in its downtime window).  Clients are expected
    to retry with backoff; see :class:`repro.pfs.config.RetryPolicy`."""


class PFSGiveUpError(PFSError):
    """A client exhausted its retry budget against a failing server.

    Carries ``client_id``, ``op`` and ``attempts`` so replay harnesses
    can account the abandoned operation without guessing.
    """

    def __init__(self, message: str, *, client_id: int = -1,
                 op: str = "", attempts: int = 0):
        super().__init__(message)
        self.client_id = client_id
        self.op = op
        self.attempts = attempts


class LintError(AnalysisError):
    """Misuse of the trace linter (unknown rule, bad registration...)."""


class RaceConditionError(AnalysisError):
    """Conflicting accesses were found to be unsynchronized (not race-free).

    The paper's methodology (Section 5.2) assumes traced applications are
    race-free; this error signals that the happens-before validation
    disproved that assumption for a pair of accesses.
    """
