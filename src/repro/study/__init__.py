"""Study orchestration: run the 28 configurations, build every table and
figure of the paper, and render them as text/CSV.

``python -m repro.study --nranks 8`` regenerates the whole evaluation.
"""

from repro.study.runner import RunResult, StudyResults, run_study
from repro.study.tables import (
    table1_text,
    table2_text,
    table3_cells,
    table3_text,
    table4_rows,
    table4_text,
    table5_text,
)
from repro.study.workflows import (
    WorkflowStage,
    WorkflowResult,
    run_workflow,
    make_reader_stage,
)
from repro.study.figures import (
    figure1_rows,
    figure1_text,
    figure2_series,
    figure2_text,
    figure3_matrix,
    figure3_text,
)

__all__ = [
    "RunResult", "StudyResults", "run_study",
    "table1_text", "table2_text", "table3_cells", "table3_text",
    "table4_rows", "table4_text", "table5_text",
    "figure1_rows", "figure1_text", "figure2_series", "figure2_text",
    "figure3_matrix", "figure3_text",
    "WorkflowStage", "WorkflowResult", "run_workflow",
    "make_reader_stage",
]
