"""Content-addressed result cache for study/chaos/crossvalidate cells.

The study's evaluation matrix is embarrassingly parallel *and* highly
repetitive: the same (application, configuration, seed) cell is re-run
by ``study all``, the chaos matrix, cross-validation, benchmarks, and
CI, even though its result is a pure function of the cell parameters
and the analysis code.  This module makes that function memoizable on
disk.

A cache key is the SHA-256 of a canonical-JSON *key material* document
containing:

* the cell kind (``study-cell``, ``chaos-variant``, ...);
* every cell parameter (label, nranks, seed, fault-plan names, ...);
* the **code fingerprint**: a digest over the full source of
  :mod:`repro`, so any change to the simulator, analyses, or apps
  invalidates every cached cell at once.  Correctness never depends on
  remembering to bump a version number.

Canonical JSON (sorted keys, explicit separators, no NaN) makes the
mapping from key material to key injective — two different parameter
tuples cannot collide short of a SHA-256 collision.  A hypothesis test
pins this.

Payloads are plain JSON documents stored at
``<root>/<key[:2]>/<key>.json`` and written atomically (tempfile +
``os.replace``), so a killed run can never leave a half-written cell
that a later run would trust.  Unreadable or corrupt entries degrade to
cache misses.

The default root is ``.repro-cache/`` under the current directory
(overridable with ``REPRO_CACHE_DIR``); CI restores it via
``actions/cache`` keyed on the same code fingerprint, which turns the
chaos/smoke steps into incremental replays.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any

#: environment variable naming the cache root directory
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: extra salt mixed into the fingerprint (tests use it to force misses)
FINGERPRINT_SALT_ENV = "REPRO_FINGERPRINT_SALT"
#: default cache root, relative to the working directory
DEFAULT_CACHE_DIR = ".repro-cache"


def _package_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


@lru_cache(maxsize=4)
def _source_digest(root: str) -> str:
    """SHA-256 over every ``*.py`` under ``root`` (path + content).

    Sorted traversal makes the digest independent of filesystem order;
    the relative path is hashed alongside the content so renaming a
    module changes the fingerprint even when its text does not.
    """
    h = hashlib.sha256()
    base = Path(root)
    for path in sorted(base.rglob("*.py")):
        h.update(str(path.relative_to(base)).encode())
        h.update(b"\0")
        h.update(path.read_bytes())
        h.update(b"\0")
    return h.hexdigest()


def code_fingerprint() -> str:
    """Fingerprint of the :mod:`repro` source tree (+ optional salt).

    Cells cached under one fingerprint are never served once any source
    file changes; the salt lets tests (and operators) invalidate the
    cache without touching code.
    """
    digest = _source_digest(str(_package_root()))
    salt = os.environ.get(FINGERPRINT_SALT_ENV, "")
    if not salt:
        return digest
    return hashlib.sha256(
        (digest + "\0" + salt).encode()).hexdigest()


def key_material(kind: str, **fields: Any) -> str:
    """Canonical-JSON document a cache key is hashed from.

    Exposed separately from :func:`cache_key` so tests can assert the
    material itself is injective over the cell parameters.
    """
    from repro.tracer.columnar import RTRC_VERSION

    if "kind" in fields:
        raise ValueError("'kind' is the first positional argument")
    # the on-disk trace format version is part of every key: bumping
    # RTRC_VERSION invalidates all cached cells even when no analysis
    # source changed (e.g. a column was added with a compatible default)
    doc = {"kind": kind, "fingerprint": code_fingerprint(),
           "trace_format": RTRC_VERSION, **fields}
    return json.dumps(doc, sort_keys=True, separators=(",", ":"),
                      allow_nan=False, default=_reject_unknown)


def _reject_unknown(obj: Any) -> Any:
    raise TypeError(
        f"cache key fields must be JSON-serializable, got "
        f"{type(obj).__name__}")


def cache_key(kind: str, **fields: Any) -> str:
    """SHA-256 key for one cell: ``kind`` + parameters + fingerprint."""
    return hashlib.sha256(key_material(kind, **fields).encode()) \
        .hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/write counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    @property
    def probes(self) -> int:
        return self.hits + self.misses

    def to_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes}

    def summary(self) -> str:
        return (f"{self.hits} hit{'s' if self.hits != 1 else ''}, "
                f"{self.misses} miss{'es' if self.misses != 1 else ''}")


@dataclass
class ResultCache:
    """Directory-backed JSON payload store addressed by cell key."""

    root: Path = field(default_factory=lambda: Path(
        os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)))
    enabled: bool = True
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)  # accept plain strings

    @classmethod
    def disabled(cls) -> "ResultCache":
        """A cache that never hits and never writes."""
        return cls(enabled=False)

    @classmethod
    def from_options(cls, cache_dir: str | Path | None = None,
                     no_cache: bool = False) -> "ResultCache":
        """Build from CLI-style options (``--cache-dir``/``--no-cache``)."""
        if no_cache:
            return cls.disabled()
        if cache_dir is not None:
            return cls(root=Path(cache_dir))
        return cls()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The payload stored under ``key``, or ``None`` on a miss.

        A corrupt or unreadable entry counts as a miss — the caller
        recomputes and overwrites it.
        """
        if not self.enabled:
            self.stats.misses += 1
            return None
        try:
            with self._path(key).open() as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            self.stats.misses += 1
            return None
        if not isinstance(payload, dict):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Atomically store ``payload`` under ``key``.

        Failures to write (read-only filesystem, disk full) are
        swallowed: the cache is an accelerator, never a correctness
        dependency.
        """
        if not self.enabled:
            return
        target = self._path(key)
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(target.parent),
                                       suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(payload, fh, sort_keys=True,
                              separators=(",", ":"))
                os.replace(tmp, target)
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        except OSError:
            return
        self.stats.writes += 1


# -- maintenance: stats and eviction -------------------------------------------
#
# The cache is content-addressed under an ever-moving code fingerprint,
# so entries from superseded fingerprints are pure garbage that nothing
# will ever read again — without eviction the store only grows.  The
# ``study cache`` subcommand exposes the two operations below.


@dataclass(frozen=True)
class CacheEntry:
    """One stored cell: its key, file, size, and modification time."""

    key: str
    path: Path
    size: int
    mtime: float


def _shard_files(root: str | Path, pattern: str) -> list[Path]:
    """Per-shard listing that tolerates directories vanishing
    mid-scan — a concurrent prune removes emptied shard directories,
    and a glob iterating into one would raise."""
    try:
        shards = list(Path(root).glob("??"))
    except OSError:
        return []
    files: list[Path] = []
    for shard in shards:
        try:
            files.extend(shard.glob(pattern))
        except OSError:
            continue
    return files


def scan_entries(root: str | Path) -> list[CacheEntry]:
    """Every payload file under ``root``, sorted oldest-first.

    Files that vanish mid-scan (a concurrent prune or writer) are
    skipped; ties on mtime break by key so the order is total.
    """
    entries = []
    for path in _shard_files(root, "*.json"):
        try:
            stat = path.stat()
        except OSError:
            continue
        entries.append(CacheEntry(key=path.stem, path=path,
                                  size=stat.st_size,
                                  mtime=stat.st_mtime))
    entries.sort(key=lambda e: (e.mtime, e.key))
    return entries


def scan_strays(root: str | Path) -> list[Path]:
    """Leftover ``*.tmp`` files (a writer died between mkstemp and
    replace); harmless to readers but worth pruning."""
    return sorted(_shard_files(root, "*.tmp"))


def usage_stats(root: str | Path, *, now: float | None = None) -> dict:
    """JSON-able usage summary of the store under ``root``."""
    if now is None:
        now = time.time()
    entries = scan_entries(root)
    total = sum(e.size for e in entries)
    doc = {
        "root": str(root),
        "entries": len(entries),
        "total_bytes": total,
        "stray_tempfiles": len(scan_strays(root)),
        "current_fingerprint": code_fingerprint(),
    }
    if entries:
        doc["oldest_age_s"] = round(max(0.0, now - entries[0].mtime), 3)
        doc["newest_age_s"] = round(max(0.0, now - entries[-1].mtime), 3)
        doc["largest_bytes"] = max(e.size for e in entries)
    return doc


def prune(root: str | Path, *, max_age_s: float | None = None,
          max_total_bytes: int | None = None,
          now: float | None = None, dry_run: bool = False) -> dict:
    """Evict by age and/or total-size cap; returns what was done.

    Two passes: entries older than ``max_age_s`` go first, then —
    if the survivors still exceed ``max_total_bytes`` — oldest-first
    until the store fits (LRU by mtime: ``ResultCache.put`` refreshes
    mtime on overwrite, and hot entries get re-written by recompute
    after any fingerprint change).  Stray tempfiles are always
    removed.  ``dry_run`` reports without deleting.

    Concurrent pruners are expected, not an error: a file that
    vanished between the scan and the unlink was simply removed by a
    racing sweep, and is reported under ``already_gone`` rather than
    counted as this sweep's work (``removed``/``removed_bytes`` cover
    only entries *this* call deleted).
    """
    if max_age_s is None and max_total_bytes is None:
        raise ValueError(
            "prune needs max_age_s and/or max_total_bytes")
    if now is None:
        now = time.time()
    entries = scan_entries(root)
    doomed: list[CacheEntry] = []
    kept: list[CacheEntry] = []
    for entry in entries:
        if max_age_s is not None and now - entry.mtime > max_age_s:
            doomed.append(entry)
        else:
            kept.append(entry)
    if max_total_bytes is not None:
        kept_bytes = sum(e.size for e in kept)
        while kept and kept_bytes > max_total_bytes:
            entry = kept.pop(0)  # oldest survivor
            kept_bytes -= entry.size
            doomed.append(entry)
    strays = scan_strays(root)
    removed = removed_bytes = already_gone = 0
    if dry_run:
        removed = len(doomed)
        removed_bytes = sum(e.size for e in doomed)
    else:
        for entry in doomed:
            try:
                entry.path.unlink()
            except FileNotFoundError:
                already_gone += 1  # a racing pruner beat us to it
            except OSError:
                pass
            else:
                removed += 1
                removed_bytes += entry.size
        for stray in strays:
            try:
                stray.unlink()
            except OSError:
                pass
        # drop shard directories emptied by the eviction
        try:
            shards = list(Path(root).glob("??"))
        except OSError:
            shards = []
        for shard in shards:
            try:
                shard.rmdir()
            except OSError:
                pass
    return {
        "root": str(root),
        "dry_run": dry_run,
        "scanned": len(entries),
        "removed": removed,
        "removed_bytes": removed_bytes,
        "already_gone": already_gone,
        "removed_strays": len(strays),
        "kept": len(kept),
        "kept_bytes": sum(e.size for e in kept),
    }


__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "FINGERPRINT_SALT_ENV",
    "CacheEntry",
    "CacheStats",
    "ResultCache",
    "cache_key",
    "code_fingerprint",
    "key_material",
    "prune",
    "scan_entries",
    "scan_strays",
    "usage_stats",
]
