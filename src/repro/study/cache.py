"""Content-addressed result cache for study/chaos/crossvalidate cells.

The study's evaluation matrix is embarrassingly parallel *and* highly
repetitive: the same (application, configuration, seed) cell is re-run
by ``study all``, the chaos matrix, cross-validation, benchmarks, and
CI, even though its result is a pure function of the cell parameters
and the analysis code.  This module makes that function memoizable on
disk.

A cache key is the SHA-256 of a canonical-JSON *key material* document
containing:

* the cell kind (``study-cell``, ``chaos-variant``, ...);
* every cell parameter (label, nranks, seed, fault-plan names, ...);
* the **code fingerprint**: a digest over the full source of
  :mod:`repro`, so any change to the simulator, analyses, or apps
  invalidates every cached cell at once.  Correctness never depends on
  remembering to bump a version number.

Canonical JSON (sorted keys, explicit separators, no NaN) makes the
mapping from key material to key injective — two different parameter
tuples cannot collide short of a SHA-256 collision.  A hypothesis test
pins this.

Payloads are plain JSON documents stored at
``<root>/<key[:2]>/<key>.json`` and written atomically (tempfile +
``os.replace``), so a killed run can never leave a half-written cell
that a later run would trust.  Unreadable or corrupt entries degrade to
cache misses.

The default root is ``.repro-cache/`` under the current directory
(overridable with ``REPRO_CACHE_DIR``); CI restores it via
``actions/cache`` keyed on the same code fingerprint, which turns the
chaos/smoke steps into incremental replays.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any

#: environment variable naming the cache root directory
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: extra salt mixed into the fingerprint (tests use it to force misses)
FINGERPRINT_SALT_ENV = "REPRO_FINGERPRINT_SALT"
#: default cache root, relative to the working directory
DEFAULT_CACHE_DIR = ".repro-cache"


def _package_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


@lru_cache(maxsize=4)
def _source_digest(root: str) -> str:
    """SHA-256 over every ``*.py`` under ``root`` (path + content).

    Sorted traversal makes the digest independent of filesystem order;
    the relative path is hashed alongside the content so renaming a
    module changes the fingerprint even when its text does not.
    """
    h = hashlib.sha256()
    base = Path(root)
    for path in sorted(base.rglob("*.py")):
        h.update(str(path.relative_to(base)).encode())
        h.update(b"\0")
        h.update(path.read_bytes())
        h.update(b"\0")
    return h.hexdigest()


def code_fingerprint() -> str:
    """Fingerprint of the :mod:`repro` source tree (+ optional salt).

    Cells cached under one fingerprint are never served once any source
    file changes; the salt lets tests (and operators) invalidate the
    cache without touching code.
    """
    digest = _source_digest(str(_package_root()))
    salt = os.environ.get(FINGERPRINT_SALT_ENV, "")
    if not salt:
        return digest
    return hashlib.sha256(
        (digest + "\0" + salt).encode()).hexdigest()


def key_material(kind: str, **fields: Any) -> str:
    """Canonical-JSON document a cache key is hashed from.

    Exposed separately from :func:`cache_key` so tests can assert the
    material itself is injective over the cell parameters.
    """
    if "kind" in fields:
        raise ValueError("'kind' is the first positional argument")
    doc = {"kind": kind, "fingerprint": code_fingerprint(), **fields}
    return json.dumps(doc, sort_keys=True, separators=(",", ":"),
                      allow_nan=False, default=_reject_unknown)


def _reject_unknown(obj: Any) -> Any:
    raise TypeError(
        f"cache key fields must be JSON-serializable, got "
        f"{type(obj).__name__}")


def cache_key(kind: str, **fields: Any) -> str:
    """SHA-256 key for one cell: ``kind`` + parameters + fingerprint."""
    return hashlib.sha256(key_material(kind, **fields).encode()) \
        .hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/write counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    @property
    def probes(self) -> int:
        return self.hits + self.misses

    def to_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes}

    def summary(self) -> str:
        return (f"{self.hits} hit{'s' if self.hits != 1 else ''}, "
                f"{self.misses} miss{'es' if self.misses != 1 else ''}")


@dataclass
class ResultCache:
    """Directory-backed JSON payload store addressed by cell key."""

    root: Path = field(default_factory=lambda: Path(
        os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)))
    enabled: bool = True
    stats: CacheStats = field(default_factory=CacheStats)

    @classmethod
    def disabled(cls) -> "ResultCache":
        """A cache that never hits and never writes."""
        return cls(enabled=False)

    @classmethod
    def from_options(cls, cache_dir: str | Path | None = None,
                     no_cache: bool = False) -> "ResultCache":
        """Build from CLI-style options (``--cache-dir``/``--no-cache``)."""
        if no_cache:
            return cls.disabled()
        if cache_dir is not None:
            return cls(root=Path(cache_dir))
        return cls()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The payload stored under ``key``, or ``None`` on a miss.

        A corrupt or unreadable entry counts as a miss — the caller
        recomputes and overwrites it.
        """
        if not self.enabled:
            self.stats.misses += 1
            return None
        try:
            with self._path(key).open() as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            self.stats.misses += 1
            return None
        if not isinstance(payload, dict):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Atomically store ``payload`` under ``key``.

        Failures to write (read-only filesystem, disk full) are
        swallowed: the cache is an accelerator, never a correctness
        dependency.
        """
        if not self.enabled:
            return
        target = self._path(key)
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(target.parent),
                                       suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(payload, fh, sort_keys=True,
                              separators=(",", ":"))
                os.replace(tmp, target)
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        except OSError:
            return
        self.stats.writes += 1


__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "FINGERPRINT_SALT_ENV",
    "CacheStats",
    "ResultCache",
    "cache_key",
    "code_fingerprint",
    "key_material",
]
