"""Command-line entry point: regenerate the paper's evaluation.

Usage::

    python -m repro.study [--nranks 8] [--seed 7] [--out results/]
    python -m repro.study lint <app|--all> [--format text|json]
    python -m repro.study chaos [--app NAME[/LIB]]... [--all]

The default mode prints Tables 1–5 and Figures 1–3 (text form) and,
with ``--out``, writes per-run reports and Figure 2 CSV dot clouds.
The ``lint`` subcommand runs the static consistency-semantics linter
(:mod:`repro.lint`) over freshly traced runs and exits non-zero iff any
ERROR-severity diagnostic is emitted.  The ``chaos`` subcommand replays
traces under a deterministic fault matrix (:mod:`repro.pfs.chaos`) and
exits non-zero iff crash recovery breaks its contract or corruption
appears that neither the conflict detector nor an injected fault
explains.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.semantics import Semantics
from repro.study.figures import (
    figure1_text,
    figure2_ascii,
    figure2_csv,
    figure2_text,
    figure3_text,
)
from repro.study.runner import run_study
from repro.study.tables import (
    table1_text,
    table2_text,
    table3_text,
    table4_text,
    table5_text,
)


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "lint":
        return lint_main(argv[1:])
    if argv and argv[0] == "chaos":
        return chaos_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.study",
        description="Regenerate the paper's tables and figures from "
                    "fresh simulated traces.")
    parser.add_argument("--nranks", type=int, default=8,
                        help="MPI ranks per run (default 8; the paper "
                             "used 64 and 1024)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", type=Path, default=None,
                        help="directory for per-run reports and CSVs")
    parser.add_argument("--app", default=None, metavar="NAME[/LIB]",
                        help="analyze a single application instead of "
                             "the full study (e.g. FLASH or LAMMPS/ADIOS)")
    args = parser.parse_args(argv)

    if args.app is not None:
        return _single_app(args)

    print(table1_text())
    print()
    print(table2_text())
    print()
    print(table5_text())
    print()

    print(f"Running the 25 configurations at {args.nranks} ranks ...",
          flush=True)
    results = run_study(nranks=args.nranks, seed=args.seed)

    print()
    print(table3_text(results))
    print()
    print(table4_text(results))
    print()
    print(figure1_text(results))
    print()
    fbs = results.find("FLASH-HDF5 fbs")
    nofbs = results.find("FLASH-HDF5 nofbs")
    print(figure2_text(fbs, nofbs))
    print()
    print(figure2_ascii(fbs, nofbs))
    print()
    print(figure3_text(results))

    from repro.study.compat import compat_text
    print()
    print(compat_text(results))

    clean = sum(
        1 for run in results
        if not run.report.conflicts(Semantics.SESSION).cross_process_only)
    print()
    print(f"{clean} of {len(results)} configurations are free of "
          f"cross-process conflicts under session semantics.")

    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        for run in results:
            name = run.label.replace("/", "_").replace(" ", "_")
            (args.out / f"{name}.report.txt").write_text(
                run.report.to_text() + "\n")
            run.trace.to_jsonl(args.out / f"{name}.trace.jsonl")
        paths = figure2_csv(fbs, nofbs, args.out)
        print(f"wrote {len(results)} reports+traces and "
              f"{len(paths)} figure-2 CSVs to {args.out}/")
    return 0


def _single_app(args: argparse.Namespace) -> int:
    from repro.apps.registry import APPLICATIONS, find_spec
    from repro.core.report import analyze

    name, _, lib = args.app.partition("/")
    try:
        spec = find_spec(name)
    except KeyError:
        known = ", ".join(sorted(s.name for s in APPLICATIONS))
        print(f"unknown application {name!r}; known: {known}",
              file=sys.stderr)
        return 2
    variants = [v for v in spec.variants
                if not lib or v.io_library.lower() == lib.lower()]
    if not variants:
        print(f"no variant of {spec.name} uses {lib!r}", file=sys.stderr)
        return 2
    for variant in variants:
        trace = variant.run(nranks=args.nranks, seed=args.seed)
        report = analyze(trace)
        print(report.to_text())
        print()
        print(report.profile.to_text())
        print()
        from repro.core.timeline import conflict_timelines
        session = report.conflicts(Semantics.SESSION)
        if session:
            print(conflict_timelines(trace, session, max_files=2))
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            safe = variant.label.replace("/", "_").replace(" ", "_")
            (args.out / f"{safe}.report.txt").write_text(
                report.to_text() + "\n")
            trace.to_jsonl(args.out / f"{safe}.trace.jsonl")
            from repro.tracer.recorder_format import to_recorder_text
            to_recorder_text(trace, args.out / f"{safe}.trace.txt")
    return 0


def lint_main(argv: list[str] | None = None) -> int:
    """``python -m repro.study lint`` — the static semantics linter.

    Exit codes: 0 no ERROR diagnostics, 1 at least one ERROR, 2 usage.
    """
    from repro.apps.registry import APPLICATIONS, find_spec
    from repro.errors import LintError
    from repro.lint import all_rules, lint_variant
    from repro.lint.reporters import (
        render_json,
        render_study_json,
        render_study_text,
        render_text,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.study lint",
        description="Statically lint application traces for "
                    "consistency-semantics hazards (no PFS replay).")
    parser.add_argument("app", nargs="?", metavar="NAME[/LIB]",
                        help="application to lint (e.g. FLASH or "
                             "LAMMPS/ADIOS); omit with --all")
    parser.add_argument("--all", action="store_true",
                        help="lint every registered configuration")
    parser.add_argument("--nranks", type=int, default=8)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--rules", default=None, metavar="R1,R2",
                        help="comma-separated rule names/ids to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--out", type=Path, default=None,
                        help="also write the report to this file")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.name:26s} {rule.summary}")
        return 0
    if args.all == (args.app is not None):
        print("specify exactly one of NAME[/LIB] or --all",
              file=sys.stderr)
        return 2
    rules = ([r.strip() for r in args.rules.split(",") if r.strip()]
             if args.rules else None)

    if args.all:
        variants = [v for spec in APPLICATIONS for v in spec.variants]
    else:
        name, _, lib = args.app.partition("/")
        try:
            spec = find_spec(name)
        except KeyError:
            known = ", ".join(sorted(s.name for s in APPLICATIONS))
            print(f"unknown application {name!r}; known: {known}",
                  file=sys.stderr)
            return 2
        variants = [v for v in spec.variants
                    if not lib or v.io_library.lower() == lib.lower()]
        if not variants:
            print(f"no variant of {spec.name} uses {lib!r}",
                  file=sys.stderr)
            return 2

    try:
        reports = [lint_variant(v, nranks=args.nranks, seed=args.seed,
                                rules=rules)
                   for v in variants]
    except LintError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.format == "json":
        text = (render_study_json(reports, nranks=args.nranks,
                                  seed=args.seed)
                if args.all or len(reports) > 1
                else render_json(reports[0]))
    else:
        text = (render_study_text(reports) if args.all
                else "\n\n".join(render_text(r) for r in reports))
    print(text)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(text + "\n")
    return 1 if any(r.errors for r in reports) else 0


def chaos_main(argv: list[str] | None = None) -> int:
    """``python -m repro.study chaos`` — fault-matrix replay.

    Exit codes: 0 every cell sound, 1 at least one contract violation
    or unattributed corruption, 2 usage.
    """
    from repro.apps.registry import APPLICATIONS, find_spec
    from repro.pfs.chaos import default_fault_plans, run_chaos

    parser = argparse.ArgumentParser(
        prog="python -m repro.study chaos",
        description="Replay application traces under a deterministic "
                    "fault matrix and audit crash recovery against the "
                    "per-semantics durability contract.")
    parser.add_argument("--app", action="append", default=None,
                        metavar="NAME[/LIB]",
                        help="configuration to test (repeatable, e.g. "
                             "--app FLASH --app LAMMPS/ADIOS)")
    parser.add_argument("--all", action="store_true",
                        help="test every registered configuration")
    parser.add_argument("--nranks", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--plans", default=None, metavar="P1,P2",
                        help="subset of plan names to run (default: "
                             "the full matrix; see --list-plans)")
    parser.add_argument("--list-plans", action="store_true",
                        help="print the default fault plans and exit")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--out", type=Path, default=None,
                        help="also write the report to this file")
    args = parser.parse_args(argv)

    if args.list_plans:
        for plan in default_fault_plans(args.seed):
            print(f"{plan.name:<16} crashes={len(plan.crashes)} "
                  f"cache_drops={len(plan.cache_drops)} "
                  f"error_rate={plan.error_rate:g}")
        return 0
    if args.all == bool(args.app):
        print("specify exactly one of --app NAME[/LIB] or --all",
              file=sys.stderr)
        return 2

    if args.all:
        variants = [v for spec in APPLICATIONS for v in spec.variants]
    else:
        variants = []
        for entry in args.app:
            name, _, lib = entry.partition("/")
            try:
                spec = find_spec(name)
            except KeyError:
                known = ", ".join(sorted(s.name for s in APPLICATIONS))
                print(f"unknown application {name!r}; known: {known}",
                      file=sys.stderr)
                return 2
            matched = [v for v in spec.variants
                       if not lib or v.io_library.lower() == lib.lower()]
            if not matched:
                print(f"no variant of {spec.name} uses {lib!r}",
                      file=sys.stderr)
                return 2
            variants.extend(matched)

    plans = default_fault_plans(args.seed)
    if args.plans is not None:
        wanted = {p.strip() for p in args.plans.split(",") if p.strip()}
        unknown = wanted - {p.name for p in plans}
        if unknown:
            print(f"unknown plan(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
        plans = [p for p in plans if p.name in wanted]

    report = run_chaos(variants, nranks=args.nranks, seed=args.seed,
                       plans=plans)
    text = (report.to_json() if args.format == "json"
            else report.to_text())
    print(text)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(text + "\n")
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
