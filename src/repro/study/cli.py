"""Command-line entry point: regenerate the paper's evaluation.

Usage::

    python -m repro.study [--nranks 8] [--seed 7] [--out results/]
                          [--jobs N]
    python -m repro.study all [--jobs N] [--format text|json]
                              [--no-cache] [--stats]
    python -m repro.study lint <app|--all> [--format text|json]
    python -m repro.study chaos [--app NAME[/LIB]]... [--all] [--jobs N]
    python -m repro.study crossvalidate <app|--all> [--jobs N]
    python -m repro.study staticcheck <app|--all> [--jobs N]
    python -m repro.study partition <app|--all> [--partitions N]
                                    [--verify] [--jobs N]
    python -m repro.study metrics <file|--collect>
    python -m repro.study fingerprint
    python -m repro.study serve [--port 0] [--queue-limit N]
                                [--workers N] [--ready-file FILE]
    python -m repro.study request <endpoint> --port P [--param k=v]...
    python -m repro.study loadtest --port P [--clients N] [--seed S]
    python -m repro.study cache <stats|prune> [--max-age-days D]
                                [--max-bytes N]
    python -m repro.study cluster <start|worker|status|loadtest|chaos>
                                  [options]

The default mode prints Tables 1–5 and Figures 1–3 (text form) and,
with ``--out``, writes per-run reports and Figure 2 CSV dot clouds.
``all`` evaluates the app×config matrix as JSON-able summary cells —
fanned out over ``--jobs`` worker processes and served incrementally
from the content-addressed result cache (``.repro-cache/``), with
byte-identical output for every jobs/cache combination.  The ``lint``
subcommand runs the static consistency-semantics linter
(:mod:`repro.lint`); ``chaos`` replays traces under a deterministic
fault matrix (:mod:`repro.pfs.chaos`); ``crossvalidate`` checks the
linter against the replay-based oracle; ``staticcheck`` evaluates the
symbolic I/O plans (:mod:`repro.staticcheck`) and cross-validates the
static conflict predictions against the dynamic detector;
``fingerprint`` prints the
code fingerprint cache keys embed (CI keys its cache restore on it).
``serve`` runs the asyncio analysis service (:mod:`repro.serve`),
``request`` issues one query against it, ``loadtest`` drives the
seeded closed-loop load generator, and ``cache`` inspects and prunes
the content-addressed result store — see ``docs/serving.md``.
``cluster`` boots and operates the heartbeat-managed, shard-replicated
multi-node cluster (:mod:`repro.cluster` — see ``docs/cluster.md``).

Every matrix subcommand accepts ``--metrics FILE``: the run executes
under a :mod:`repro.obs` registry (bypassing the result cache so the
simulator actually runs) and writes the collected counters, timers,
and self-trace spans as JSON lines to ``FILE`` — stdout is unchanged.
``metrics`` renders the text dashboard for such a file (or collects
one live with ``--collect``).

Exit codes are uniform across every subcommand:

* **0** — ran to completion, nothing to report;
* **1** — a real finding or failure (ERROR diagnostics, an unsound
  chaos cell, a cross-validation false negative);
* **2** — usage error (unknown application/library/plan/rule, bad
  flag combination).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.semantics import Semantics
from repro.study.figures import (
    figure1_text,
    figure2_ascii,
    figure2_csv,
    figure2_text,
    figure3_text,
)
from repro.study.runner import run_study
from repro.study.tables import (
    table1_text,
    table2_text,
    table3_text,
    table4_text,
    table5_text,
)

#: ran to completion, nothing to report
EXIT_OK = 0
#: a real finding or failure (lint ERROR, unsound chaos cell, ...)
EXIT_FINDINGS = 1
#: bad invocation (unknown app/plan/rule, invalid flag combination)
EXIT_USAGE = 2


class _UsageError(Exception):
    """Invalid invocation; the message goes to stderr, exit is 2."""


def _usage_guard(func):
    """Give every entry point the same usage-error contract.

    Each subcommand ``*_main`` is public API (tests and tools call them
    directly, not only through :func:`main`), so each must map
    :class:`_UsageError` to stderr + exit code 2 itself.
    """
    import functools

    @functools.wraps(func)
    def wrapper(argv: list[str] | None = None) -> int:
        try:
            return func(argv)
        except _UsageError as exc:
            print(str(exc), file=sys.stderr)
            return EXIT_USAGE

    return wrapper


def _resolve_variants(entries: list[str] | None, all_flag: bool):
    """Shared ``--app NAME[/LIB]`` / ``--all`` resolution.

    Every subcommand resolves configurations through this one helper so
    unknown names and empty filters fail identically (message to
    stderr, exit code 2) across ``lint``, ``chaos``, ``crossvalidate``
    and the single-app default mode.
    """
    from repro.apps.registry import APPLICATIONS, find_spec

    if all_flag == bool(entries):
        raise _UsageError("specify exactly one of --app NAME[/LIB] "
                          "(or a NAME argument) or --all")
    if all_flag:
        return [v for spec in APPLICATIONS for v in spec.variants]
    variants = []
    for entry in entries or []:
        name, _, lib = entry.partition("/")
        try:
            spec = find_spec(name)
        except KeyError:
            known = ", ".join(sorted(s.name for s in APPLICATIONS))
            raise _UsageError(
                f"unknown application {name!r}; known: {known}")
        matched = [v for v in spec.variants
                   if not lib or v.io_library.lower() == lib.lower()]
        if not matched:
            raise _UsageError(f"no variant of {spec.name} uses {lib!r}")
        variants.extend(matched)
    return variants


def _add_matrix_args(parser: argparse.ArgumentParser, *,
                     nranks: int = 8) -> None:
    """Flags shared by every matrix-shaped subcommand."""
    parser.add_argument("--nranks", type=int, default=nranks)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the matrix "
                             "(default 1 = serial; 0 = one per CPU)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not update .repro-cache/")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        metavar="DIR",
                        help="result cache root (default "
                             ".repro-cache/ or $REPRO_CACHE_DIR)")
    parser.add_argument("--metrics", type=Path, default=None,
                        metavar="FILE",
                        help="collect simulator metrics and write them "
                             "as JSON lines to FILE (implies "
                             "--no-cache; the report itself is "
                             "unchanged)")


def _matrix_cache(args: argparse.Namespace):
    from repro.study.cache import ResultCache

    if getattr(args, "metrics", None) is not None:
        # a cached cell never runs the simulator, so a metrics run
        # bypasses the cache entirely — the instruments must fire
        return ResultCache.disabled()
    return ResultCache.from_options(cache_dir=args.cache_dir,
                                    no_cache=args.no_cache)


def _metrics_scope(args: argparse.Namespace):
    """Registry lifetime for one ``--metrics FILE`` invocation.

    Without the flag this is a no-op pass-through.  With it, a tracing
    registry is active for the body and the JSON-lines export is
    written on normal exit (a usage error leaves no partial file);
    the report on stdout is the same bytes either way.
    """
    from contextlib import contextmanager

    from repro.obs import registry as obs

    @contextmanager
    def scope():
        if args.metrics is None:
            yield None
            return
        from repro.obs.export import to_jsonl

        with obs.collecting(trace=True) as reg:
            yield reg
            args.metrics.parent.mkdir(parents=True, exist_ok=True)
            args.metrics.write_text(to_jsonl(reg))
            print(f"[metrics: {len(reg)} instruments -> "
                  f"{args.metrics}]", file=sys.stderr)

    return scope()


def _matrix_jobs(args: argparse.Namespace) -> int:
    from repro.study.parallel import resolve_jobs

    return resolve_jobs(None) if args.jobs == 0 else max(1, args.jobs)


def _check_partitions(partitions: int, nranks: int) -> int:
    """Validate a ``--partitions`` value under the usage contract."""
    if partitions < 1:
        raise _UsageError(f"--partitions must be >= 1, got {partitions}")
    if partitions > nranks:
        raise _UsageError(
            f"cannot split {nranks} rank(s) into {partitions} "
            f"partitions (at least one would be empty)")
    return partitions


def _print_matrix_stats(run, cache, *, show_cells: bool) -> None:
    """Cache-hit and timing stats — on stderr, never in the payload.

    Keeping stdout pure is what lets the determinism tests (and CI
    artifact diffs) demand byte-identical reports regardless of jobs
    count or cache temperature.
    """
    print(f"[{run.summary()}; cache: {cache.stats.summary()}]",
          file=sys.stderr)
    if show_cells:
        print(run.timing_table(), file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    commands = {
        "all": all_main,
        "lint": lint_main,
        "chaos": chaos_main,
        "crossvalidate": crossvalidate_main,
        "staticcheck": staticcheck_main,
        "partition": partition_main,
        "fingerprint": fingerprint_main,
        "roundtrip": roundtrip_main,
        "metrics": metrics_main,
        "serve": serve_main,
        "request": request_main,
        "loadtest": loadtest_main,
        "cache": cache_main,
        "cluster": cluster_main,
    }
    try:
        if argv and argv[0] in commands:
            return commands[argv[0]](argv[1:])
        return _tables_main(argv)
    except _UsageError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_USAGE


def _tables_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.study",
        description="Regenerate the paper's tables and figures from "
                    "fresh simulated traces.")
    parser.add_argument("--nranks", type=int, default=8,
                        help="MPI ranks per run (default 8; the paper "
                             "used 64 and 1024)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for tracing the matrix "
                             "(default 1 = serial; 0 = one per CPU)")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory for per-run reports and CSVs")
    parser.add_argument("--app", default=None, metavar="NAME[/LIB]",
                        help="analyze a single application instead of "
                             "the full study (e.g. FLASH or LAMMPS/ADIOS)")
    args = parser.parse_args(argv)

    if args.app is not None:
        return _single_app(args)

    print(table1_text())
    print()
    print(table2_text())
    print()
    print(table5_text())
    print()

    print(f"Running the 25 configurations at {args.nranks} ranks ...",
          flush=True)
    jobs = _matrix_jobs(args) if hasattr(args, "jobs") else 1
    results = run_study(nranks=args.nranks, seed=args.seed, jobs=jobs)

    print()
    print(table3_text(results))
    print()
    print(table4_text(results))
    print()
    print(figure1_text(results))
    print()
    fbs = results.find("FLASH-HDF5 fbs")
    nofbs = results.find("FLASH-HDF5 nofbs")
    print(figure2_text(fbs, nofbs))
    print()
    print(figure2_ascii(fbs, nofbs))
    print()
    print(figure3_text(results))

    from repro.study.compat import compat_text
    print()
    print(compat_text(results))

    clean = sum(
        1 for run in results
        if not run.report.conflicts(Semantics.SESSION).cross_process_only)
    print()
    print(f"{clean} of {len(results)} configurations are free of "
          f"cross-process conflicts under session semantics.")

    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        for run in results:
            name = run.label.replace("/", "_").replace(" ", "_")
            (args.out / f"{name}.report.txt").write_text(
                run.report.to_text() + "\n")
            run.trace.to_jsonl(args.out / f"{name}.trace.jsonl")
        paths = figure2_csv(fbs, nofbs, args.out)
        print(f"wrote {len(results)} reports+traces and "
              f"{len(paths)} figure-2 CSVs to {args.out}/")
    return EXIT_OK


def _single_app(args: argparse.Namespace) -> int:
    from repro.core.report import analyze

    variants = _resolve_variants([args.app], all_flag=False)
    for variant in variants:
        trace = variant.run(nranks=args.nranks, seed=args.seed)
        report = analyze(trace)
        print(report.to_text())
        print()
        print(report.profile.to_text())
        print()
        from repro.core.timeline import conflict_timelines
        session = report.conflicts(Semantics.SESSION)
        if session:
            print(conflict_timelines(trace, session, max_files=2))
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            safe = variant.label.replace("/", "_").replace(" ", "_")
            (args.out / f"{safe}.report.txt").write_text(
                report.to_text() + "\n")
            trace.to_jsonl(args.out / f"{safe}.trace.jsonl")
            from repro.tracer.recorder_format import to_recorder_text
            to_recorder_text(trace, args.out / f"{safe}.trace.txt")
    return EXIT_OK


@_usage_guard
def all_main(argv: list[str] | None = None) -> int:
    """``python -m repro.study all`` — the matrix as summary cells.

    The incremental, parallel face of the campaign: one JSON-able
    summary per configuration, fanned out over ``--jobs`` workers and
    served from the result cache when the cell parameters and the code
    fingerprint are unchanged.  Output on stdout is byte-identical for
    every jobs/cache combination; stats go to stderr.
    """
    from repro.study.runner import matrix_json, study_cells

    parser = argparse.ArgumentParser(
        prog="python -m repro.study all",
        description="Evaluate every registered configuration into "
                    "summary cells (parallel + cached).")
    _add_matrix_args(parser)
    parser.add_argument("--partitions", type=int, default=1, metavar="N",
                        help="trace each cell with the partitioned "
                             "multi-process engine split across N "
                             "worker subprocesses (default 1 = the "
                             "single-process engine; byte-identical "
                             "either way)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--workflows", action="store_true",
                        help="append the canonical producer/consumer "
                             "workflow cell to the matrix")
    parser.add_argument("--stats", action="store_true",
                        help="print per-cell timing/cache provenance "
                             "to stderr")
    parser.add_argument("--out", type=Path, default=None,
                        help="also write the report to this file")
    args = parser.parse_args(argv)
    partitions = _check_partitions(args.partitions, args.nranks)

    with _metrics_scope(args):
        cache = _matrix_cache(args)
        jobs = _matrix_jobs(args)
        run = study_cells(nranks=args.nranks, seed=args.seed, jobs=jobs,
                          cache=cache, partitions=partitions)
        cells = list(run.payloads)

        if args.workflows:
            from repro.study.cache import cache_key
            from repro.study.parallel import (
                CellSpec,
                run_matrix,
                workflow_task,
            )

            wf = run_matrix(
                "workflow-cell",
                [CellSpec(key_fields={"producer_ranks": 4,
                                      "reader_ranks": 2,
                                      "seed": args.seed},
                          task=(4, 2, args.seed))],
                workflow_task, jobs=1, cache=cache)
            cells.extend(wf.payloads)
            run.outcomes.extend(wf.outcomes)

        if args.format == "json":
            text = matrix_json(cells, nranks=args.nranks, seed=args.seed)
        else:
            text = _matrix_text(cells)
        print(text)
        if args.out is not None:
            args.out.parent.mkdir(parents=True, exist_ok=True)
            args.out.write_text(text + "\n")
        _print_matrix_stats(run, cache, show_cells=args.stats)
        return EXIT_OK


def _matrix_text(cells: list[dict]) -> str:
    hdr = (f"{'configuration':<26} {'X-Y':<4} {'pattern':<15} "
           f"{'session':>8} {'commit':>7} {'weakest':<9} files")
    lines = [hdr, "-" * len(hdr)]
    for cell in cells:
        conflicts = cell["conflicts"]
        lines.append(
            f"{cell['label']:<26} {cell.get('xy', '-'):<4} "
            f"{cell.get('pattern', '-'):<15} "
            f"{conflicts['session']['count']:>8} "
            f"{conflicts['commit']['count']:>7} "
            f"{cell['weakest_semantics']:<9} "
            f"{cell.get('data_files', '-')}")
    clean = sum(1 for c in cells
                if not c["conflicts"]["session"]["cross_process"])
    lines.append("")
    lines.append(f"{clean} of {len(cells)} cells are free of "
                 f"cross-process conflicts under session semantics.")
    return "\n".join(lines)


@_usage_guard
def lint_main(argv: list[str] | None = None) -> int:
    """``python -m repro.study lint`` — the static semantics linter.

    Exit codes: 0 no ERROR diagnostics, 1 at least one ERROR, 2 usage.
    """
    from repro.errors import LintError
    from repro.lint import all_rules, lint_variant
    from repro.lint.reporters import (
        render_json,
        render_study_json,
        render_study_text,
        render_text,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.study lint",
        description="Statically lint application traces for "
                    "consistency-semantics hazards (no PFS replay).")
    parser.add_argument("app", nargs="?", metavar="NAME[/LIB]",
                        help="application to lint (e.g. FLASH or "
                             "LAMMPS/ADIOS); omit with --all")
    parser.add_argument("--all", action="store_true",
                        help="lint every registered configuration")
    parser.add_argument("--nranks", type=int, default=8)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--rules", default=None, metavar="R1,R2",
                        help="comma-separated rule names/ids to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--out", type=Path, default=None,
                        help="also write the report to this file")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.name:26s} {rule.summary}")
        return EXIT_OK
    variants = _resolve_variants([args.app] if args.app else None,
                                 all_flag=args.all)
    rules = ([r.strip() for r in args.rules.split(",") if r.strip()]
             if args.rules else None)

    try:
        reports = [lint_variant(v, nranks=args.nranks, seed=args.seed,
                                rules=rules)
                   for v in variants]
    except LintError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_USAGE

    if args.format == "json":
        text = (render_study_json(reports, nranks=args.nranks,
                                  seed=args.seed)
                if args.all or len(reports) > 1
                else render_json(reports[0]))
    else:
        text = (render_study_text(reports) if args.all
                else "\n\n".join(render_text(r) for r in reports))
    print(text)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(text + "\n")
    return EXIT_FINDINGS if any(r.errors for r in reports) else EXIT_OK


@_usage_guard
def chaos_main(argv: list[str] | None = None) -> int:
    """``python -m repro.study chaos`` — fault-matrix replay.

    Exit codes: 0 every cell sound, 1 at least one contract violation
    or unattributed corruption, 2 usage.
    """
    from repro.pfs.chaos import (
        CHAOS_SEMANTICS,
        CHAOS_STRIPE_SIZE,
        ChaosCell,
        ChaosReport,
        default_fault_plans,
    )
    from repro.study.parallel import (
        CellSpec,
        chaos_variant_task,
        run_matrix,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.study chaos",
        description="Replay application traces under a deterministic "
                    "fault matrix and audit crash recovery against the "
                    "per-semantics durability contract.")
    parser.add_argument("--app", action="append", default=None,
                        metavar="NAME[/LIB]",
                        help="configuration to test (repeatable, e.g. "
                             "--app FLASH --app LAMMPS/ADIOS)")
    parser.add_argument("--all", action="store_true",
                        help="test every registered configuration")
    _add_matrix_args(parser, nranks=4)
    parser.add_argument("--plans", default=None, metavar="P1,P2",
                        help="subset of plan names to run (default: "
                             "the full matrix; see --list-plans)")
    parser.add_argument("--list-plans", action="store_true",
                        help="print the default fault plans and exit")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--stats", action="store_true",
                        help="print per-cell timing/cache provenance "
                             "to stderr")
    parser.add_argument("--out", type=Path, default=None,
                        help="also write the report to this file")
    args = parser.parse_args(argv)

    if args.list_plans:
        for plan in default_fault_plans(args.seed):
            print(f"{plan.name:<16} crashes={len(plan.crashes)} "
                  f"cache_drops={len(plan.cache_drops)} "
                  f"error_rate={plan.error_rate:g}")
        return EXIT_OK
    variants = _resolve_variants(args.app, all_flag=args.all)

    plans = default_fault_plans(args.seed)
    if args.plans is not None:
        wanted = {p.strip() for p in args.plans.split(",") if p.strip()}
        unknown = wanted - {p.name for p in plans}
        if unknown:
            raise _UsageError(
                f"unknown plan(s): {', '.join(sorted(unknown))}")
        plans = [p for p in plans if p.name in wanted]

    plan_names = tuple(p.name for p in plans)
    sem_names = tuple(s.name.lower() for s in CHAOS_SEMANTICS)
    with _metrics_scope(args):
        cache = _matrix_cache(args)
        run = run_matrix(
            "chaos-variant",
            [CellSpec(key_fields={"label": v.label,
                                  "options": dict(sorted(
                                      v.options.items())),
                                  "nranks": args.nranks,
                                  "seed": args.seed,
                                  "plans": list(plan_names),
                                  "semantics": list(sem_names),
                                  "stripe": CHAOS_STRIPE_SIZE},
                      task=(v, args.nranks, args.seed, plan_names,
                            sem_names, CHAOS_STRIPE_SIZE))
             for v in variants],
            chaos_variant_task, jobs=_matrix_jobs(args), cache=cache)

        report = ChaosReport(nranks=args.nranks, seed=args.seed,
                             plans=list(plan_names))
        for payload in run.payloads:
            report.cells.extend(
                ChaosCell.from_dict(d) for d in payload["cells"])

        text = (report.to_json() if args.format == "json"
                else report.to_text())
        print(text)
        if args.out is not None:
            args.out.parent.mkdir(parents=True, exist_ok=True)
            args.out.write_text(text + "\n")
        _print_matrix_stats(run, cache, show_cells=args.stats)
        return EXIT_OK if report.ok else EXIT_FINDINGS


@_usage_guard
def crossvalidate_main(argv: list[str] | None = None) -> int:
    """``python -m repro.study crossvalidate`` — lint vs replay oracle.

    Exit codes: 0 no false negatives, 1 the linter missed a pair the
    replay pipeline reports (its zero-false-negative contract is
    broken), 2 usage.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.study crossvalidate",
        description="Cross-validate the static linter against the "
                    "replay-based conflict and durability oracles.")
    parser.add_argument("app", nargs="?", metavar="NAME[/LIB]",
                        help="configuration to check; omit with --all")
    parser.add_argument("--all", action="store_true",
                        help="check every registered configuration")
    _add_matrix_args(parser)
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--stats", action="store_true",
                        help="print per-cell timing/cache provenance "
                             "to stderr")
    parser.add_argument("--out", type=Path, default=None,
                        help="also write the report to this file")
    args = parser.parse_args(argv)

    from repro.study.parallel import CellSpec, crossval_task, run_matrix

    variants = _resolve_variants([args.app] if args.app else None,
                                 all_flag=args.all)
    with _metrics_scope(args):
        cache = _matrix_cache(args)
        run = run_matrix(
            "crossval-cell",
            [CellSpec(key_fields={"label": v.label,
                                  "options": dict(sorted(
                                      v.options.items())),
                                  "nranks": args.nranks,
                                  "seed": args.seed},
                      task=(v, args.nranks, args.seed))
             for v in variants],
            crossval_task, jobs=_matrix_jobs(args), cache=cache)
        cells = list(run.payloads)
        return _render_crossval(args, run, cache, cells)


def _render_crossval(args, run, cache, cells: list[dict]) -> int:
    import json

    if args.format == "json":
        text = json.dumps(
            {"nranks": args.nranks, "seed": args.seed, "cells": cells,
             "ok": all(c["ok"] for c in cells)},
            sort_keys=True, indent=2)
    else:
        lines = [f"{'configuration':<26} {'pairs':>6} {'missed':>7} "
                 f"{'extras':>7}  status"]
        lines.append("-" * len(lines[0]))
        for cell in cells:
            pairs = (cell["hazards"]["checked_pairs"]
                     + cell["durability"]["checked_pairs"])
            missed = (len(cell["hazards"]["false_negatives"])
                      + len(cell["durability"]["false_negatives"]))
            extras = (len(cell["hazards"]["extras"])
                      + len(cell["durability"]["extras"]))
            status = "ok" if cell["ok"] else "FALSE NEGATIVES"
            lines.append(f"{cell['label']:<26} {pairs:>6} {missed:>7} "
                         f"{extras:>7}  {status}")
        bad = [c for c in cells if not c["ok"]]
        lines.append("")
        lines.append(f"{len(cells)} configurations, "
                     f"{len(bad)} with false negatives")
        for cell in bad:
            for msg in (cell["hazards"]["false_negatives"]
                        + cell["durability"]["false_negatives"]):
                lines.append(f"  {msg}")
        text = "\n".join(lines)
    print(text)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(text + "\n")
    _print_matrix_stats(run, cache, show_cells=args.stats)
    return EXIT_OK if all(c["ok"] for c in cells) else EXIT_FINDINGS


@_usage_guard
def staticcheck_main(argv: list[str] | None = None) -> int:
    """``python -m repro.study staticcheck`` — static conflict prediction.

    Evaluates each configuration's symbolic I/O plan under the
    interval/stride abstract domain and cross-validates the predicted
    per-semantics conflict sets against the dynamic detector.  Exit
    codes: 0 every cell sound (no dynamic conflict missed), 1 at least
    one missed conflict, 2 usage.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.study staticcheck",
        description="Predict per-semantics conflicts from symbolic "
                    "I/O plans and cross-validate the predictions "
                    "against the dynamic detector.")
    parser.add_argument("app", nargs="?", metavar="NAME[/LIB]",
                        help="configuration to check; omit with --all")
    parser.add_argument("--all", action="store_true",
                        help="check every registered configuration")
    _add_matrix_args(parser)
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--stats", action="store_true",
                        help="print per-cell timing/cache provenance "
                             "to stderr")
    parser.add_argument("--out", type=Path, default=None,
                        help="also write the report to this file")
    args = parser.parse_args(argv)

    from repro.study.parallel import (
        CellSpec,
        run_matrix,
        staticcheck_task,
    )

    variants = _resolve_variants([args.app] if args.app else None,
                                 all_flag=args.all)
    with _metrics_scope(args):
        cache = _matrix_cache(args)
        run = run_matrix(
            "staticcheck-cell",
            [CellSpec(key_fields={"label": v.label,
                                  "options": dict(sorted(
                                      v.options.items())),
                                  "nranks": args.nranks,
                                  "seed": args.seed},
                      task=(v, args.nranks, args.seed))
             for v in variants],
            staticcheck_task, jobs=_matrix_jobs(args), cache=cache)
        cells = list(run.payloads)
        return _render_staticcheck(args, run, cache, cells)


def _render_staticcheck(args, run, cache, cells: list[dict]) -> int:
    import json

    if args.format == "json":
        text = json.dumps(
            {"nranks": args.nranks, "seed": args.seed, "cells": cells,
             "ok": all(c["ok"] for c in cells)},
            sort_keys=True, indent=2)
    else:
        lines = [f"{'configuration':<26} {'plan':<6} {'groups':>6} "
                 f"{'pairs':>6} {'precision':>9}  status"]
        lines.append("-" * len(lines[0]))
        for cell in cells:
            plan_kind = "exact" if cell["exact"] else "coarse"
            status = "sound" if cell["sound"] else "MISSED CONFLICTS"
            lines.append(
                f"{cell['label']:<26} {plan_kind:<6} "
                f"{cell['groups']:>6} {cell['pairs_checked']:>6} "
                f"{cell['precision']:>9.4f}  {status}")
        bad = [c for c in cells if not c["sound"]]
        lines.append("")
        lines.append(f"{len(cells)} configurations, "
                     f"{len(bad)} with missed dynamic conflicts")
        for cell in bad:
            for name, sem in sorted(cell["semantics"].items()):
                for msg in sem["missed"]:
                    lines.append(f"  {cell['label']} [{name}] {msg}")
        text = "\n".join(lines)
    print(text)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(text + "\n")
    _print_matrix_stats(run, cache, show_cells=args.stats)
    return EXIT_OK if all(c["ok"] for c in cells) else EXIT_FINDINGS


@_usage_guard
def partition_main(argv: list[str] | None = None) -> int:
    """``python -m repro.study partition`` — the multi-process engine.

    Traces configurations with the rank set split across ``--partitions``
    worker subprocesses (:mod:`repro.partition`) and summarizes the
    cells exactly like ``study all``.  With ``--verify`` each
    configuration is additionally traced single-process and the two
    canonical ``.rtrc`` serializations are compared byte for byte.
    Exit codes: 0 done (``--verify``: all identical), 1 at least one
    byte divergence, 2 usage.
    """
    from repro.study.parallel import (
        CellSpec,
        partition_verify_task,
        run_matrix,
    )
    from repro.study.runner import matrix_json, study_cells

    parser = argparse.ArgumentParser(
        prog="python -m repro.study partition",
        description="Trace configurations with the partitioned "
                    "multi-process simulation engine; optionally "
                    "verify byte-identity against the single-process "
                    "engine.")
    parser.add_argument("app", nargs="?", metavar="NAME[/LIB]",
                        help="configuration to run; omit with --all")
    parser.add_argument("--all", action="store_true",
                        help="run every registered configuration")
    _add_matrix_args(parser)
    parser.add_argument("--partitions", type=int, default=2, metavar="N",
                        help="worker subprocesses per run (default 2)")
    parser.add_argument("--verify", action="store_true",
                        help="also trace single-process and require "
                             "byte-identical canonical .rtrc output")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--stats", action="store_true",
                        help="print per-cell timing/cache provenance "
                             "to stderr")
    parser.add_argument("--out", type=Path, default=None,
                        help="also write the report to this file")
    args = parser.parse_args(argv)
    partitions = _check_partitions(args.partitions, args.nranks)

    variants = _resolve_variants([args.app] if args.app else None,
                                 all_flag=args.all)
    with _metrics_scope(args):
        cache = _matrix_cache(args)
        jobs = _matrix_jobs(args)
        if args.verify:
            run = run_matrix(
                "partition-verify",
                [CellSpec(key_fields={"label": v.label,
                                      "options": dict(sorted(
                                          v.options.items())),
                                      "nranks": args.nranks,
                                      "seed": args.seed,
                                      "partitions": partitions},
                          task=(v, args.nranks, args.seed, partitions))
                 for v in variants],
                partition_verify_task, jobs=jobs, cache=cache)
            return _render_partition_verify(args, run, cache,
                                            list(run.payloads))
        run = study_cells(nranks=args.nranks, seed=args.seed,
                          variants=variants, jobs=jobs, cache=cache,
                          partitions=partitions)
        cells = list(run.payloads)
        if args.format == "json":
            text = matrix_json(cells, nranks=args.nranks, seed=args.seed)
        else:
            text = _matrix_text(cells)
        print(text)
        if args.out is not None:
            args.out.parent.mkdir(parents=True, exist_ok=True)
            args.out.write_text(text + "\n")
        _print_matrix_stats(run, cache, show_cells=args.stats)
        return EXIT_OK


def _render_partition_verify(args, run, cache, cells: list[dict]) -> int:
    import json

    ok = all(c["identical"] for c in cells)
    if args.format == "json":
        text = json.dumps({"nranks": args.nranks, "seed": args.seed,
                           "partitions": args.partitions,
                           "cells": cells, "ok": ok},
                          sort_keys=True, indent=2)
    else:
        hdr = (f"{'configuration':<26} {'parts':>5} {'rtrc bytes':>10}  "
               f"status")
        lines = [hdr, "-" * len(hdr)]
        for cell in cells:
            status = "identical" if cell["identical"] else "DIVERGED"
            lines.append(f"{cell['label']:<26} {cell['partitions']:>5} "
                         f"{cell['rtrc_bytes']:>10}  {status}")
        bad = sum(1 for c in cells if not c["identical"])
        lines.append("")
        lines.append(f"{len(cells)} configuration(s), {bad} diverged "
                     f"between single-process and partitioned runs")
        text = "\n".join(lines)
    print(text)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(text + "\n")
    _print_matrix_stats(run, cache, show_cells=args.stats)
    return EXIT_OK if ok else EXIT_FINDINGS


@_usage_guard
def metrics_main(argv: list[str] | None = None) -> int:
    """``python -m repro.study metrics`` — the observability dashboard.

    Renders the counter/timer/self-trace dashboard for a JSON-lines
    file previously written by ``--metrics``, or (with ``--collect``)
    runs the study matrix live under a fresh registry and reports what
    the simulator did.  Exit codes: 0 rendered, 2 usage (no input,
    unreadable or malformed file).
    """
    from repro.obs import registry as obs
    from repro.obs.export import parse_jsonl, render_dashboard, to_jsonl

    parser = argparse.ArgumentParser(
        prog="python -m repro.study metrics",
        description="Render the metrics dashboard for a --metrics "
                    "JSON-lines file, or collect one live from the "
                    "study matrix.")
    parser.add_argument("file", nargs="?", type=Path, metavar="FILE",
                        help="JSON-lines file written by --metrics; "
                             "omit with --collect")
    parser.add_argument("--collect", action="store_true",
                        help="run the study matrix now and report its "
                             "metrics (ignores the result cache)")
    parser.add_argument("--nranks", type=int, default=4,
                        help="ranks per configuration for --collect "
                             "(default 4)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for --collect "
                             "(default 1 = serial; 0 = one per CPU)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text",
                        help="text = dashboard, json = canonical "
                             "JSON-lines re-emit")
    parser.add_argument("--out", type=Path, default=None,
                        help="also write the rendered output to this "
                             "file")
    args = parser.parse_args(argv)

    if args.collect == (args.file is not None):
        raise _UsageError("specify exactly one of FILE or --collect")

    if args.collect:
        from repro.study.cache import ResultCache
        from repro.study.parallel import resolve_jobs
        from repro.study.runner import study_cells

        jobs = resolve_jobs(None) if args.jobs == 0 else max(1, args.jobs)
        with obs.collecting(trace=True) as reg:
            study_cells(nranks=args.nranks, seed=args.seed, jobs=jobs,
                        cache=ResultCache.disabled())
    else:
        try:
            raw = args.file.read_text()
        except OSError as exc:
            raise _UsageError(f"cannot read {args.file}: "
                              f"{exc.strerror or exc}")
        try:
            reg, _ = parse_jsonl(raw)
        except (ValueError, KeyError, TypeError) as exc:
            raise _UsageError(
                f"{args.file} is not a --metrics JSON-lines file: {exc}")

    text = to_jsonl(reg) if args.format == "json" \
        else render_dashboard(reg)
    print(text, end="" if text.endswith("\n") else "\n")
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(text if text.endswith("\n") else text + "\n")
    return EXIT_OK


@_usage_guard
def fingerprint_main(argv: list[str] | None = None) -> int:
    """``python -m repro.study fingerprint`` — print the code digest.

    CI uses this as the ``actions/cache`` key for ``.repro-cache/``:
    any change to the :mod:`repro` source invalidates every cached
    cell at once, so a restored cache can never serve stale results.
    """
    from repro.study.cache import code_fingerprint

    parser = argparse.ArgumentParser(
        prog="python -m repro.study fingerprint",
        description="Print the repro source fingerprint that scopes "
                    "result-cache keys.")
    parser.parse_args(argv)
    print(code_fingerprint())
    return EXIT_OK


@_usage_guard
def roundtrip_main(argv: list[str] | None = None) -> int:
    """``python -m repro.study roundtrip`` — the ``.rtrc`` parity gate.

    For each selected configuration: trace it, summarize the cell from
    the in-memory records, then convert the trace to a columnar
    ``.rtrc`` file, load it back (zero-copy), rebuild the records, and
    summarize again.  The two reports must be *byte-identical* in the
    canonical ``study all`` serialization, and the columnar conflict
    pipeline must count exactly what the object pipeline counts under
    every semantics model.

    With ``--check FILE`` (repeatable) no configurations are traced:
    each named ``.rtrc`` file is loaded, structurally validated, and
    rebuilt into records instead.  A missing file is a usage error
    (exit 2); a damaged one — truncated, bad CRC, malformed header —
    is a finding (exit 1), never a traceback.  Exit codes: 0 all
    identical/valid, 1 any divergence or damaged file, 2 usage.
    """
    import tempfile

    from repro.core.conflicts import (
        count_conflicts,
        count_conflicts_columnar,
    )
    from repro.core.offsets import reconstruct_offsets
    from repro.core.records import group_by_path
    from repro.core.semantics import Semantics
    from repro.study.runner import cell_summary, matrix_json
    from repro.tracer.columnar import ColumnarTrace, read_rtrc

    parser = argparse.ArgumentParser(
        prog="python -m repro.study roundtrip",
        description="Assert the binary .rtrc trace format is lossless: "
                    "study reports and conflict counts must be "
                    "byte-identical across a save/load round trip.")
    parser.add_argument("app", nargs="?", metavar="NAME[/LIB]",
                        help="configuration to check; omit with --all")
    parser.add_argument("--all", action="store_true",
                        help="check every registered configuration")
    parser.add_argument("--nranks", type=int, default=8)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--keep-dir", type=Path, default=None,
                        metavar="DIR",
                        help="write the .rtrc files here instead of a "
                             "temporary directory (kept afterwards)")
    parser.add_argument("--check", action="append", type=Path,
                        default=None, metavar="FILE",
                        help="validate existing .rtrc file(s) instead "
                             "of tracing configurations (repeatable)")
    args = parser.parse_args(argv)
    if args.check is not None:
        if args.app or args.all:
            raise _UsageError("--check cannot be combined with a "
                              "configuration selection")
        return _roundtrip_check(args.check)
    variants = _resolve_variants([args.app] if args.app else None,
                                 all_flag=args.all)

    failures = 0
    with tempfile.TemporaryDirectory(prefix="rtrc-") as tmp:
        out_dir = args.keep_dir if args.keep_dir is not None else Path(tmp)
        out_dir.mkdir(parents=True, exist_ok=True)
        for variant in variants:
            trace = variant.run(nranks=args.nranks, seed=args.seed)
            before = cell_summary(variant, trace, nranks=args.nranks,
                                  seed=args.seed)
            path = out_dir / (variant.label.replace("/", "_") + ".rtrc")
            ColumnarTrace.from_trace(trace).save(path)
            loaded = read_rtrc(path)
            after = cell_summary(variant, loaded.to_trace(),
                                 nranks=args.nranks, seed=args.seed)
            report_ok = (
                matrix_json([before], nranks=args.nranks, seed=args.seed)
                == matrix_json([after], nranks=args.nranks,
                               seed=args.seed))
            tables = group_by_path(reconstruct_offsets(trace.records))
            counts_ok = all(
                count_conflicts_columnar(loaded, semantics)
                == count_conflicts(trace, tables, semantics)
                for semantics in Semantics)
            ok = report_ok and counts_ok
            failures += not ok
            detail = ("identical" if ok
                      else "report diverged" if not report_ok
                      else "conflict counts diverged")
            print(f"{variant.label:<26} {path.stat().st_size:>9d} bytes "
                  f"{'ok    ' if ok else 'FAIL  '}{detail}")
    if failures:
        print(f"roundtrip: {failures} of {len(variants)} "
              f"configuration(s) diverged", file=sys.stderr)
        return EXIT_FINDINGS
    print(f"roundtrip: {len(variants)} configuration(s) byte-identical "
          f"through .rtrc")
    return EXIT_OK


def _roundtrip_check(files: list[Path]) -> int:
    """Validate on-disk ``.rtrc`` files under the 0/1/2 contract."""
    from repro.errors import AnalysisError
    from repro.tracer.columnar import read_rtrc

    failures = 0
    for path in files:
        if not path.is_file():
            raise _UsageError(f"cannot read {path}: no such file")
        try:
            ct = read_rtrc(path)
            ct.validate()
            nrecords = len(ct.to_trace().records)
        except AnalysisError as exc:
            failures += 1
            print(f"{path}  FAIL  {exc}")
            continue
        print(f"{path}  ok    {nrecords} record(s), "
              f"{path.stat().st_size} bytes")
    if failures:
        print(f"roundtrip: {failures} of {len(files)} file(s) damaged",
              file=sys.stderr)
        return EXIT_FINDINGS
    return EXIT_OK


@_usage_guard
def serve_main(argv: list[str] | None = None) -> int:
    """``python -m repro.study serve`` — the analysis service.

    Binds, prints one JSON ready line (``{"event": "ready", "host":
    ..., "port": ...}``) on stdout, and serves until SIGINT/SIGTERM,
    then drains admitted requests before exiting 0.  ``--ready-file``
    additionally writes the ready document to a file for scripts that
    cannot capture stdout (the CI smoke job).
    """
    import asyncio
    import json
    import os
    import signal

    parser = argparse.ArgumentParser(
        prog="python -m repro.study serve",
        description="Serve the consistency analyses over length-"
                    "prefixed JSON TCP (see docs/serving.md).")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (default 0 = ephemeral; the "
                             "ready line reports the bound port)")
    parser.add_argument("--queue-limit", type=int, default=16,
                        metavar="N",
                        help="max admitted in-flight requests; beyond "
                             "this arrivals get 'overloaded' "
                             "(default 16)")
    parser.add_argument("--workers", type=int, default=2, metavar="N",
                        help="analysis worker processes (default 2)")
    parser.add_argument("--default-deadline", type=float, default=60.0,
                        metavar="S",
                        help="deadline budget for requests that set "
                             "none (default 60)")
    parser.add_argument("--drain", type=float, default=10.0,
                        metavar="S",
                        help="shutdown grace for in-flight requests "
                             "(default 10)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not update .repro-cache/")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        metavar="DIR",
                        help="result cache root (default "
                             ".repro-cache/ or $REPRO_CACHE_DIR)")
    parser.add_argument("--debug", action="store_true",
                        help="also serve debug endpoints (sleep)")
    parser.add_argument("--ready-file", type=Path, default=None,
                        metavar="FILE",
                        help="write the ready JSON document here too")
    args = parser.parse_args(argv)
    if args.queue_limit < 1 or args.workers < 1:
        raise _UsageError("--queue-limit and --workers must be >= 1")
    if args.default_deadline <= 0 or args.drain < 0:
        raise _UsageError("--default-deadline must be > 0 and "
                          "--drain >= 0")

    from repro.serve.server import AnalysisServer, ServeConfig
    from repro.study.cache import ResultCache

    async def run() -> int:
        cache = ResultCache.from_options(cache_dir=args.cache_dir,
                                         no_cache=args.no_cache)
        server = AnalysisServer(
            ServeConfig(host=args.host, port=args.port,
                        queue_limit=args.queue_limit,
                        workers=args.workers,
                        default_deadline_s=args.default_deadline,
                        drain_s=args.drain, debug=args.debug),
            cache=cache)
        await server.start()
        ready = json.dumps({"event": "ready", "host": args.host,
                            "port": server.port, "pid": os.getpid()},
                           sort_keys=True)
        print(ready, flush=True)
        if args.ready_file is not None:
            args.ready_file.parent.mkdir(parents=True, exist_ok=True)
            args.ready_file.write_text(ready + "\n")

        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-unix event loops: Ctrl-C still unwinds us
        forever = asyncio.ensure_future(server.serve_forever())
        try:
            await stop.wait()
        finally:
            print("[serve: draining]", file=sys.stderr)
            await server.stop()
            forever.cancel()
        return EXIT_OK

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return EXIT_OK
    except OSError as exc:
        raise _UsageError(f"cannot bind {args.host}:{args.port}: "
                          f"{exc.strerror or exc}")


def _parse_request_params(args: argparse.Namespace) -> dict:
    import json

    params: dict = {}
    if args.json:
        try:
            doc = json.loads(args.json)
        except ValueError as exc:
            raise _UsageError(f"--json is not valid JSON: {exc}")
        if not isinstance(doc, dict):
            raise _UsageError("--json must be a JSON object")
        params.update(doc)
    for entry in args.param or []:
        key, sep, value = entry.partition("=")
        if not sep or not key:
            raise _UsageError(
                f"--param takes KEY=VALUE, got {entry!r}")
        try:
            params[key] = json.loads(value)
        except ValueError:
            params[key] = value  # bare strings need no quoting
    return params


@_usage_guard
def request_main(argv: list[str] | None = None) -> int:
    """``python -m repro.study request`` — one query to the service.

    Prints the full response document as JSON.  Exit codes: 0 the
    request succeeded, 1 the server answered ``overloaded``/
    ``deadline``/``internal`` or is unreachable, 2 the request itself
    is bad (``bad_request``, malformed parameters, missing --port).
    """
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro.study request",
        description="Issue one request against a running analysis "
                    "server and print the response.")
    parser.add_argument("endpoint", nargs="?",
                        help="endpoint name (healthz, fingerprint, "
                             "metrics, cell, lint, advise, chaos, "
                             "staticcheck)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None)
    parser.add_argument("--param", action="append", default=None,
                        metavar="KEY=VALUE",
                        help="request parameter (repeatable); VALUE "
                             "parses as JSON, falling back to string")
    parser.add_argument("--json", default=None, metavar="DOC",
                        help="request parameters as one JSON object "
                             "(--param entries override)")
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="S",
                        help="per-request deadline budget in seconds")
    parser.add_argument("--seed", type=int, default=0,
                        help="retry-jitter seed (default 0)")
    parser.add_argument("--out", type=Path, default=None,
                        help="also write the response to this file")
    args = parser.parse_args(argv)
    if not args.endpoint:
        raise _UsageError("an endpoint name is required")
    if args.port is None:
        raise _UsageError("--port is required (see the server's "
                          "ready line)")
    params = _parse_request_params(args)

    from repro.serve.client import ServeConnectionError, request_sync
    from repro.serve.protocol import ERR_BAD_REQUEST, response_error_code

    try:
        response = request_sync(args.host, args.port, args.endpoint,
                                params, deadline_s=args.deadline,
                                seed=args.seed)
    except ServeConnectionError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_FINDINGS
    text = json.dumps(response, indent=2, sort_keys=True)
    print(text)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(text + "\n")
    code = response_error_code(response)
    if code is None:
        return EXIT_OK
    print(f"{code}: {response['error']['message']}", file=sys.stderr)
    return EXIT_USAGE if code == ERR_BAD_REQUEST else EXIT_FINDINGS


@_usage_guard
def loadtest_main(argv: list[str] | None = None) -> int:
    """``python -m repro.study loadtest`` — the seeded load generator.

    Exit codes: 0 every request succeeded, 1 any request failed (or
    the server is unreachable), 2 usage.
    """
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro.study loadtest",
        description="Drive a seeded zipf-skewed closed-loop load "
                    "against a running analysis server.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None)
    parser.add_argument("--clients", type=int, default=4, metavar="N")
    parser.add_argument("--requests", type=int, default=25,
                        metavar="N", help="requests per client "
                                          "(default 25)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--zipf", type=float, default=1.2,
                        metavar="S", help="popularity skew exponent "
                                          "(default 1.2)")
    parser.add_argument("--nranks", type=int, default=2,
                        help="ranks per requested cell (default 2)")
    parser.add_argument("--deadline", type=float, default=60.0,
                        metavar="S",
                        help="per-request deadline budget "
                             "(default 60)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--out", type=Path, default=None,
                        help="also write the JSON report to this file")
    args = parser.parse_args(argv)
    if args.port is None:
        raise _UsageError("--port is required (see the server's "
                          "ready line)")

    from repro.serve.client import ServeConnectionError
    from repro.serve.loadgen import LoadSpec, report_text, run_load_sync

    spec = LoadSpec(clients=args.clients,
                    requests_per_client=args.requests,
                    seed=args.seed, zipf_s=args.zipf,
                    nranks=args.nranks, deadline_s=args.deadline)
    try:
        spec.validate()
    except ValueError as exc:
        raise _UsageError(str(exc))
    try:
        report = run_load_sync(args.host, args.port, spec)
    except ServeConnectionError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_FINDINGS

    as_json = json.dumps(report, indent=2, sort_keys=True)
    print(as_json if args.format == "json" else report_text(report))
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(as_json + "\n")
    return EXIT_OK if report["ok"] else EXIT_FINDINGS


@_usage_guard
def cluster_main(argv: list[str] | None = None) -> int:
    """``python -m repro.study cluster`` — the analysis cluster.

    ``start``/``worker``/``status``/``loadtest``/``chaos`` under the
    uniform 0/1/2 exit contract; see :mod:`repro.cluster.cli` and
    ``docs/cluster.md``.
    """
    from repro.cluster.cli import cluster_main as cluster_impl

    return cluster_impl(argv)


@_usage_guard
def cache_main(argv: list[str] | None = None) -> int:
    """``python -m repro.study cache`` — result-store maintenance.

    ``stats`` summarizes the store; ``prune`` evicts by age and/or a
    total-size cap (oldest-first).  Exit codes: 0 done, 2 usage
    (unknown action, prune without a criterion).
    """
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro.study cache",
        description="Inspect or prune the content-addressed result "
                    "cache (.repro-cache/).")
    parser.add_argument("action", nargs="?",
                        help="'stats' or 'prune'")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        metavar="DIR",
                        help="cache root (default .repro-cache/ or "
                             "$REPRO_CACHE_DIR)")
    parser.add_argument("--max-age-days", type=float, default=None,
                        metavar="D",
                        help="prune entries not written in D days")
    parser.add_argument("--max-bytes", type=int, default=None,
                        metavar="N",
                        help="prune oldest entries until the store "
                             "fits in N bytes")
    parser.add_argument("--dry-run", action="store_true",
                        help="report what prune would remove, remove "
                             "nothing")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    args = parser.parse_args(argv)
    if args.action not in ("stats", "prune"):
        raise _UsageError("action must be 'stats' or 'prune'")

    from repro.study.cache import ResultCache, prune, usage_stats

    root = ResultCache.from_options(cache_dir=args.cache_dir).root
    if args.action == "stats":
        doc = usage_stats(root)
        lines = [f"cache root: {doc['root']}",
                 f"entries: {doc['entries']} "
                 f"({doc['total_bytes']} bytes, "
                 f"{doc['stray_tempfiles']} stray tempfiles)"]
        if doc.get("oldest_age_s") is not None:
            lines.append(f"age: oldest {doc['oldest_age_s']:.0f}s, "
                         f"newest {doc['newest_age_s']:.0f}s")
        text = "\n".join(lines)
    else:
        if args.max_age_days is None and args.max_bytes is None:
            raise _UsageError("prune needs --max-age-days and/or "
                              "--max-bytes")
        if (args.max_age_days is not None and args.max_age_days < 0) \
                or (args.max_bytes is not None and args.max_bytes < 0):
            raise _UsageError("--max-age-days and --max-bytes must "
                              "be >= 0")
        doc = prune(root,
                    max_age_s=None if args.max_age_days is None
                    else args.max_age_days * 86400.0,
                    max_total_bytes=args.max_bytes,
                    dry_run=args.dry_run)
        verb = "would remove" if args.dry_run else "removed"
        text = (f"{verb} {doc['removed']} of {doc['scanned']} entries "
                f"({doc['removed_bytes']} bytes) and "
                f"{doc['removed_strays']} stray tempfiles; "
                f"{doc['kept']} entries ({doc['kept_bytes']} bytes) "
                f"kept")
        if doc.get("already_gone"):
            text += (f"; {doc['already_gone']} already removed by a "
                     f"concurrent pruner")
    print(json.dumps(doc, indent=2, sort_keys=True)
          if args.format == "json" else text)
    return EXIT_OK


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
