"""Command-line entry point: regenerate the paper's evaluation.

Usage::

    python -m repro.study [--nranks 8] [--seed 7] [--out results/]
                          [--jobs N]
    python -m repro.study all [--jobs N] [--format text|json]
                              [--no-cache] [--stats]
    python -m repro.study lint <app|--all> [--format text|json]
    python -m repro.study chaos [--app NAME[/LIB]]... [--all] [--jobs N]
    python -m repro.study crossvalidate <app|--all> [--jobs N]
    python -m repro.study metrics <file|--collect>
    python -m repro.study fingerprint

The default mode prints Tables 1–5 and Figures 1–3 (text form) and,
with ``--out``, writes per-run reports and Figure 2 CSV dot clouds.
``all`` evaluates the app×config matrix as JSON-able summary cells —
fanned out over ``--jobs`` worker processes and served incrementally
from the content-addressed result cache (``.repro-cache/``), with
byte-identical output for every jobs/cache combination.  The ``lint``
subcommand runs the static consistency-semantics linter
(:mod:`repro.lint`); ``chaos`` replays traces under a deterministic
fault matrix (:mod:`repro.pfs.chaos`); ``crossvalidate`` checks the
linter against the replay-based oracle; ``fingerprint`` prints the
code fingerprint cache keys embed (CI keys its cache restore on it).

Every matrix subcommand accepts ``--metrics FILE``: the run executes
under a :mod:`repro.obs` registry (bypassing the result cache so the
simulator actually runs) and writes the collected counters, timers,
and self-trace spans as JSON lines to ``FILE`` — stdout is unchanged.
``metrics`` renders the text dashboard for such a file (or collects
one live with ``--collect``).

Exit codes are uniform across every subcommand:

* **0** — ran to completion, nothing to report;
* **1** — a real finding or failure (ERROR diagnostics, an unsound
  chaos cell, a cross-validation false negative);
* **2** — usage error (unknown application/library/plan/rule, bad
  flag combination).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.semantics import Semantics
from repro.study.figures import (
    figure1_text,
    figure2_ascii,
    figure2_csv,
    figure2_text,
    figure3_text,
)
from repro.study.runner import run_study
from repro.study.tables import (
    table1_text,
    table2_text,
    table3_text,
    table4_text,
    table5_text,
)

#: ran to completion, nothing to report
EXIT_OK = 0
#: a real finding or failure (lint ERROR, unsound chaos cell, ...)
EXIT_FINDINGS = 1
#: bad invocation (unknown app/plan/rule, invalid flag combination)
EXIT_USAGE = 2


class _UsageError(Exception):
    """Invalid invocation; the message goes to stderr, exit is 2."""


def _usage_guard(func):
    """Give every entry point the same usage-error contract.

    Each subcommand ``*_main`` is public API (tests and tools call them
    directly, not only through :func:`main`), so each must map
    :class:`_UsageError` to stderr + exit code 2 itself.
    """
    import functools

    @functools.wraps(func)
    def wrapper(argv: list[str] | None = None) -> int:
        try:
            return func(argv)
        except _UsageError as exc:
            print(str(exc), file=sys.stderr)
            return EXIT_USAGE

    return wrapper


def _resolve_variants(entries: list[str] | None, all_flag: bool):
    """Shared ``--app NAME[/LIB]`` / ``--all`` resolution.

    Every subcommand resolves configurations through this one helper so
    unknown names and empty filters fail identically (message to
    stderr, exit code 2) across ``lint``, ``chaos``, ``crossvalidate``
    and the single-app default mode.
    """
    from repro.apps.registry import APPLICATIONS, find_spec

    if all_flag == bool(entries):
        raise _UsageError("specify exactly one of --app NAME[/LIB] "
                          "(or a NAME argument) or --all")
    if all_flag:
        return [v for spec in APPLICATIONS for v in spec.variants]
    variants = []
    for entry in entries or []:
        name, _, lib = entry.partition("/")
        try:
            spec = find_spec(name)
        except KeyError:
            known = ", ".join(sorted(s.name for s in APPLICATIONS))
            raise _UsageError(
                f"unknown application {name!r}; known: {known}")
        matched = [v for v in spec.variants
                   if not lib or v.io_library.lower() == lib.lower()]
        if not matched:
            raise _UsageError(f"no variant of {spec.name} uses {lib!r}")
        variants.extend(matched)
    return variants


def _add_matrix_args(parser: argparse.ArgumentParser, *,
                     nranks: int = 8) -> None:
    """Flags shared by every matrix-shaped subcommand."""
    parser.add_argument("--nranks", type=int, default=nranks)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the matrix "
                             "(default 1 = serial; 0 = one per CPU)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not update .repro-cache/")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        metavar="DIR",
                        help="result cache root (default "
                             ".repro-cache/ or $REPRO_CACHE_DIR)")
    parser.add_argument("--metrics", type=Path, default=None,
                        metavar="FILE",
                        help="collect simulator metrics and write them "
                             "as JSON lines to FILE (implies "
                             "--no-cache; the report itself is "
                             "unchanged)")


def _matrix_cache(args: argparse.Namespace):
    from repro.study.cache import ResultCache

    if getattr(args, "metrics", None) is not None:
        # a cached cell never runs the simulator, so a metrics run
        # bypasses the cache entirely — the instruments must fire
        return ResultCache.disabled()
    return ResultCache.from_options(cache_dir=args.cache_dir,
                                    no_cache=args.no_cache)


def _metrics_scope(args: argparse.Namespace):
    """Registry lifetime for one ``--metrics FILE`` invocation.

    Without the flag this is a no-op pass-through.  With it, a tracing
    registry is active for the body and the JSON-lines export is
    written on normal exit (a usage error leaves no partial file);
    the report on stdout is the same bytes either way.
    """
    from contextlib import contextmanager

    from repro.obs import registry as obs

    @contextmanager
    def scope():
        if args.metrics is None:
            yield None
            return
        from repro.obs.export import to_jsonl

        with obs.collecting(trace=True) as reg:
            yield reg
            args.metrics.parent.mkdir(parents=True, exist_ok=True)
            args.metrics.write_text(to_jsonl(reg))
            print(f"[metrics: {len(reg)} instruments -> "
                  f"{args.metrics}]", file=sys.stderr)

    return scope()


def _matrix_jobs(args: argparse.Namespace) -> int:
    from repro.study.parallel import resolve_jobs

    return resolve_jobs(None) if args.jobs == 0 else max(1, args.jobs)


def _print_matrix_stats(run, cache, *, show_cells: bool) -> None:
    """Cache-hit and timing stats — on stderr, never in the payload.

    Keeping stdout pure is what lets the determinism tests (and CI
    artifact diffs) demand byte-identical reports regardless of jobs
    count or cache temperature.
    """
    print(f"[{run.summary()}; cache: {cache.stats.summary()}]",
          file=sys.stderr)
    if show_cells:
        print(run.timing_table(), file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    commands = {
        "all": all_main,
        "lint": lint_main,
        "chaos": chaos_main,
        "crossvalidate": crossvalidate_main,
        "fingerprint": fingerprint_main,
        "metrics": metrics_main,
    }
    try:
        if argv and argv[0] in commands:
            return commands[argv[0]](argv[1:])
        return _tables_main(argv)
    except _UsageError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_USAGE


def _tables_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.study",
        description="Regenerate the paper's tables and figures from "
                    "fresh simulated traces.")
    parser.add_argument("--nranks", type=int, default=8,
                        help="MPI ranks per run (default 8; the paper "
                             "used 64 and 1024)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for tracing the matrix "
                             "(default 1 = serial; 0 = one per CPU)")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory for per-run reports and CSVs")
    parser.add_argument("--app", default=None, metavar="NAME[/LIB]",
                        help="analyze a single application instead of "
                             "the full study (e.g. FLASH or LAMMPS/ADIOS)")
    args = parser.parse_args(argv)

    if args.app is not None:
        return _single_app(args)

    print(table1_text())
    print()
    print(table2_text())
    print()
    print(table5_text())
    print()

    print(f"Running the 25 configurations at {args.nranks} ranks ...",
          flush=True)
    jobs = _matrix_jobs(args) if hasattr(args, "jobs") else 1
    results = run_study(nranks=args.nranks, seed=args.seed, jobs=jobs)

    print()
    print(table3_text(results))
    print()
    print(table4_text(results))
    print()
    print(figure1_text(results))
    print()
    fbs = results.find("FLASH-HDF5 fbs")
    nofbs = results.find("FLASH-HDF5 nofbs")
    print(figure2_text(fbs, nofbs))
    print()
    print(figure2_ascii(fbs, nofbs))
    print()
    print(figure3_text(results))

    from repro.study.compat import compat_text
    print()
    print(compat_text(results))

    clean = sum(
        1 for run in results
        if not run.report.conflicts(Semantics.SESSION).cross_process_only)
    print()
    print(f"{clean} of {len(results)} configurations are free of "
          f"cross-process conflicts under session semantics.")

    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        for run in results:
            name = run.label.replace("/", "_").replace(" ", "_")
            (args.out / f"{name}.report.txt").write_text(
                run.report.to_text() + "\n")
            run.trace.to_jsonl(args.out / f"{name}.trace.jsonl")
        paths = figure2_csv(fbs, nofbs, args.out)
        print(f"wrote {len(results)} reports+traces and "
              f"{len(paths)} figure-2 CSVs to {args.out}/")
    return EXIT_OK


def _single_app(args: argparse.Namespace) -> int:
    from repro.core.report import analyze

    variants = _resolve_variants([args.app], all_flag=False)
    for variant in variants:
        trace = variant.run(nranks=args.nranks, seed=args.seed)
        report = analyze(trace)
        print(report.to_text())
        print()
        print(report.profile.to_text())
        print()
        from repro.core.timeline import conflict_timelines
        session = report.conflicts(Semantics.SESSION)
        if session:
            print(conflict_timelines(trace, session, max_files=2))
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            safe = variant.label.replace("/", "_").replace(" ", "_")
            (args.out / f"{safe}.report.txt").write_text(
                report.to_text() + "\n")
            trace.to_jsonl(args.out / f"{safe}.trace.jsonl")
            from repro.tracer.recorder_format import to_recorder_text
            to_recorder_text(trace, args.out / f"{safe}.trace.txt")
    return EXIT_OK


@_usage_guard
def all_main(argv: list[str] | None = None) -> int:
    """``python -m repro.study all`` — the matrix as summary cells.

    The incremental, parallel face of the campaign: one JSON-able
    summary per configuration, fanned out over ``--jobs`` workers and
    served from the result cache when the cell parameters and the code
    fingerprint are unchanged.  Output on stdout is byte-identical for
    every jobs/cache combination; stats go to stderr.
    """
    from repro.study.runner import matrix_json, study_cells

    parser = argparse.ArgumentParser(
        prog="python -m repro.study all",
        description="Evaluate every registered configuration into "
                    "summary cells (parallel + cached).")
    _add_matrix_args(parser)
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--workflows", action="store_true",
                        help="append the canonical producer/consumer "
                             "workflow cell to the matrix")
    parser.add_argument("--stats", action="store_true",
                        help="print per-cell timing/cache provenance "
                             "to stderr")
    parser.add_argument("--out", type=Path, default=None,
                        help="also write the report to this file")
    args = parser.parse_args(argv)

    with _metrics_scope(args):
        cache = _matrix_cache(args)
        jobs = _matrix_jobs(args)
        run = study_cells(nranks=args.nranks, seed=args.seed, jobs=jobs,
                          cache=cache)
        cells = list(run.payloads)

        if args.workflows:
            from repro.study.cache import cache_key
            from repro.study.parallel import (
                CellSpec,
                run_matrix,
                workflow_task,
            )

            wf = run_matrix(
                "workflow-cell",
                [CellSpec(key_fields={"producer_ranks": 4,
                                      "reader_ranks": 2,
                                      "seed": args.seed},
                          task=(4, 2, args.seed))],
                workflow_task, jobs=1, cache=cache)
            cells.extend(wf.payloads)
            run.outcomes.extend(wf.outcomes)

        if args.format == "json":
            text = matrix_json(cells, nranks=args.nranks, seed=args.seed)
        else:
            text = _matrix_text(cells)
        print(text)
        if args.out is not None:
            args.out.parent.mkdir(parents=True, exist_ok=True)
            args.out.write_text(text + "\n")
        _print_matrix_stats(run, cache, show_cells=args.stats)
        return EXIT_OK


def _matrix_text(cells: list[dict]) -> str:
    hdr = (f"{'configuration':<26} {'X-Y':<4} {'pattern':<15} "
           f"{'session':>8} {'commit':>7} {'weakest':<9} files")
    lines = [hdr, "-" * len(hdr)]
    for cell in cells:
        conflicts = cell["conflicts"]
        lines.append(
            f"{cell['label']:<26} {cell.get('xy', '-'):<4} "
            f"{cell.get('pattern', '-'):<15} "
            f"{conflicts['session']['count']:>8} "
            f"{conflicts['commit']['count']:>7} "
            f"{cell['weakest_semantics']:<9} "
            f"{cell.get('data_files', '-')}")
    clean = sum(1 for c in cells
                if not c["conflicts"]["session"]["cross_process"])
    lines.append("")
    lines.append(f"{clean} of {len(cells)} cells are free of "
                 f"cross-process conflicts under session semantics.")
    return "\n".join(lines)


@_usage_guard
def lint_main(argv: list[str] | None = None) -> int:
    """``python -m repro.study lint`` — the static semantics linter.

    Exit codes: 0 no ERROR diagnostics, 1 at least one ERROR, 2 usage.
    """
    from repro.errors import LintError
    from repro.lint import all_rules, lint_variant
    from repro.lint.reporters import (
        render_json,
        render_study_json,
        render_study_text,
        render_text,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.study lint",
        description="Statically lint application traces for "
                    "consistency-semantics hazards (no PFS replay).")
    parser.add_argument("app", nargs="?", metavar="NAME[/LIB]",
                        help="application to lint (e.g. FLASH or "
                             "LAMMPS/ADIOS); omit with --all")
    parser.add_argument("--all", action="store_true",
                        help="lint every registered configuration")
    parser.add_argument("--nranks", type=int, default=8)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--rules", default=None, metavar="R1,R2",
                        help="comma-separated rule names/ids to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--out", type=Path, default=None,
                        help="also write the report to this file")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.name:26s} {rule.summary}")
        return EXIT_OK
    variants = _resolve_variants([args.app] if args.app else None,
                                 all_flag=args.all)
    rules = ([r.strip() for r in args.rules.split(",") if r.strip()]
             if args.rules else None)

    try:
        reports = [lint_variant(v, nranks=args.nranks, seed=args.seed,
                                rules=rules)
                   for v in variants]
    except LintError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_USAGE

    if args.format == "json":
        text = (render_study_json(reports, nranks=args.nranks,
                                  seed=args.seed)
                if args.all or len(reports) > 1
                else render_json(reports[0]))
    else:
        text = (render_study_text(reports) if args.all
                else "\n\n".join(render_text(r) for r in reports))
    print(text)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(text + "\n")
    return EXIT_FINDINGS if any(r.errors for r in reports) else EXIT_OK


@_usage_guard
def chaos_main(argv: list[str] | None = None) -> int:
    """``python -m repro.study chaos`` — fault-matrix replay.

    Exit codes: 0 every cell sound, 1 at least one contract violation
    or unattributed corruption, 2 usage.
    """
    from repro.pfs.chaos import (
        CHAOS_SEMANTICS,
        CHAOS_STRIPE_SIZE,
        ChaosCell,
        ChaosReport,
        default_fault_plans,
    )
    from repro.study.parallel import (
        CellSpec,
        chaos_variant_task,
        run_matrix,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.study chaos",
        description="Replay application traces under a deterministic "
                    "fault matrix and audit crash recovery against the "
                    "per-semantics durability contract.")
    parser.add_argument("--app", action="append", default=None,
                        metavar="NAME[/LIB]",
                        help="configuration to test (repeatable, e.g. "
                             "--app FLASH --app LAMMPS/ADIOS)")
    parser.add_argument("--all", action="store_true",
                        help="test every registered configuration")
    _add_matrix_args(parser, nranks=4)
    parser.add_argument("--plans", default=None, metavar="P1,P2",
                        help="subset of plan names to run (default: "
                             "the full matrix; see --list-plans)")
    parser.add_argument("--list-plans", action="store_true",
                        help="print the default fault plans and exit")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--stats", action="store_true",
                        help="print per-cell timing/cache provenance "
                             "to stderr")
    parser.add_argument("--out", type=Path, default=None,
                        help="also write the report to this file")
    args = parser.parse_args(argv)

    if args.list_plans:
        for plan in default_fault_plans(args.seed):
            print(f"{plan.name:<16} crashes={len(plan.crashes)} "
                  f"cache_drops={len(plan.cache_drops)} "
                  f"error_rate={plan.error_rate:g}")
        return EXIT_OK
    variants = _resolve_variants(args.app, all_flag=args.all)

    plans = default_fault_plans(args.seed)
    if args.plans is not None:
        wanted = {p.strip() for p in args.plans.split(",") if p.strip()}
        unknown = wanted - {p.name for p in plans}
        if unknown:
            raise _UsageError(
                f"unknown plan(s): {', '.join(sorted(unknown))}")
        plans = [p for p in plans if p.name in wanted]

    plan_names = tuple(p.name for p in plans)
    sem_names = tuple(s.name.lower() for s in CHAOS_SEMANTICS)
    with _metrics_scope(args):
        cache = _matrix_cache(args)
        run = run_matrix(
            "chaos-variant",
            [CellSpec(key_fields={"label": v.label,
                                  "options": dict(sorted(
                                      v.options.items())),
                                  "nranks": args.nranks,
                                  "seed": args.seed,
                                  "plans": list(plan_names),
                                  "semantics": list(sem_names),
                                  "stripe": CHAOS_STRIPE_SIZE},
                      task=(v, args.nranks, args.seed, plan_names,
                            sem_names, CHAOS_STRIPE_SIZE))
             for v in variants],
            chaos_variant_task, jobs=_matrix_jobs(args), cache=cache)

        report = ChaosReport(nranks=args.nranks, seed=args.seed,
                             plans=list(plan_names))
        for payload in run.payloads:
            report.cells.extend(
                ChaosCell.from_dict(d) for d in payload["cells"])

        text = (report.to_json() if args.format == "json"
                else report.to_text())
        print(text)
        if args.out is not None:
            args.out.parent.mkdir(parents=True, exist_ok=True)
            args.out.write_text(text + "\n")
        _print_matrix_stats(run, cache, show_cells=args.stats)
        return EXIT_OK if report.ok else EXIT_FINDINGS


@_usage_guard
def crossvalidate_main(argv: list[str] | None = None) -> int:
    """``python -m repro.study crossvalidate`` — lint vs replay oracle.

    Exit codes: 0 no false negatives, 1 the linter missed a pair the
    replay pipeline reports (its zero-false-negative contract is
    broken), 2 usage.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.study crossvalidate",
        description="Cross-validate the static linter against the "
                    "replay-based conflict and durability oracles.")
    parser.add_argument("app", nargs="?", metavar="NAME[/LIB]",
                        help="configuration to check; omit with --all")
    parser.add_argument("--all", action="store_true",
                        help="check every registered configuration")
    _add_matrix_args(parser)
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--stats", action="store_true",
                        help="print per-cell timing/cache provenance "
                             "to stderr")
    parser.add_argument("--out", type=Path, default=None,
                        help="also write the report to this file")
    args = parser.parse_args(argv)

    from repro.study.parallel import CellSpec, crossval_task, run_matrix

    variants = _resolve_variants([args.app] if args.app else None,
                                 all_flag=args.all)
    with _metrics_scope(args):
        cache = _matrix_cache(args)
        run = run_matrix(
            "crossval-cell",
            [CellSpec(key_fields={"label": v.label,
                                  "options": dict(sorted(
                                      v.options.items())),
                                  "nranks": args.nranks,
                                  "seed": args.seed},
                      task=(v, args.nranks, args.seed))
             for v in variants],
            crossval_task, jobs=_matrix_jobs(args), cache=cache)
        cells = list(run.payloads)
        return _render_crossval(args, run, cache, cells)


def _render_crossval(args, run, cache, cells: list[dict]) -> int:
    import json

    if args.format == "json":
        text = json.dumps(
            {"nranks": args.nranks, "seed": args.seed, "cells": cells,
             "ok": all(c["ok"] for c in cells)},
            sort_keys=True, indent=2)
    else:
        lines = [f"{'configuration':<26} {'pairs':>6} {'missed':>7} "
                 f"{'extras':>7}  status"]
        lines.append("-" * len(lines[0]))
        for cell in cells:
            pairs = (cell["hazards"]["checked_pairs"]
                     + cell["durability"]["checked_pairs"])
            missed = (len(cell["hazards"]["false_negatives"])
                      + len(cell["durability"]["false_negatives"]))
            extras = (len(cell["hazards"]["extras"])
                      + len(cell["durability"]["extras"]))
            status = "ok" if cell["ok"] else "FALSE NEGATIVES"
            lines.append(f"{cell['label']:<26} {pairs:>6} {missed:>7} "
                         f"{extras:>7}  {status}")
        bad = [c for c in cells if not c["ok"]]
        lines.append("")
        lines.append(f"{len(cells)} configurations, "
                     f"{len(bad)} with false negatives")
        for cell in bad:
            for msg in (cell["hazards"]["false_negatives"]
                        + cell["durability"]["false_negatives"]):
                lines.append(f"  {msg}")
        text = "\n".join(lines)
    print(text)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(text + "\n")
    _print_matrix_stats(run, cache, show_cells=args.stats)
    return EXIT_OK if all(c["ok"] for c in cells) else EXIT_FINDINGS


@_usage_guard
def metrics_main(argv: list[str] | None = None) -> int:
    """``python -m repro.study metrics`` — the observability dashboard.

    Renders the counter/timer/self-trace dashboard for a JSON-lines
    file previously written by ``--metrics``, or (with ``--collect``)
    runs the study matrix live under a fresh registry and reports what
    the simulator did.  Exit codes: 0 rendered, 2 usage (no input,
    unreadable or malformed file).
    """
    from repro.obs import registry as obs
    from repro.obs.export import parse_jsonl, render_dashboard, to_jsonl

    parser = argparse.ArgumentParser(
        prog="python -m repro.study metrics",
        description="Render the metrics dashboard for a --metrics "
                    "JSON-lines file, or collect one live from the "
                    "study matrix.")
    parser.add_argument("file", nargs="?", type=Path, metavar="FILE",
                        help="JSON-lines file written by --metrics; "
                             "omit with --collect")
    parser.add_argument("--collect", action="store_true",
                        help="run the study matrix now and report its "
                             "metrics (ignores the result cache)")
    parser.add_argument("--nranks", type=int, default=4,
                        help="ranks per configuration for --collect "
                             "(default 4)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for --collect "
                             "(default 1 = serial; 0 = one per CPU)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text",
                        help="text = dashboard, json = canonical "
                             "JSON-lines re-emit")
    parser.add_argument("--out", type=Path, default=None,
                        help="also write the rendered output to this "
                             "file")
    args = parser.parse_args(argv)

    if args.collect == (args.file is not None):
        raise _UsageError("specify exactly one of FILE or --collect")

    if args.collect:
        from repro.study.cache import ResultCache
        from repro.study.parallel import resolve_jobs
        from repro.study.runner import study_cells

        jobs = resolve_jobs(None) if args.jobs == 0 else max(1, args.jobs)
        with obs.collecting(trace=True) as reg:
            study_cells(nranks=args.nranks, seed=args.seed, jobs=jobs,
                        cache=ResultCache.disabled())
    else:
        try:
            raw = args.file.read_text()
        except OSError as exc:
            raise _UsageError(f"cannot read {args.file}: "
                              f"{exc.strerror or exc}")
        try:
            reg, _ = parse_jsonl(raw)
        except (ValueError, KeyError, TypeError) as exc:
            raise _UsageError(
                f"{args.file} is not a --metrics JSON-lines file: {exc}")

    text = to_jsonl(reg) if args.format == "json" \
        else render_dashboard(reg)
    print(text, end="" if text.endswith("\n") else "\n")
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(text if text.endswith("\n") else text + "\n")
    return EXIT_OK


@_usage_guard
def fingerprint_main(argv: list[str] | None = None) -> int:
    """``python -m repro.study fingerprint`` — print the code digest.

    CI uses this as the ``actions/cache`` key for ``.repro-cache/``:
    any change to the :mod:`repro` source invalidates every cached
    cell at once, so a restored cache can never serve stale results.
    """
    from repro.study.cache import code_fingerprint

    parser = argparse.ArgumentParser(
        prog="python -m repro.study fingerprint",
        description="Print the repro source fingerprint that scopes "
                    "result-cache keys.")
    parser.parse_args(argv)
    print(code_fingerprint())
    return EXIT_OK


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
