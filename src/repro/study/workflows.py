"""Multi-application workflow analysis (paper §7 future work).

    "we plan to expand our conflicts detection algorithm to support ...
    complex HPC workflows consisting of multiple applications"

A *workflow* here is a sequence of jobs sharing one file system: a
simulation stage writes output files, an analysis stage reads them.
Each stage runs as its own simulated job (own engine, own ranks); this
module merges the per-stage traces into one analyzable trace:

* stage timestamps are shifted so stage ``k`` begins after stage
  ``k-1`` ends (plus a scheduler gap);
* stage ranks are remapped to disjoint global process ids — the
  analysis must treat a consumer job's rank 0 as a *different process*
  than the producer job's rank 0;
* record/event ids and collective match keys are renamed to stay
  globally unique;
* optionally, a synthetic dependency event (the workflow manager's
  "stage done → stage start" edge) links consecutive stages so the
  happens-before validation knows the stages are externally ordered.

The merged trace runs through the unchanged §5 pipeline.  The
characteristic result (pinned by tests): a file-based producer/consumer
workflow is **session-safe** (the producer closes its outputs before
the consumer opens them) but **not eventual-safe** — cross-job RAW
dependencies remain conflicts when no operation forces visibility,
which quantifies the paper's §3.5 caution about eventual consistency
for pipelined workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.apps.base import AppConfig, AppProgram, run_application
from repro.posix.vfs import VirtualFileSystem
from repro.tracer.events import MPIEvent, TraceRecord
from repro.tracer.trace import Trace


@dataclass
class WorkflowStage:
    """One job of the workflow."""

    name: str
    program: AppProgram
    config: AppConfig
    setup: Callable[[VirtualFileSystem, AppConfig], None] | None = None


@dataclass
class WorkflowResult:
    """Merged trace plus per-stage bookkeeping."""

    trace: Trace
    stage_traces: list[Trace]
    vfs: VirtualFileSystem
    #: global process-id offset of each stage's rank 0
    rank_offsets: list[int] = field(default_factory=list)

    def global_rank(self, stage: int, rank: int) -> int:
        return self.rank_offsets[stage] + rank


def _shift_record(rec: TraceRecord, *, dt: float, drank: int,
                  drid: int) -> TraceRecord:
    out = rec.shifted(dt)
    out.rank = rec.rank + drank
    out.rid = rec.rid + drid
    return out


def _shift_event(ev: MPIEvent, *, dt: float, drank: int, deid: int,
                 stage: int) -> MPIEvent:
    return MPIEvent(eid=ev.eid + deid, rank=ev.rank + drank,
                    kind=ev.kind,
                    match_key=("stage", stage) + tuple(ev.match_key),
                    role=ev.role, tstart=ev.tstart + dt,
                    tend=ev.tend + dt)


def run_workflow(stages: list[WorkflowStage], *, gap: float = 1.0,
                 link_stages: bool = True,
                 meta: dict[str, Any] | None = None) -> WorkflowResult:
    """Execute the stages sequentially over one shared file system and
    return the merged, analyzable trace."""
    vfs = VirtualFileSystem()
    stage_traces: list[Trace] = []
    for stage in stages:
        stage_traces.append(run_application(
            stage.config, stage.program, setup=stage.setup, vfs=vfs))

    records: list[TraceRecord] = []
    events: list[MPIEvent] = []
    rank_offsets: list[int] = []
    t_cursor = 0.0
    rank_cursor = 0
    rid_cursor = 0
    eid_cursor = 0
    link_points: list[tuple[int, float, int, float]] = []

    for i, trace in enumerate(stage_traces):
        rank_offsets.append(rank_cursor)
        t_lo = min((r.tstart for r in trace.records), default=0.0)
        t_hi = max((r.tend for r in trace.records), default=0.0)
        for ev in trace.mpi_events:
            t_lo = min(t_lo, ev.tstart)
            t_hi = max(t_hi, ev.tend)
        dt = t_cursor - t_lo
        records.extend(_shift_record(r, dt=dt, drank=rank_cursor,
                                     drid=rid_cursor)
                       for r in trace.records)
        events.extend(_shift_event(e, dt=dt, drank=rank_cursor,
                                   deid=eid_cursor, stage=i)
                      for e in trace.mpi_events)
        link_points.append((rank_cursor, t_cursor - gap / 2,
                            rank_cursor, t_cursor + (t_hi - t_lo)
                            + gap / 4))
        rid_cursor += max((r.rid for r in trace.records), default=0) + 1
        eid_cursor += max((e.eid for e in trace.mpi_events),
                          default=0) + 1
        rank_cursor += trace.nranks
        t_cursor += (t_hi - t_lo) + gap

    if link_stages:
        # the workflow manager's dependency: stage i's completion
        # happens-before stage i+1's start (modelled as a message from
        # the finished stage's rank 0 to the next stage's rank 0,
        # placed before the next stage's startup barrier)
        for i in range(len(stage_traces) - 1):
            src_rank = rank_offsets[i]
            dst_rank = rank_offsets[i + 1]
            _, _, _, src_end = link_points[i]
            dst_start, _ = link_points[i + 1][1], None
            key = ("workflow-dep", i)
            events.append(MPIEvent(
                eid=eid_cursor, rank=src_rank, kind="send",
                match_key=key, role="sender",
                tstart=src_end, tend=src_end + 1e-6))
            eid_cursor += 1
            events.append(MPIEvent(
                eid=eid_cursor, rank=dst_rank, kind="recv",
                match_key=key, role="receiver",
                tstart=link_points[i + 1][1],
                tend=link_points[i + 1][1] + 1e-6))
            eid_cursor += 1

    records.sort(key=lambda r: (r.tstart, r.rank, r.rid))
    events.sort(key=lambda e: (e.tstart, e.rank, e.eid))
    merged = Trace(
        nranks=rank_cursor, records=records, mpi_events=events,
        meta={"workflow": [s.name for s in stages], **(meta or {})})
    return WorkflowResult(trace=merged, stage_traces=stage_traces,
                          vfs=vfs, rank_offsets=rank_offsets)


# -- the canonical producer/consumer pipeline ------------------------------------


def _producer_program(ctx, cfg: AppConfig) -> None:
    """Simulation stage: every rank writes one output part file."""
    from repro.posix import flags as F

    px = ctx.posix
    if ctx.rank == 0:
        px.mkdir("/wf")
        px.mkdir("/wf/out")
    ctx.comm.barrier()
    fd = px.open(f"/wf/out/part{ctx.rank:03d}",
                 F.O_WRONLY | F.O_CREAT | F.O_TRUNC)
    for _ in range(4):
        px.write(fd, 8192)
    px.close(fd)
    ctx.comm.barrier()


def canonical_workflow(*, producer_ranks: int = 4, reader_ranks: int = 2,
                       seed: int = 3) -> WorkflowResult:
    """The module's characteristic pipeline: simulate → analyze.

    A producer job writes one part file per rank, then a consumer job
    reads them back — the file-based coupling pattern the paper's §3.5
    warns is unsafe under eventual consistency.  Deterministic in
    ``(producer_ranks, reader_ranks, seed)``, which makes it a
    schedulable (and cacheable) cell of the ``study all`` matrix.
    """
    return run_workflow([
        WorkflowStage("sim", _producer_program,
                      AppConfig(application="sim", nranks=producer_ranks,
                                seed=seed)),
        WorkflowStage("analysis", make_reader_stage("/wf/out"),
                      AppConfig(application="analysis",
                                nranks=reader_ranks, seed=seed + 1)),
    ])


def workflow_summary(result: WorkflowResult) -> dict:
    """JSON summary of a workflow's cross-stage semantics verdict.

    Mirrors :func:`repro.study.runner.cell_summary`: deterministic pure
    data only, so serial/parallel/cached evaluations agree bytewise.
    """
    from repro.core.report import analyze
    from repro.core.semantics import Semantics

    report = analyze(result.trace)
    conflicts = {}
    for semantics in (Semantics.SESSION, Semantics.COMMIT,
                      Semantics.EVENTUAL):
        cs = report.conflicts(semantics)
        conflicts[semantics.name.lower()] = {
            "count": len(cs),
            "cross_process": len(cs.cross_process_only),
            "flags": dict(cs.flags),
        }
    return {
        "label": "workflow " + "→".join(
            result.trace.meta.get("workflow", [])),
        "stages": list(result.trace.meta.get("workflow", [])),
        "nranks": result.trace.nranks,
        "records": len(result.trace.records),
        "conflicts": conflicts,
        "weakest_semantics":
            report.weakest_sufficient_semantics().name.lower(),
    }


# -- a reusable analysis-stage program ------------------------------------------


def make_reader_stage(directory: str, *, chunk: int = 16384
                      ) -> AppProgram:
    """An analysis job: rank 0 lists ``directory``; files are divided
    round-robin over the ranks, each read front to back."""

    def program(ctx, cfg: AppConfig) -> None:
        from repro.posix import flags as F

        px = ctx.posix
        names = ctx.comm.bcast(
            px.readdir(directory) if ctx.rank == 0 else None, root=0)
        for i, name in enumerate(sorted(names)):
            if i % ctx.nranks != ctx.rank:
                continue
            path = f"{directory}/{name}"
            fd = px.open(path, F.O_RDONLY)
            while px.read(fd, chunk):
                pass
            px.close(fd)
        ctx.comm.barrier()

    return program
