"""The application × file-system compatibility matrix.

This is the artifact the paper argues the community lacks (§1's point
(a): "It is not generally known a priori whether an application will run
correctly on a PFS with weaker semantics"): for every configuration of
the study and every file system of Table 1, can the application run
correctly?  Judged per file system with its own semantics class *and*
its own same-process-ordering capability (BurstFS/PLFS/OrangeFS order
nothing, so S conflicts disqualify them too).
"""

from __future__ import annotations

from repro.core.semantics import PFS_REGISTRY, FileSystemInfo
from repro.study.runner import StudyResults
from repro.util.tables import AsciiTable


def compatibility_matrix(results: StudyResults
                         ) -> dict[tuple[str, str], bool]:
    """(run label, file-system name) -> runs correctly?"""
    out: dict[tuple[str, str], bool] = {}
    for run in results:
        compatible = {fs.name for fs in
                      run.report.compatible_filesystems()}
        for fs in PFS_REGISTRY:
            out[(run.label, fs.name)] = fs.name in compatible
    return out


def compat_text(results: StudyResults) -> str:
    matrix = compatibility_matrix(results)
    table = AsciiTable(
        ["configuration", *[fs.name for fs in PFS_REGISTRY]],
        title="Application x file-system compatibility "
              "('x' = runs correctly)")
    for run in results:
        table.add_row(run.label, *(
            "x" if matrix[(run.label, fs.name)] else "-"
            for fs in PFS_REGISTRY))
    return table.render()


def incompatibility_counts(results: StudyResults) -> dict[str, int]:
    """How many configurations each file system cannot host."""
    matrix = compatibility_matrix(results)
    return {fs.name: sum(1 for run in results
                         if not matrix[(run.label, fs.name)])
            for fs in PFS_REGISTRY}


def safest_relaxed_filesystems(results: StudyResults
                               ) -> list[FileSystemInfo]:
    """Non-strong file systems that host *every* studied configuration."""
    counts = incompatibility_counts(results)
    from repro.core.semantics import Semantics
    return [fs for fs in PFS_REGISTRY
            if fs.semantics is not Semantics.STRONG
            and counts[fs.name] == 0]
