"""Run the full application matrix and hold the per-run analyses."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable

from repro.apps.registry import RunVariant, all_variants
from repro.core.report import RunReport, analyze
from repro.core.semantics import Semantics
from repro.tracer.trace import Trace


@dataclass
class RunResult:
    """One configuration's trace + analysis + its registry entry."""

    variant: RunVariant
    trace: Trace
    report: RunReport

    @property
    def label(self) -> str:
        return self.variant.label


@dataclass
class StudyResults:
    """All runs of one study invocation."""

    nranks: int
    seed: int
    runs: list[RunResult] = field(default_factory=list)

    def __iter__(self):
        return iter(self.runs)

    def __len__(self) -> int:
        return len(self.runs)

    def find(self, label: str) -> RunResult:
        for run in self.runs:
            if run.label == label:
                return run
        raise KeyError(f"no run labelled {label!r}")


def run_study(nranks: int = 8, seed: int = 7,
              variants: Iterable[RunVariant] | None = None,
              jobs: int | None = None) -> StudyResults:
    """Trace and analyze every configuration (the paper's §6 campaign).

    The paper ran at 64 and 1024 ranks and found the I/O patterns
    scale-independent; we default to 8 for speed (pattern shapes are
    stable from 8 ranks up — at 4 some configurations hit their scale
    floor, e.g. FLASH wants 6 aggregators).

    ``jobs`` fans the per-configuration tracing out over a process pool
    (``None``/``1`` stays serial).  Each cell seeds its own simulator
    from ``(variant, nranks, seed)`` alone, so the results are
    identical — ordering included — for every ``jobs`` value.
    """
    pool = list(variants) if variants is not None else all_variants()
    results = StudyResults(nranks=nranks, seed=seed)
    if jobs is not None and jobs > 1 and len(pool) > 1:
        from repro.study.parallel import (
            CellSpec,
            run_matrix,
            trace_task,
        )

        matrix = run_matrix(
            "trace",
            [CellSpec(key_fields={}, task=(v, nranks, seed))
             for v in pool],
            trace_task, jobs=jobs)
        traces = [payload["trace"] for payload in matrix.payloads]
    else:
        traces = [v.run(nranks=nranks, seed=seed) for v in pool]
    for variant, trace in zip(pool, traces):
        results.runs.append(RunResult(
            variant=variant, trace=trace, report=analyze(trace)))
    return results


# -- JSON-able per-cell summaries (the cacheable unit of `study all`) ----------

#: the relaxed models summarized per cell, in presentation order
SUMMARY_SEMANTICS: tuple[Semantics, ...] = (
    Semantics.SESSION, Semantics.COMMIT, Semantics.EVENTUAL,
    Semantics.OBJECT)


def cell_summary(variant: RunVariant, trace: Trace | None = None, *,
                 nranks: int = 8, seed: int = 7) -> dict:
    """One configuration's analysis as a plain JSON document.

    This is the unit the result cache stores and the process pool ships
    between workers: every value is a deterministic pure function of
    ``(variant, nranks, seed)`` and the analysis code — no timings, no
    host state — so serial, parallel, and cached evaluations of the
    same cell are byte-identical once serialized canonically.
    """
    if trace is None:
        trace = variant.run(nranks=nranks, seed=seed)
    report = analyze(trace)
    bytes_read, bytes_written = trace.bytes_moved()
    primary = report.sharing[0]
    conflicts = {}
    for semantics in SUMMARY_SEMANTICS:
        cs = report.conflicts(semantics)
        conflicts[semantics.name.lower()] = {
            "count": len(cs),
            "cross_process": len(cs.cross_process_only),
            "flags": dict(cs.flags),
            "files": sorted(cs.paths),
        }
    metadata = report.metadata_conflicts
    return {
        "label": variant.label,
        "application": variant.application,
        "io_library": variant.io_library,
        "variant": variant.variant_suffix,
        "nranks": trace.nranks,
        "seed": seed,
        "records": len(trace.records),
        "data_files": len(trace.data_paths),
        "bytes_read": bytes_read,
        "bytes_written": bytes_written,
        "xy": primary.xy(trace.nranks),
        "pattern": str(primary.pattern),
        "conflicts": conflicts,
        "metadata_deps": len(metadata),
        "metadata_cross_process": len(metadata.cross_process),
        "weakest_semantics":
            report.weakest_sufficient_semantics().name.lower(),
        "object_store_compatible": report.object_store_compatible(),
        "compatible_filesystems":
            [f.name for f in report.compatible_filesystems()],
    }


def study_cells(nranks: int = 8, seed: int = 7,
                variants: Iterable[RunVariant] | None = None,
                jobs: int | None = None,
                cache=None, partitions: int = 1):
    """The ``study all`` matrix as summaries: one JSON cell per variant.

    Returns a :class:`repro.study.parallel.MatrixRun`; its ``payloads``
    are the cells in registry order.  With a cache, unchanged cells are
    served from disk instead of re-simulated.

    ``partitions > 1`` traces each cell with the partitioned
    multi-process engine (:mod:`repro.partition`).  The partition count
    is part of every cell's cache key: partitioned and single-process
    runs of the same configuration produce byte-identical traces, but a
    divergence would otherwise hide behind a warm cache.
    """
    from repro.study.parallel import CellSpec, run_matrix, study_cell_task

    pool = list(variants) if variants is not None else all_variants()
    specs = [CellSpec(key_fields={"label": v.label,
                                  "options": dict(sorted(v.options.items())),
                                  "nranks": nranks, "seed": seed,
                                  "partitions": partitions},
                      task=(v, nranks, seed, partitions))
             for v in pool]
    return run_matrix("study-cell", specs, study_cell_task,
                      jobs=jobs, cache=cache)


def matrix_json(cells: list[dict], *, nranks: int, seed: int) -> str:
    """Canonical serialization of the ``study all`` matrix.

    Byte-identical across serial/parallel/cached evaluations of the
    same ``(cells, nranks, seed)`` — the determinism tests and the CI
    artifact diff both rely on this exact form.
    """
    return json.dumps({"nranks": nranks, "seed": seed, "cells": cells},
                      sort_keys=True, indent=2)
