"""Run the full application matrix and hold the per-run analyses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.apps.registry import RunVariant, all_variants
from repro.core.report import RunReport, analyze
from repro.tracer.trace import Trace


@dataclass
class RunResult:
    """One configuration's trace + analysis + its registry entry."""

    variant: RunVariant
    trace: Trace
    report: RunReport

    @property
    def label(self) -> str:
        return self.variant.label


@dataclass
class StudyResults:
    """All runs of one study invocation."""

    nranks: int
    seed: int
    runs: list[RunResult] = field(default_factory=list)

    def __iter__(self):
        return iter(self.runs)

    def __len__(self) -> int:
        return len(self.runs)

    def find(self, label: str) -> RunResult:
        for run in self.runs:
            if run.label == label:
                return run
        raise KeyError(f"no run labelled {label!r}")


def run_study(nranks: int = 8, seed: int = 7,
              variants: Iterable[RunVariant] | None = None,
              ) -> StudyResults:
    """Trace and analyze every configuration (the paper's §6 campaign).

    The paper ran at 64 and 1024 ranks and found the I/O patterns
    scale-independent; we default to 8 for speed (pattern shapes are
    stable from 8 ranks up — at 4 some configurations hit their scale
    floor, e.g. FLASH wants 6 aggregators).
    """
    results = StudyResults(nranks=nranks, seed=seed)
    for variant in (variants if variants is not None else all_variants()):
        trace = variant.run(nranks=nranks, seed=seed)
        results.runs.append(RunResult(
            variant=variant, trace=trace, report=analyze(trace)))
    return results
