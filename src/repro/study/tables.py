"""Builders for the paper's Tables 1–5."""

from __future__ import annotations

from collections import defaultdict

from repro.apps.registry import APPLICATIONS
from repro.core.semantics import Semantics, registry_by_semantics
from repro.study.runner import StudyResults
from repro.util.tables import AsciiTable, render_matrix

# -- Table 1: HPC file systems and their consistency semantics -----------------


def table1_text() -> str:
    table = AsciiTable(
        ["Consistency Semantics", "File Systems"],
        title="Table 1: HPC file systems and their consistency semantics")
    grouping = registry_by_semantics()
    for semantics in (Semantics.STRONG, Semantics.COMMIT,
                      Semantics.SESSION, Semantics.EVENTUAL):
        table.add_row(semantics.title, ", ".join(grouping[semantics]))
    return table.render()


# -- Table 2: build and link configurations ------------------------------------


def table2_text() -> str:
    table = AsciiTable(
        ["Applications", "Compiler", "MPI", "HDF5"],
        title="Table 2: build and link configurations")
    groups: dict[tuple[str, str, str], list[str]] = defaultdict(list)
    for spec in APPLICATIONS:
        groups[(spec.compiler, spec.mpi, spec.hdf5)].append(spec.name)
    for (compiler, mpi, hdf5), names in sorted(groups.items(),
                                               key=lambda kv: -len(kv[1])):
        table.add_row(", ".join(names), compiler, mpi, hdf5 or "-")
    return table.render()


# -- Table 3: high-level access patterns ----------------------------------------


def table3_cells(results: StudyResults) -> dict[tuple[str, str], list[str]]:
    """(X-Y, pattern column) -> run labels, computed from the traces."""
    cells: dict[tuple[str, str], list[str]] = defaultdict(list)
    for run in results:
        primary = run.report.sharing[0]
        xy = primary.xy(results.nranks)
        cells[(xy, str(primary.pattern))].append(run.label)
    return dict(cells)


TABLE3_ROWS = ("N-N", "N-M", "N-1", "M-M", "M-1", "1-1")
TABLE3_COLS = ("consecutive", "strided", "strided cyclic")


def table3_text(results: StudyResults) -> str:
    cells = table3_cells(results)
    table = AsciiTable(
        ["", *TABLE3_COLS],
        title="Table 3: high-level access patterns (computed from traces)")
    for xy in TABLE3_ROWS:
        table.add_row(xy, *(
            ", ".join(sorted(cells.get((xy, col), []))) or "-"
            for col in TABLE3_COLS))
    return table.render()


# -- Table 4: conflicts under session semantics ----------------------------------


def table4_rows(results: StudyResults) -> list[dict]:
    """One dict per run: conflict flags under session + commit."""
    rows = []
    for run in results:
        session = run.report.conflicts(Semantics.SESSION).flags
        commit = run.report.conflicts(Semantics.COMMIT).flags
        rows.append({
            "label": run.label,
            "application": run.variant.application,
            "io_library": run.variant.io_library,
            "session": session,
            "commit": commit,
        })
    return rows


def table4_text(results: StudyResults) -> str:
    table = AsciiTable(
        ["Application", "I/O Library", "WAW S", "WAW D", "RAW S", "RAW D",
         "commit sem."],
        title="Table 4: conflicts with session semantics "
              "('x' = conflict present; last column: still present "
              "under commit semantics)")
    for row in table4_rows(results):
        s = row["session"]
        commit_marks = [k for k, v in row["commit"].items() if v]
        table.add_row(
            row["application"], row["io_library"],
            "x" if s["WAW-S"] else "", "x" if s["WAW-D"] else "",
            "x" if s["RAW-S"] else "", "x" if s["RAW-D"] else "",
            ", ".join(commit_marks) or ("-" if any(s.values()) else ""))
    return table.render()


# -- Table 5: application run configurations --------------------------------------


def table5_text() -> str:
    table = AsciiTable(
        ["Application", "Version", "I/O Library", "Configuration"],
        title="Table 5: applications and configurations")
    for spec in APPLICATIONS:
        libs = sorted({v.io_library for v in spec.variants})
        table.add_row(spec.name, spec.version, ", ".join(libs),
                      spec.description)
    return table.render()


def conflict_matrix_text(results: StudyResults,
                         semantics: Semantics) -> str:
    """Auxiliary view: run × conflict-kind grid for one model."""
    cells = {}
    labels = []
    for run in results:
        labels.append(run.label)
        for kind, flag in run.report.conflicts(semantics).flags.items():
            if flag:
                cells[(run.label, kind)] = "x"
    return render_matrix(
        labels, ["WAW-S", "WAW-D", "RAW-S", "RAW-D"], cells,
        title=f"Conflicts under {semantics.name.lower()} semantics")
