"""Builders for the paper's Figures 1–3 (as data series + text charts)."""

from __future__ import annotations

import csv
from collections import defaultdict
from dataclasses import dataclass
from pathlib import Path

from repro.core.metadata import LayerGroup
from repro.core.semantics import Semantics  # noqa: F401 (API symmetry)
from repro.study.runner import RunResult, StudyResults
from repro.tracer.events import Layer
from repro.util.asciiplot import ScatterPlot, legend
from repro.util.tables import AsciiTable, render_matrix

# -- Figure 1: fine-grained access-pattern mix ---------------------------------


@dataclass
class Figure1Row:
    label: str
    view: str          # "global" or "local"
    consecutive: float
    monotonic: float
    random: float


def figure1_rows(results: StudyResults) -> list[Figure1Row]:
    rows = []
    for run in results:
        for view, mix in (("global", run.report.global_mix),
                          ("local", run.report.local_mix)):
            total = max(1, mix.total)
            rows.append(Figure1Row(
                label=run.label, view=view,
                consecutive=mix.consecutive / total,
                monotonic=mix.monotonic / total,
                random=mix.random / total))
    return rows


def _bar(fraction: float, width: int = 24) -> str:
    n = round(fraction * width)
    return "#" * n + "." * (width - n)


def figure1_text(results: StudyResults) -> str:
    out = []
    for view, title in (("global", "Figure 1(a): global access pattern "
                                   "(PFS perspective)"),
                        ("local", "Figure 1(b): local access pattern "
                                  "(per-process perspective)")):
        table = AsciiTable(["configuration", "consecutive", "monotonic",
                            "random", "consecutive share"], title=title)
        for row in figure1_rows(results):
            if row.view != view:
                continue
            table.add_row(row.label, f"{row.consecutive:6.1%}",
                          f"{row.monotonic:6.1%}", f"{row.random:6.1%}",
                          _bar(row.consecutive))
        out.append(table.render())
    return "\n\n".join(out)


# -- Figure 2: FLASH detailed write patterns --------------------------------------


@dataclass
class Figure2Series:
    """Write accesses of one FLASH output file: Figure 2's dot clouds."""

    panel: str
    path: str
    # parallel arrays, one entry per write
    ranks: list[int]
    offsets: list[int]
    times: list[float]
    sizes: list[int]

    @property
    def writer_count(self) -> int:
        return len(set(self.ranks))

    @property
    def data_writer_count(self) -> int:
        """Writers of large (non-metadata) accesses."""
        if not self.sizes:
            return 0
        big = max(self.sizes)
        return len({r for r, s in zip(self.ranks, self.sizes)
                    if s * 8 >= big})

    @property
    def head_writer_count(self) -> int:
        """Writers touching the metadata region at the head of the file."""
        return len({r for r, o in zip(self.ranks, self.offsets)
                    if o < 4096})


def figure2_series(fbs_run: RunResult,
                   nofbs_run: RunResult) -> list[Figure2Series]:
    """The six panels of Figure 2 (checkpoint/plot × fbs/nofbs)."""
    panels = []
    for run, mode in ((fbs_run, "fbs"), (nofbs_run, "nofbs")):
        accesses = run.report.accesses
        for family, name in (("/flash/ckpt", "checkpoint"),
                             ("/flash/plot", "plot")):
            paths = sorted({a.path for a in accesses
                            if a.path.startswith(family)})
            if not paths:
                continue
            path = paths[0]  # first output file of the family
            writes = [a for a in accesses if a.path == path and a.is_write]
            panels.append(Figure2Series(
                panel=f"{name}-{mode}", path=path,
                ranks=[a.rank for a in writes],
                offsets=[a.offset for a in writes],
                times=[a.tstart for a in writes],
                sizes=[a.nbytes for a in writes]))
    return panels


def figure2_text(fbs_run: RunResult, nofbs_run: RunResult) -> str:
    table = AsciiTable(
        ["panel", "file", "writes", "total writers", "data writers",
         "head (metadata) writers"],
        title="Figure 2: FLASH write patterns (collective 'fbs' vs "
              "independent 'nofbs')")
    for s in figure2_series(fbs_run, nofbs_run):
        table.add_row(s.panel, s.path, len(s.ranks), s.writer_count,
                      s.data_writer_count, s.head_writer_count)
    return table.render()


def figure2_ascii(fbs_run: RunResult, nofbs_run: RunResult,
                  *, width: int = 72, height: int = 18) -> str:
    """Terminal rendering of the Figure 2 dot clouds (offset vs time,
    glyph per rank class: aggregator/data writer vs metadata writer)."""
    out = []
    for s in figure2_series(fbs_run, nofbs_run):
        biggest = max(s.sizes) if s.sizes else 1
        cats = [0 if n * 8 >= biggest else 1 for n in s.sizes]
        plot = ScatterPlot(width=width, height=height,
                           title=f"Figure 2 [{s.panel}] {s.path}",
                           xlabel="time (s)", ylabel="file offset")
        out.append(plot.render(s.times, s.offsets, cats))
        out.append(legend({0: "data write", 1: "metadata write"}))
        out.append("")
    return "\n".join(out)


def figure2_csv(fbs_run: RunResult, nofbs_run: RunResult,
                directory: str | Path) -> list[Path]:
    """Dump the dot clouds as CSV (offset vs time, colored by rank)."""
    outdir = Path(directory)
    outdir.mkdir(parents=True, exist_ok=True)
    written = []
    for s in figure2_series(fbs_run, nofbs_run):
        path = outdir / f"figure2_{s.panel}.csv"
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["time", "offset", "rank", "size"])
            for t, o, r, n in zip(s.times, s.offsets, s.ranks, s.sizes):
                writer.writerow([f"{t:.9f}", o, r, n])
        written.append(path)
    return written


# -- Figure 3: metadata operations by layer ----------------------------------------


_GROUP_MARK = {LayerGroup.MPI: "M", LayerGroup.HDF5: "H",
               LayerGroup.APPLICATION: "A"}


def figure3_matrix(results: StudyResults
                   ) -> dict[tuple[str, str], str]:
    """(op, run label) -> issuer marks ("M"/"H"/"A" combinations)."""
    cells: dict[tuple[str, str], str] = {}
    for run in results:
        usage = run.report.metadata
        for op, groups in usage.ops.items():
            marks = "".join(sorted(_GROUP_MARK[g] for g in groups))
            cells[(op, run.label)] = marks
    return cells


def figure3_text(results: StudyResults) -> str:
    cells = figure3_matrix(results)
    ops = sorted({op for op, _ in cells})
    labels = [run.label for run in results]
    title = ("Figure 3: metadata operations by configuration "
             "(M = issued by MPI-IO, H = by HDF5, A = by the application "
             "or another I/O library)")
    return render_matrix(ops, labels, cells, title=title)


def seek_usage_text(results: StudyResults) -> str:
    """Companion view: lseek/fseek usage per run (not in Figure 3's set
    but part of the offset-reconstruction story)."""
    table = AsciiTable(["configuration", "lseek", "fseek"],
                       title="Seek usage per configuration")
    for run in results:
        counts = run.trace.function_counts(Layer.POSIX)
        table.add_row(run.label, counts.get("lseek", 0),
                      counts.get("fseek", 0))
    return table.render()
