"""``python -m repro.study`` entry point."""

import sys

from repro.study.cli import main

sys.exit(main())
