"""Process-pool execution engine for the study's evaluation matrix.

The paper's campaign is an embarrassingly parallel matrix — every
(application, configuration, seed) cell traces and analyzes
independently — so this module fans cells out across worker processes
and merges the results back in a **deterministic order**.

Determinism is a hard contract, not an aspiration:

* cells are identified by their position in the submitted list and the
  merged results preserve that order exactly, regardless of which
  worker finished first;
* every cell derives its randomness from its own ``(seed, cell)``
  parameters — workers share no mutable state, so a cell computes the
  same bytes whether it runs inline, in a pool of 2, or in a pool
  of 32;
* worker payloads are plain JSON documents, the same representation the
  :mod:`repro.study.cache` stores, so a cached cell and a freshly
  computed cell are indistinguishable downstream.

``jobs=1`` (and single-cell matrices) bypass the pool entirely and run
inline — the serial path stays pure for debugging, and the dedicated
determinism tests compare its output byte-for-byte against the pooled
path.

Layered on the cache, :func:`run_matrix` gives every caller the same
incremental contract: probe the cache in the parent, fan out only the
misses, store what was computed.  ``study all``, ``study chaos``,
``study crossvalidate``, the benchmarks, and CI all go through this one
entry point.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.obs import registry as obs
from repro.study.cache import ResultCache, cache_key

#: payload-producing worker: picklable task in, JSON document out
CellWorker = Callable[[tuple], dict]


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None`` means one per CPU."""
    if jobs is None:
        jobs = os.cpu_count() or 1
    return max(1, int(jobs))


@dataclass(frozen=True)
class CellSpec:
    """One schedulable cell of the matrix.

    ``key_fields`` must fully determine the payload (they become the
    cache key, together with the cell kind and the code fingerprint);
    ``task`` is the picklable argument handed to the worker when the
    cache misses.
    """

    key_fields: dict[str, Any]
    task: tuple


@dataclass
class CellOutcome:
    """One cell's payload plus execution provenance."""

    index: int
    key: str
    payload: dict
    seconds: float = 0.0
    cached: bool = False


@dataclass
class MatrixRun:
    """All outcomes of one :func:`run_matrix` invocation, in order."""

    kind: str
    jobs: int
    outcomes: list[CellOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def payloads(self) -> list[dict]:
        return [o.payload for o in self.outcomes]

    @property
    def computed(self) -> int:
        return sum(1 for o in self.outcomes if not o.cached)

    @property
    def cached(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    def summary(self) -> str:
        return (f"{self.kind}: {len(self.outcomes)} cells "
                f"({self.cached} cached, {self.computed} computed) "
                f"in {self.wall_seconds:.2f}s with jobs={self.jobs}")

    def timing_table(self) -> str:
        lines = [f"{'cell':<28} {'seconds':>8}  source"]
        for o, spec_label in zip(
                self.outcomes,
                (o.payload.get("label", f"cell {o.index}")
                 for o in self.outcomes)):
            lines.append(f"{str(spec_label):<28} {o.seconds:>8.3f}  "
                         f"{'cache' if o.cached else 'computed'}")
        return "\n".join(lines)


def _run_timed(worker: CellWorker, task: tuple) -> tuple[dict, float]:
    t0 = time.perf_counter()
    payload = worker(task)
    return payload, time.perf_counter() - t0


def _pool_entry(args: tuple[CellWorker, tuple, bool]
                ) -> tuple[dict, float, dict | None]:
    """Run one cell; optionally under a worker-local metrics registry.

    ``ship_metrics`` is set when the parent has an active registry and
    this entry runs in a pool worker: the worker collects into a fresh
    registry and ships the snapshot home for the parent to merge, so
    sim/pfs instruments survive the process boundary.  Inline runs pass
    ``False`` — their instruments already write the parent registry.
    """
    worker, task, ship_metrics = args
    if not ship_metrics:
        payload, seconds = _run_timed(worker, task)
        return payload, seconds, None
    with obs.collecting(trace=True) as reg:
        with reg.span("study.cell"):
            payload, seconds = _run_timed(worker, task)
        shipped = {"metrics": reg.snapshot(),
                   "trace": reg.tracer.records()
                   if reg.tracer is not None else []}
    return payload, seconds, shipped


def run_matrix(kind: str, cells: Sequence[CellSpec], worker: CellWorker,
               *, jobs: int | None = None,
               cache: ResultCache | None = None) -> MatrixRun:
    """Evaluate every cell, serving cache hits and pooling the misses.

    Results come back in submission order; with the same cells and
    seeds, the payload list is identical for every ``jobs`` value and
    cache state.
    """
    t0 = time.perf_counter()
    cache = cache if cache is not None else ResultCache.disabled()
    jobs = resolve_jobs(jobs)
    run = MatrixRun(kind=kind, jobs=jobs)
    reg = obs.current()

    hits0, misses0 = cache.stats.hits, cache.stats.misses
    pending: list[int] = []
    outcomes: list[CellOutcome | None] = [None] * len(cells)
    for i, spec in enumerate(cells):
        probe_t0 = time.perf_counter()
        key = cache_key(kind, **spec.key_fields)
        payload = cache.get(key)
        if payload is not None:
            outcomes[i] = CellOutcome(
                index=i, key=key, payload=payload,
                seconds=time.perf_counter() - probe_t0, cached=True)
        else:
            outcomes[i] = CellOutcome(index=i, key=key, payload={})
            pending.append(i)

    if pending:
        pooled = jobs > 1 and len(pending) > 1
        # pool workers collect into their own registry and ship the
        # snapshot home; inline cells hit the parent registry directly
        ship = pooled and obs.enabled()
        tasks = [(worker, cells[i].task, ship) for i in pending]
        cell_timer = reg.timer("study.cell_seconds")
        if pooled:
            with ProcessPoolExecutor(max_workers=min(jobs,
                                                     len(pending))) as ex:
                computed = list(ex.map(_pool_entry, tasks))
        else:
            computed = [_pool_entry(t) for t in tasks]
        for i, (payload, seconds, shipped) in zip(pending, computed):
            out = outcomes[i]
            assert out is not None
            out.payload = payload
            out.seconds = seconds
            cache.put(out.key, payload)
            cell_timer.observe(seconds)
            if shipped is not None:
                reg.merge(shipped["metrics"])
                if getattr(reg, "tracer", None) is not None:
                    reg.tracer.merge(shipped["trace"])

    run.outcomes = [o for o in outcomes if o is not None]
    run.wall_seconds = time.perf_counter() - t0
    # the same numbers _print_matrix_stats reports on stderr, kept as
    # durable metrics instead of ad-hoc one-shot strings
    reg.counter(f"study.{kind}.cells").inc(len(run.outcomes))
    reg.counter("study.cells_cached").inc(run.cached)
    reg.counter("study.cells_computed").inc(run.computed)
    reg.counter("study.cache.hits").inc(cache.stats.hits - hits0)
    reg.counter("study.cache.misses").inc(cache.stats.misses - misses0)
    reg.timer("study.matrix_seconds").observe(run.wall_seconds)
    reg.event("study.matrix", kind=kind, jobs=jobs,
              cells=len(run.outcomes), cached=run.cached,
              computed=run.computed,
              seconds=round(run.wall_seconds, 6))
    return run


# -- matrix workers --------------------------------------------------------------
#
# Top-level functions (picklable by reference) taking one primitive
# tuple each.  RunVariant instances pickle cleanly: their program and
# setup callables are module-level functions resolved by import path.


def study_cell_task(task: tuple) -> dict:
    """(variant, nranks, seed[, partitions]) -> study-cell summary.

    With ``partitions > 1`` the trace comes from the partitioned
    multi-process engine; the summary is the same bytes either way
    because the merged trace is byte-identical to a serial run.

    With metrics enabled the already-generated trace is additionally
    replayed through the PFS timing model so ``study all --metrics``
    observes the pfs layer too.  The replay populates counters only —
    the returned payload is the same bytes either way.
    """
    from repro.study.runner import cell_summary

    variant, nranks, seed, *rest = task
    partitions = int(rest[0]) if rest else 1
    trace = None
    if partitions > 1:
        from repro.partition.runner import run_partitioned

        trace = run_partitioned(variant, nranks=nranks, seed=seed,
                                partitions=partitions)
    if not obs.enabled():
        return cell_summary(variant, trace, nranks=nranks, seed=seed)
    reg = obs.current()
    if trace is None:
        trace = variant.run(nranks=nranks, seed=seed)
    payload = cell_summary(variant, trace, nranks=nranks, seed=seed)
    from repro.pfs.config import PFSConfig
    from repro.pfs.replay import replay_trace

    with reg.span("study.pfs_probe", label=variant.label):
        replay_trace(trace, PFSConfig())
    return payload


def trace_task(task: tuple) -> dict:
    """(variant, nranks, seed) -> {"trace": Trace} (pickled wholesale).

    Used by :func:`repro.study.runner.run_study` to parallelize trace
    generation for the table/figure pipeline, where downstream code
    needs the full trace object rather than a JSON summary.
    """
    variant, nranks, seed = task
    return {"trace": variant.run(nranks=nranks, seed=seed)}


def chaos_variant_task(task: tuple) -> dict:
    """(variant, nranks, seed, plan names, semantics names, stripe)
    -> {"cells": [ChaosCell.to_dict(), ...]} for one configuration."""
    from repro.core.semantics import Semantics
    from repro.pfs.chaos import default_fault_plans, variant_cells

    variant, nranks, seed, plan_names, sem_names, stripe = task
    wanted = set(plan_names)
    plans = [p for p in default_fault_plans(seed) if p.name in wanted]
    semantics = tuple(Semantics[name.upper()] for name in sem_names)
    cells = variant_cells(variant, nranks=nranks, seed=seed,
                          plans=plans, semantics=semantics,
                          stripe_size=stripe)
    return {"label": variant.label,
            "cells": [c.to_dict() for c in cells]}


def crossval_task(task: tuple) -> dict:
    """(variant, nranks, seed) -> lint-vs-replay cross-validation cell."""
    from repro.lint.crossval import crossvalidate_variant

    variant, nranks, seed = task
    return crossvalidate_variant(variant, nranks=nranks, seed=seed)


def staticcheck_task(task: tuple) -> dict:
    """(variant, nranks, seed) -> static-vs-dynamic soundness cell."""
    from repro.staticcheck.soundness import staticcheck_variant

    variant, nranks, seed = task
    return staticcheck_variant(variant, nranks=nranks, seed=seed)


def partition_verify_task(task: tuple) -> dict:
    """(variant, nranks, seed, partitions) -> byte-identity verdict.

    Traces the configuration twice — single-process and partitioned —
    serializes both to the canonical columnar ``.rtrc`` form, and
    compares the bytes.  This is the contract ``study partition
    --verify`` and the CI smoke job enforce: partitioning is an
    execution strategy, never an observable one.
    """
    import hashlib
    import tempfile
    from pathlib import Path

    from repro.partition.runner import run_partitioned
    from repro.tracer.columnar import ColumnarTrace

    variant, nranks, seed, partitions = task

    def rtrc(trace, path: Path) -> bytes:
        ColumnarTrace.from_trace(trace).save(path)
        return path.read_bytes()

    with tempfile.TemporaryDirectory(prefix="repro-pverify-") as tmp:
        root = Path(tmp)
        serial = rtrc(variant.run(nranks=nranks, seed=seed),
                      root / "serial.rtrc")
        part = rtrc(run_partitioned(variant, nranks=nranks, seed=seed,
                                    partitions=partitions),
                    root / "partitioned.rtrc")
    return {"label": variant.label,
            "nranks": nranks,
            "partitions": partitions,
            "identical": serial == part,
            "rtrc_bytes": len(serial),
            "rtrc_sha256": hashlib.sha256(serial).hexdigest()}


def workflow_task(task: tuple) -> dict:
    """(producer ranks, reader ranks, seed) -> workflow summary cell."""
    from repro.study.workflows import canonical_workflow, workflow_summary

    producer_ranks, reader_ranks, seed = task
    result = canonical_workflow(producer_ranks=producer_ranks,
                                reader_ranks=reader_ranks, seed=seed)
    return workflow_summary(result)


__all__ = [
    "CellOutcome",
    "CellSpec",
    "MatrixRun",
    "chaos_variant_task",
    "crossval_task",
    "partition_verify_task",
    "resolve_jobs",
    "run_matrix",
    "staticcheck_task",
    "study_cell_task",
    "trace_task",
    "workflow_task",
]
