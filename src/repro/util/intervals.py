"""Half-open byte-range interval algebra.

All file extents in this library are half-open ``[start, stop)`` byte
ranges.  (The paper's Algorithm 1 uses inclusive ``[os, oe]`` offsets; the
conversion is ``stop = oe + 1``.  Half-open ranges compose without the
pervasive ±1 bookkeeping, so everything internal uses them and the
paper-facing record layer converts at the edge.)

:class:`IntervalSet` is the workhorse: a normalized (sorted, disjoint,
coalesced) set of intervals with union/intersection/subtraction, used by the
VFS for dirty-extent tracking, by the PFS consistency engines for visibility
maps, and by the pattern analyzer for coverage computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open byte range ``[start, stop)``.

    Zero-length intervals (``start == stop``) are permitted as values but
    are dropped when normalized into an :class:`IntervalSet`.
    """

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.stop < self.start:
            raise ValueError(f"interval stop {self.stop} < start {self.start}")

    def __len__(self) -> int:
        return self.stop - self.start

    @property
    def empty(self) -> bool:
        return self.stop <= self.start

    def overlaps(self, other: "Interval") -> bool:
        """True when the two half-open ranges share at least one byte."""
        if self.empty or other.empty:
            return False
        return self.start < other.stop and other.start < self.stop

    def touches(self, other: "Interval") -> bool:
        """True when the ranges overlap or are exactly adjacent."""
        return self.start <= other.stop and other.start <= self.stop

    def intersection(self, other: "Interval") -> "Interval":
        """The shared byte range; empty interval at ``max(starts)`` if none."""
        lo = max(self.start, other.start)
        hi = min(self.stop, other.stop)
        if hi < lo:
            return Interval(lo, lo)
        return Interval(lo, hi)

    def contains(self, offset: int) -> bool:
        return self.start <= offset < self.stop

    def shift(self, delta: int) -> "Interval":
        return Interval(self.start + delta, self.stop + delta)


def merge_intervals(intervals: Iterable[Interval]) -> list[Interval]:
    """Coalesce intervals into a sorted list of disjoint non-empty ranges.

    Adjacent ranges (``a.stop == b.start``) are merged.  Runs in
    ``O(n log n)``.
    """
    items = sorted(i for i in intervals if not i.empty)
    out: list[Interval] = []
    for iv in items:
        if out and iv.start <= out[-1].stop:
            if iv.stop > out[-1].stop:
                out[-1] = Interval(out[-1].start, iv.stop)
        else:
            out.append(iv)
    return out


class IntervalSet:
    """A normalized set of disjoint, sorted, non-empty half-open intervals.

    Internally stored as two parallel numpy int64 arrays (``starts``,
    ``stops``) so membership and intersection queries vectorize; the HPC
    guides' "use contiguous arrays, avoid Python loops" idiom.
    """

    __slots__ = ("_starts", "_stops")

    def __init__(self, intervals: Iterable[Interval] = ()):  # noqa: D107
        merged = merge_intervals(intervals)
        self._starts = np.fromiter((i.start for i in merged), dtype=np.int64,
                                   count=len(merged))
        self._stops = np.fromiter((i.stop for i in merged), dtype=np.int64,
                                  count=len(merged))

    # -- construction helpers ------------------------------------------------

    @classmethod
    def _from_arrays(cls, starts: np.ndarray, stops: np.ndarray) -> "IntervalSet":
        out = cls()
        out._starts = np.asarray(starts, dtype=np.int64)
        out._stops = np.asarray(stops, dtype=np.int64)
        return out

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[int, int]]) -> "IntervalSet":
        return cls(Interval(a, b) for a, b in pairs)

    # -- basic protocol --------------------------------------------------------

    def __iter__(self) -> Iterator[Interval]:
        for a, b in zip(self._starts.tolist(), self._stops.tolist()):
            yield Interval(a, b)

    def __len__(self) -> int:
        return int(self._starts.shape[0])

    def __bool__(self) -> bool:
        return len(self) > 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return (self._starts.shape == other._starts.shape
                and bool(np.all(self._starts == other._starts))
                and bool(np.all(self._stops == other._stops)))

    def __hash__(self) -> int:
        return hash((self._starts.tobytes(), self._stops.tobytes()))

    def __repr__(self) -> str:
        body = ", ".join(f"[{a},{b})" for a, b in
                         zip(self._starts.tolist(), self._stops.tolist()))
        return f"IntervalSet({body})"

    # -- queries ---------------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        """Total number of bytes covered."""
        return int(np.sum(self._stops - self._starts)) if len(self) else 0

    def contains(self, offset: int) -> bool:
        """True when ``offset`` lies inside some interval."""
        if not len(self):
            return False
        idx = int(np.searchsorted(self._starts, offset, side="right")) - 1
        return idx >= 0 and offset < self._stops[idx]

    def covers(self, iv: Interval) -> bool:
        """True when a single member interval contains all of ``iv``."""
        if iv.empty:
            return True
        if not len(self):
            return False
        idx = int(np.searchsorted(self._starts, iv.start, side="right")) - 1
        return idx >= 0 and iv.stop <= self._stops[idx]

    def overlapping(self, iv: Interval) -> list[Interval]:
        """Member intervals clipped to their intersection with ``iv``."""
        if iv.empty or not len(self):
            return []
        lo = int(np.searchsorted(self._stops, iv.start, side="right"))
        hi = int(np.searchsorted(self._starts, iv.stop, side="left"))
        out = []
        for a, b in zip(self._starts[lo:hi].tolist(), self._stops[lo:hi].tolist()):
            clipped = Interval(max(a, iv.start), min(b, iv.stop))
            if not clipped.empty:
                out.append(clipped)
        return out

    # -- set algebra -------------------------------------------------------------

    def union(self, other: "IntervalSet | Interval") -> "IntervalSet":
        other_ivs = [other] if isinstance(other, Interval) else list(other)
        return IntervalSet(list(self) + other_ivs)

    def add(self, iv: Interval) -> "IntervalSet":
        return self.union(iv)

    def intersection(self, other: "IntervalSet | Interval") -> "IntervalSet":
        if isinstance(other, Interval):
            return IntervalSet(self.overlapping(other))
        out: list[Interval] = []
        for iv in other:
            out.extend(self.overlapping(iv))
        return IntervalSet(out)

    def subtract(self, other: "IntervalSet | Interval") -> "IntervalSet":
        """Bytes in ``self`` but not in ``other``."""
        if isinstance(other, Interval):
            other = IntervalSet([other])
        out: list[Interval] = []
        cut_starts = other._starts
        cut_stops = other._stops
        for iv in self:
            pieces = [iv]
            lo = int(np.searchsorted(cut_stops, iv.start, side="right"))
            hi = int(np.searchsorted(cut_starts, iv.stop, side="left"))
            for a, b in zip(cut_starts[lo:hi].tolist(), cut_stops[lo:hi].tolist()):
                nxt: list[Interval] = []
                for p in pieces:
                    if b <= p.start or a >= p.stop:
                        nxt.append(p)
                        continue
                    if a > p.start:
                        nxt.append(Interval(p.start, a))
                    if b < p.stop:
                        nxt.append(Interval(b, p.stop))
                pieces = nxt
            out.extend(pieces)
        return IntervalSet(out)

    def gaps(self, within: Interval) -> "IntervalSet":
        """Bytes of ``within`` not covered by this set."""
        return IntervalSet([within]).subtract(self)
