"""Terminal scatter plots, for rendering the paper's Figure 2 panels.

A deliberately small plotting surface: bin points into a character
grid, mark each cell with a category glyph (later categories win ties),
draw axes with min/max labels.  Good enough to *see* the six-aggregator
stripes and the metadata band at the head of the file without leaving
the terminal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

#: glyph per category index (cycled)
GLYPHS = "ox+*#@%&"


@dataclass
class ScatterPlot:
    """A character-grid scatter plot."""

    width: int = 72
    height: int = 20
    title: str = ""
    xlabel: str = ""
    ylabel: str = ""

    def render(self, xs: Sequence[float], ys: Sequence[float],
               categories: Sequence[int] | None = None) -> str:
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have equal length")
        if categories is not None and len(categories) != len(xs):
            raise ValueError("categories must match point count")
        if not xs:
            return (self.title + "\n(no points)\n") if self.title \
                else "(no points)\n"
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys), max(ys)
        x_span = (x_hi - x_lo) or 1.0
        y_span = (y_hi - y_lo) or 1.0
        grid = [[" "] * self.width for _ in range(self.height)]
        for i, (x, y) in enumerate(zip(xs, ys)):
            col = int((x - x_lo) / x_span * (self.width - 1))
            row = int((y - y_lo) / y_span * (self.height - 1))
            cat = categories[i] if categories is not None else 0
            # y grows upward: row 0 is the top of the grid
            grid[self.height - 1 - row][col] = \
                GLYPHS[cat % len(GLYPHS)]
        lines = []
        if self.title:
            lines.append(self.title)
        for r, row_chars in enumerate(grid):
            prefix = ""
            if r == 0:
                prefix = f"{y_hi:>10.3g} "
            elif r == self.height - 1:
                prefix = f"{y_lo:>10.3g} "
            else:
                prefix = " " * 11
            lines.append(prefix + "|" + "".join(row_chars))
        lines.append(" " * 11 + "+" + "-" * self.width)
        lines.append(" " * 12 + f"{x_lo:<.3g}"
                     + f"{x_hi:>.6g}".rjust(self.width - len(f"{x_lo:<.3g}")))
        if self.xlabel or self.ylabel:
            lines.append(" " * 12 + f"x: {self.xlabel}   y: {self.ylabel}")
        return "\n".join(lines) + "\n"


def barchart(items: Sequence[tuple[str, float]], *, width: int = 48,
             title: str = "") -> str:
    """Horizontal bar chart: one ``label |#### value`` line per item.

    Bars scale to the largest value; zero/negative values render as an
    empty bar.  Used by the observability dashboard to show the busiest
    counters without leaving the terminal.
    """
    lines = [title] if title else []
    if not items:
        return (title + "\n(no bars)\n") if title else "(no bars)\n"
    label_w = max(len(label) for label, _ in items)
    peak = max(value for _, value in items)
    scale = (width / peak) if peak > 0 else 0.0
    for label, value in items:
        bar = "#" * max(int(round(value * scale)), 1 if value > 0 else 0)
        shown = f"{value:g}" if value != int(value) else f"{int(value):,}"
        lines.append(f"{label:<{label_w}} |{bar:<{width}} {shown}")
    return "\n".join(lines) + "\n"


def legend(categories: dict[int, str]) -> str:
    """One-line glyph legend: ``o=rank0 x=rank1 ...``."""
    return "  ".join(f"{GLYPHS[c % len(GLYPHS)]}={name}"
                     for c, name in sorted(categories.items()))
