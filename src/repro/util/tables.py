"""Plain-text table rendering for reports, benches, and the study CLI.

The benchmark harness regenerates the paper's tables as text; this module
keeps that rendering in one place so every table/figure bench prints with a
consistent look.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


class AsciiTable:
    """Accumulates rows and renders a boxed, column-aligned table."""

    def __init__(self, headers: Sequence[str], title: str | None = None):
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}")
        self.rows.append([str(c) for c in cells])

    def add_rows(self, rows: Iterable[Sequence[object]]) -> None:
        for row in rows:
            self.add_row(*row)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"

        def fmt(cells: Sequence[str]) -> str:
            return "| " + " | ".join(
                c.ljust(w) for c, w in zip(cells, widths)) + " |"

        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(sep)
        lines.append(fmt(self.headers))
        lines.append(sep)
        lines.extend(fmt(row) for row in self.rows)
        lines.append(sep)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def render_matrix(
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    cells: Mapping[tuple[str, str], str],
    *,
    title: str | None = None,
    empty: str = "",
) -> str:
    """Render a sparse ``(row, col) -> mark`` mapping as a grid table.

    Used for Figure 3 (metadata op × application) and Table 4
    (conflict-kind × application) style outputs.
    """
    table = AsciiTable(["", *col_labels], title=title)
    for r in row_labels:
        table.add_row(r, *(cells.get((r, c), empty) for c in col_labels))
    return table.render()
