"""Deterministic random-number helpers.

Everything random in the library flows through :func:`make_rng` /
:func:`spawn_rngs` so that a single integer seed reproduces an entire study
run, including per-rank streams that are independent of rank count (a rank's
stream depends only on ``(seed, rank)``, never on how many other ranks
exist).
"""

from __future__ import annotations

import numpy as np

_DEFAULT_SEED = 0x5EED


def make_rng(seed: int | None = None, *streams: int) -> np.random.Generator:
    """Build a generator from a root seed and a tuple of stream selectors.

    ``make_rng(seed, rank)`` yields a per-rank stream; adding more selectors
    (e.g. ``make_rng(seed, rank, phase)``) nests further without collisions,
    via ``numpy`` ``SeedSequence`` spawn keys.
    """
    root = _DEFAULT_SEED if seed is None else int(seed)
    ss = np.random.SeedSequence(root, spawn_key=tuple(int(s) for s in streams))
    return np.random.default_rng(ss)


def spawn_rngs(seed: int | None, n: int) -> list[np.random.Generator]:
    """``n`` independent per-index generators from one root seed."""
    return [make_rng(seed, i) for i in range(n)]
