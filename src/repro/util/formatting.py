"""Small humanize helpers used across reports and benchmarks."""

from __future__ import annotations

_BYTE_UNITS = ["B", "KiB", "MiB", "GiB", "TiB"]


def human_bytes(n: float) -> str:
    """``1536 -> '1.5 KiB'``; exact integers below 1 KiB stay unitless bytes."""
    size = float(n)
    for unit in _BYTE_UNITS:
        if abs(size) < 1024.0 or unit == _BYTE_UNITS[-1]:
            if unit == "B":
                return f"{int(size)} B"
            return f"{size:.1f} {unit}"
        size /= 1024.0
    raise AssertionError("unreachable")


def human_time(seconds: float) -> str:
    """Render a duration with an SI-style unit chosen by magnitude."""
    s = float(seconds)
    if s == 0:
        return "0 s"
    if abs(s) < 1e-3:
        return f"{s * 1e6:.1f} us"
    if abs(s) < 1.0:
        return f"{s * 1e3:.2f} ms"
    if abs(s) < 120.0:
        return f"{s:.3f} s"
    return f"{s / 60.0:.1f} min"


def percentage(part: float, whole: float) -> str:
    """``percentage(1, 3) -> '33.3%'``; safe on a zero denominator."""
    if whole == 0:
        return "0.0%"
    return f"{100.0 * part / whole:.1f}%"
