"""Shared utility substrate: interval algebra, RNG, tables, formatting."""

from repro.util.intervals import Interval, IntervalSet, merge_intervals
from repro.util.rng import make_rng, spawn_rngs
from repro.util.tables import AsciiTable, render_matrix
from repro.util.formatting import human_bytes, human_time, percentage

__all__ = [
    "Interval",
    "IntervalSet",
    "merge_intervals",
    "make_rng",
    "spawn_rngs",
    "AsciiTable",
    "render_matrix",
    "human_bytes",
    "human_time",
    "percentage",
]
