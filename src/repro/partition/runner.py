"""Top-level entry points for partitioned runs.

:func:`run_partitioned_application` is the partitioned twin of
:func:`repro.apps.base.run_application`: same inputs, same
:class:`~repro.tracer.trace.Trace` out — byte-identical, split across
``partitions`` forked worker subprocesses coordinated in epochs.
"""

from __future__ import annotations

import multiprocessing
import shutil
import socket
import tempfile
from pathlib import Path
from typing import Any, Callable

from repro.apps.base import AppConfig, run_application, trace_meta
from repro.apps.registry import RunVariant
from repro.errors import SimulationError
from repro.obs import registry as obs
from repro.partition.channel import Channel
from repro.partition.coordinator import Coordinator
from repro.partition.merge import merge_shards
from repro.partition.plan import partition_plan
from repro.partition.worker import worker_main
from repro.posix.vfs import VirtualFileSystem
from repro.sim.engine import SimConfig
from repro.tracer.trace import Trace

_JOIN_TIMEOUT = 30.0


def run_partitioned_application(
        cfg: AppConfig, program: Callable, *,
        setup: Callable[[VirtualFileSystem, AppConfig], None] | None = None,
        partitions: int = 2) -> Trace:
    """Run ``program`` split across ``partitions`` worker subprocesses.

    ``partitions=1`` short-circuits to the plain single-process path —
    the partitioned machinery only engages when there is something to
    split, and the equality of both paths is what the byte-identity
    tests pin down.
    """
    if partitions <= 1:
        return run_application(cfg, program, setup=setup)
    plan = partition_plan(cfg.nranks, partitions)
    try:
        mp = multiprocessing.get_context("fork")
    except ValueError as exc:
        raise SimulationError(
            "partitioned runs need the fork start method (programs and "
            "setup hooks are inherited, not pickled)") from exc

    reg = obs.current()
    ship_metrics = obs.enabled()
    tmpdir = Path(tempfile.mkdtemp(prefix="repro-partition-"))
    channels: list[Channel] = []
    procs: list[Any] = []
    shard_paths: list[Path] = []
    try:
        with reg.span("partition.run", partitions=plan.npartitions,
                      nranks=cfg.nranks):
            for i in range(plan.npartitions):
                parent_sock, child_sock = socket.socketpair()
                shard = tmpdir / f"shard-{i:04d}.rtrc"
                shard_paths.append(shard)
                proc = mp.Process(
                    target=worker_main,
                    args=(child_sock, plan, i, cfg, program, setup,
                          str(shard), ship_metrics),
                    name=f"repro-partition-{i}")
                proc.start()
                child_sock.close()
                channels.append(Channel(parent_sock))
                procs.append(proc)

            sim_cfg = SimConfig(nranks=cfg.nranks, seed=cfg.seed,
                                clock_skew_us=cfg.clock_skew_us)
            dones = Coordinator(plan, sim_cfg, channels).run()

            for proc in procs:
                proc.join(timeout=_JOIN_TIMEOUT)
            for done in dones:
                shipped = done.get("obs")
                if shipped is not None:
                    reg.merge(shipped["metrics"])
                    if getattr(reg, "tracer", None) is not None:
                        reg.tracer.merge(shipped["trace"])
            reg.counter("partition.workers").inc(plan.npartitions)
            trace = merge_shards(shard_paths, meta=trace_meta(cfg))
        return trace
    finally:
        for chan in channels:
            chan.close()
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        shutil.rmtree(tmpdir, ignore_errors=True)


def run_partitioned(variant: RunVariant, *, nranks: int = 8,
                    seed: int = 7, partitions: int = 2,
                    clock_skew_us: float = 10.0,
                    **overrides: Any) -> Trace:
    """Partitioned twin of :meth:`~repro.apps.registry.RunVariant.run`."""
    cfg = variant.config(nranks, seed, clock_skew_us, **overrides)
    return run_partitioned_application(cfg, variant.program,
                                       setup=variant.setup,
                                       partitions=partitions)
