"""Type-faithful JSON encoding for cross-process simulation state.

Plain JSON collapses exactly the distinctions the simulator's timing and
semantics depend on: tuple vs list (mailbox tags are tuples), bytes,
numpy arrays and scalars (reductions), int-keyed dicts, and int vs float
(``repro.mpi.comm._sizeof`` charges by type).  This codec tags each
container so a payload decoded in another process is indistinguishable —
for sizing, hashing, and arithmetic — from the ``copy.deepcopy`` the
single-process mailbox would have produced.

Scalars (None/bool/int/float/str) pass through untagged; every container
becomes a ``{"t": ..., "v": ...}`` dict, so user dicts never collide with
the tagging scheme (they are themselves encoded as pair lists).
"""

from __future__ import annotations

import base64
from typing import Any

import numpy as np

from repro.errors import SimulationError


def encode(obj: Any) -> Any:
    """Encode ``obj`` into a JSON-safe structure (see module docstring)."""
    if obj is None or isinstance(obj, (bool, str)):
        return obj
    if isinstance(obj, int):
        return obj
    if isinstance(obj, float):
        if obj != obj or obj in (float("inf"), float("-inf")):
            raise SimulationError(
                f"cannot ship non-finite float {obj!r} between partitions")
        return obj
    if isinstance(obj, tuple):
        return {"t": "tuple", "v": [encode(x) for x in obj]}
    if isinstance(obj, list):
        return {"t": "list", "v": [encode(x) for x in obj]}
    if isinstance(obj, dict):
        return {"t": "dict",
                "v": [[encode(k), encode(v)] for k, v in obj.items()]}
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return {"t": "bytes",
                "v": base64.b64encode(bytes(obj)).decode("ascii")}
    if isinstance(obj, np.ndarray):
        c = np.ascontiguousarray(obj)
        return {"t": "ndarray", "dtype": c.dtype.str,
                "shape": list(c.shape),
                "v": base64.b64encode(c.tobytes()).decode("ascii")}
    if isinstance(obj, np.generic):
        return {"t": "npscalar", "dtype": obj.dtype.str,
                "v": base64.b64encode(obj.tobytes()).decode("ascii")}
    raise SimulationError(
        f"cannot ship payload of type {type(obj).__name__} between "
        f"partitions")


def decode(doc: Any) -> Any:
    """Inverse of :func:`encode`."""
    if doc is None or isinstance(doc, (bool, int, float, str)):
        return doc
    if isinstance(doc, dict):
        tag = doc.get("t")
        if tag == "tuple":
            return tuple(decode(x) for x in doc["v"])
        if tag == "list":
            return [decode(x) for x in doc["v"]]
        if tag == "dict":
            return {decode(k): decode(v) for k, v in doc["v"]}
        if tag == "bytes":
            return base64.b64decode(doc["v"])
        if tag == "ndarray":
            raw = base64.b64decode(doc["v"])
            arr = np.frombuffer(raw, dtype=np.dtype(doc["dtype"]))
            return arr.reshape(doc["shape"]).copy()
        if tag == "npscalar":
            raw = base64.b64decode(doc["v"])
            return np.frombuffer(raw, dtype=np.dtype(doc["dtype"]))[0]
        raise SimulationError(f"unknown codec tag {tag!r}")
    raise SimulationError(
        f"cannot decode wire value of type {type(doc).__name__}")
