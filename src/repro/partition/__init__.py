"""Partitioned multi-process simulation.

Splits the rank set of one simulated application run across worker
subprocesses — each running a sub-:class:`~repro.sim.engine.SimEngine`
over a contiguous rank block — driven by a coordinator that advances the
run in epochs delimited by collective/barrier boundaries.  Cross-partition
MPI edges and file-system changes are exchanged at epoch boundaries over
the same length-prefixed canonical-JSON framing as :mod:`repro.serve`;
per-partition traces are emitted as columnar ``.rtrc`` shards and merged
deterministically, so merged traces, happens-before edges, and conflict
reports are byte-identical to a single-process run.

See ``docs/partitioned.md`` for the epoch protocol and failure behavior.
"""

from repro.partition.plan import PartitionPlan, partition_plan
from repro.partition.runner import (
    run_partitioned,
    run_partitioned_application,
)

__all__ = [
    "PartitionPlan",
    "partition_plan",
    "run_partitioned",
    "run_partitioned_application",
]
