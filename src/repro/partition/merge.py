"""Deterministic merge of per-partition trace shards.

Each worker saves its rank block's trace as a columnar ``.rtrc`` shard
(already renumbered into shard-local positional ids by
:meth:`~repro.tracer.recorder.Recorder.build_trace`).  The merge is a
pure sort: concatenate, order by the same ``(tstart, rank, id)`` key the
recorder uses, and renumber into global positions.

Byte-identity with the single-process trace follows from three facts:

* every rank lives in exactly one shard, so within-``(tstart, rank)``
  ties are ordered by shard-local id, which is program order — the same
  tiebreak the single recorder applies;
* timestamps, payload sizes and match keys are simulation outputs, which
  the epoch protocol preserves exactly (virtual-time floats round-trip
  through canonical JSON by ``repr``);
* positional renumbering makes record and event ids content-determined,
  so the merged ids equal the single-process ids.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable

from repro.errors import TraceError
from repro.tracer.columnar import ColumnarTrace
from repro.tracer.trace import Trace, concat_traces


def merge_traces(shards: Iterable[Trace],
                 meta: dict[str, Any] | None = None) -> Trace:
    """Merge per-partition traces into one world trace."""
    shards = list(shards)
    merged = concat_traces(shards)
    for i, r in enumerate(merged.records):
        r.rid = i
    for i, e in enumerate(merged.mpi_events):
        e.eid = i
    if meta is not None:
        merged.meta = dict(meta)
    return merged


def merge_shards(paths: Iterable[str | Path],
                 meta: dict[str, Any] | None = None) -> Trace:
    """Load ``.rtrc`` shards (in partition order) and merge them."""
    paths = list(paths)
    if not paths:
        raise TraceError("cannot merge zero trace shards")
    shards = [ColumnarTrace.load(p, mmap=False).to_trace() for p in paths]
    return merge_traces(shards, meta=meta)
