"""Worker side of the partitioned simulation.

Each worker subprocess runs a sub-:class:`~repro.sim.engine.SimEngine`
over its contiguous rank block.  Cross-partition state flows through a
:class:`PartitionedWorld` — an :class:`~repro.mpi.comm.MPIWorld` whose
hooks divert remote point-to-point sends, report collective arrivals,
and resolve ANY_SOURCE receives via coordinator grants — plus a
file-system change journal replicated between partitions.

The epoch pump is a virtual-time callback scheduled at ``t = inf``: the
engine fires it exactly when no local rank is runnable (local
quiescence), every finite-time event having already fired.  The pump
performs one blocking round-trip with the coordinator, applies the
response (journal entries, message deliveries, collective completions,
ANY_SOURCE grants — in that order), and re-arms itself unless the
coordinator declared the whole world finished.
"""

from __future__ import annotations

import itertools
import math
from typing import Any

from repro import errors as errors_mod
from repro.errors import PosixError, SimulationError
from repro.mpi.comm import MPIWorld, _CollectiveSlot, _Message
from repro.partition import codec
from repro.partition.channel import Channel
from repro.partition.plan import PartitionPlan
from repro.posix import flags as F
from repro.posix.vfs import VirtualFileSystem
from repro.sim.engine import RANK_DONE, SimEngine
from repro.tracer.recorder import Recorder


def rebuild_error(doc: dict[str, Any]) -> BaseException:
    """Reconstruct a shipped exception, preserving its repro type."""
    name = doc.get("name", "SimulationError")
    message = doc.get("message", "partitioned run failed")
    cls = getattr(errors_mod, name, None)
    if isinstance(cls, type) and issubclass(cls, BaseException):
        try:
            if name == "DeadlockError":
                states = {int(k): v for k, v in doc.get("states", [])}
                return cls(message, states)
            return cls(message)
        except TypeError:
            pass
    return SimulationError(f"{name}: {message}")


def describe_error(exc: BaseException) -> dict[str, Any]:
    doc: dict[str, Any] = {"type": "error",
                           "name": type(exc).__name__,
                           "message": str(exc)}
    states = getattr(exc, "states", None)
    if isinstance(states, dict):
        doc["states"] = sorted(states.items())
    return doc


def apply_journal_entry(fs: VirtualFileSystem, op: str,
                        args: tuple) -> None:
    """Replay one remote file-system mutation onto the local replica.

    :class:`~repro.errors.PosixError` is tolerated: entries from
    different partitions within one epoch are causally unordered, so
    idempotent races (two partitions ``makedirs`` the same directory)
    replay as the harmless errors they would have been locally.
    """
    try:
        if op == "create":
            path, now = args
            if not fs.is_file(path):
                fs.release_inode(fs.open_inode(path, F.O_CREAT, now))
        elif op == "write":
            path, offset, data, now = args
            fs.write_at(fs.lookup(path), offset, data, now)
        elif op == "truncate":
            path, length, now = args
            fs.truncate(path, length, now)
        elif op == "unlink":
            (path,) = args
            fs.unlink(path)
        elif op == "rename":
            src, dst = args
            fs.rename(src, dst)
        elif op == "mkdir":
            (path,) = args
            fs.mkdir(path)
        elif op == "makedirs":
            (path,) = args
            fs.makedirs(path)
        elif op == "rmdir":
            (path,) = args
            fs.rmdir(path)
        elif op == "link":
            src, dst = args
            fs.link(src, dst)
        elif op == "symlink":
            target, dst = args
            fs.symlink(target, dst)
        elif op == "chmod":
            path, mode, now = args
            fs.chmod(path, mode, now)
        elif op == "utime":
            path, atime, mtime = args
            fs.utime(path, atime, mtime)
        else:
            raise SimulationError(f"unknown journal op {op!r}")
    except PosixError:
        pass


class PartitionedWorld(MPIWorld):
    """MPI world of one partition; cross-partition edges go through the
    coordinator at epoch boundaries."""

    def __init__(self, engine: SimEngine, recorder: Recorder | None,
                 plan: PartitionPlan, partition: int, chan: Channel,
                 fs: VirtualFileSystem):
        super().__init__(engine, recorder)
        self.plan = plan
        self.block = plan.blocks[partition]
        self.chan = chan
        self.fs = fs
        self._outbox: list[tuple[int, int, Any, _Message]] = []
        self._coll_outbox: list[dict[str, Any]] = []
        self._grants: set[tuple[int, Any]] = set()
        self._creator_grants: set[tuple[int, str]] = set()
        self._journal_out: list[dict[str, Any]] = []
        self._journal_seq = itertools.count()
        self.rounds = 0

    # -- journal capture -------------------------------------------------------

    def install(self) -> None:
        """Arm the journal and create-gate hooks and the first epoch pump."""
        self.fs.set_journal(self._journal_hook)
        self.fs.set_create_gate(self._create_gate)
        self.engine.schedule(math.inf, self._pump)

    def _create_gate(self, path: str) -> None:
        """Block a would-be first create until the coordinator decides.

        Racing ``O_CREAT`` opens of one missing path are ordered globally
        by ``(time, rank)`` — the same order the single-process engine
        produces.  The rank waits until either the coordinator grants it
        the creator role (it is globally first) or the winning remote
        create lands in the local replica (then ``existed`` is True,
        exactly as in the serial run).
        """
        rank = self.engine.current_rank
        if rank is None or self.fs.is_file(path):
            return
        key = (rank, path)
        self.blocked_in[rank] = ("create", path)
        try:
            self.engine.wait_until(
                rank,
                lambda: self.fs.is_file(path)
                or key in self._creator_grants,
                f"create({path!r})")
        finally:
            self.blocked_in.pop(rank, None)
        self._creator_grants.discard(key)

    def _journal_hook(self, op: str, args: tuple) -> None:
        rank = self.engine.current_rank
        if rank is None:
            rank = self.block.base
        self._journal_out.append({
            "t": self.engine.clock(rank).true_time,
            "rank": rank,
            "seq": next(self._journal_seq),
            "op": op,
            "args": codec.encode(args),
        })

    # -- MPIWorld hooks --------------------------------------------------------

    def post_send(self, src: int, dest: int, tag: Any,
                  msg: _Message) -> None:
        if self.block.owns(dest):
            super().post_send(src, dest, tag, msg)
        else:
            self._outbox.append((src, dest, tag, msg))

    def collective_arrived(self, index: int, slot: _CollectiveSlot,
                           rank: int) -> None:
        # Never completes locally: the coordinator owns completion (it is
        # the only place that sees all world arrivals).
        self._coll_outbox.append({
            "index": index, "kind": slot.kind, "root": slot.root,
            "op": slot.op, "rank": rank,
            "t": slot.arrivals[rank],
            "payload": codec.encode(slot.payloads[rank]),
        })

    def anysource_ready(self, dest: int, tag: int) -> bool:
        return ((dest, tag) in self._grants
                and bool(self.anysource_candidates(dest, tag)))

    def take_anysource(self, dest: int, tag: int) -> _Message:
        self._grants.discard((dest, tag))
        return super().take_anysource(dest, tag)

    # -- the epoch pump --------------------------------------------------------

    def _pump(self, _t: float) -> None:
        self.rounds += 1
        resp = self.chan.request(self._round_request())
        rtype = resp.get("type")
        if rtype == "error":
            raise rebuild_error(resp)
        self._apply_round(resp)
        if rtype != "finish":
            self.engine.schedule(math.inf, self._pump)

    def _round_request(self) -> dict[str, Any]:
        sends = []
        for src, dest, tag, msg in self._outbox:
            sends.append({
                "src": src, "dest": dest, "tag": codec.encode(tag),
                "seq": msg.match_key[4],
                "done": msg.send_done_true,
                "payload": codec.encode(msg.payload),
            })
        self._outbox = []
        colls = self._coll_outbox
        self._coll_outbox = []
        journal = self._journal_out
        self._journal_out = []

        ranks = []
        all_done = True
        for rank in self.engine.local_ranks:
            status, t = self.engine.rank_status(rank)
            if status != RANK_DONE:
                all_done = False
            entry: dict[str, Any] = {
                "rank": rank, "status": status, "t": t,
                "reason": self.engine.rank_reason(rank),
                "blocked": codec.encode(self.blocked_in.get(rank)),
            }
            blocked = self.blocked_in.get(rank)
            if blocked is not None and blocked[0] == "anyrecv":
                entry["cands"] = [
                    [ct, cs] for ct, cs
                    in self.anysource_candidates(rank, blocked[1])]
            ranks.append(entry)
        return {"type": "round", "partition": self.block.index,
                "all_done": all_done, "sends": sends, "colls": colls,
                "journal": journal, "ranks": ranks}

    def _apply_round(self, resp: dict[str, Any]) -> None:
        # 1. remote file-system changes are *scheduled at their original
        #    virtual times*, not applied wholesale: the engine fires each
        #    one before any local rank whose clock has passed it runs, so
        #    a rank that unblocks this round observes exactly the remote
        #    state a single-process run would have shown it at that
        #    instant — no more (no writes from its relative future), no
        #    less (everything before the synchronization that woke it).
        for e in resp.get("journal", ()):
            self.engine.schedule(
                e["t"], self._journal_applier(e["op"],
                                              codec.decode(e["args"])))
        # 2. point-to-point deliveries (per-channel FIFO order)
        for d in resp.get("deliveries", ()):
            tag = codec.decode(d["tag"])
            key = ("p2p", d["src"], d["dest"], tag, d["seq"])
            msg = _Message(codec.decode(d["payload"]), d["done"], key)
            self.mailbox(d["src"], d["dest"], tag).append(msg)
        # 3. collective completions
        for c in resp.get("completions", ()):
            slot = self._slots.get(c["index"])
            if slot is None:
                continue
            slot.exit_true = c["exit"]
            slot.results = {int(r): codec.decode(v)
                            for r, v in c["results"]}
            slot.complete = True
        # 4. ANY_SOURCE grants
        for rank, tag in resp.get("grants", ()):
            self._grants.add((int(rank), codec.decode(tag)))
        # 5. first-create grants
        for rank, path in resp.get("creators", ()):
            self._creator_grants.add((int(rank), path))

    def _journal_applier(self, op: str, args: tuple):
        def fire(_t: float) -> None:
            saved = self.fs._journal
            self.fs.set_journal(None)
            try:
                apply_journal_entry(self.fs, op, args)
            finally:
                self.fs.set_journal(saved)
        return fire


def worker_main(sock, plan: PartitionPlan, partition: int, cfg,
                program, setup, shard_path: str,
                ship_metrics: bool) -> None:
    """Entry point of one worker subprocess (started via fork)."""
    from repro.apps.base import execute_application, trace_meta
    from repro.obs import registry as obs
    from repro.sim.engine import SimConfig
    from repro.tracer.columnar import ColumnarTrace

    chan = Channel(sock)
    try:
        reg_ctx = obs.collecting(trace=True) if ship_metrics else None
        reg = reg_ctx.__enter__() if reg_ctx is not None else None
        try:
            block = plan.blocks[partition]
            sim_cfg = SimConfig(
                nranks=block.count, seed=cfg.seed,
                clock_skew_us=cfg.clock_skew_us,
                rank_base=block.base, world_size=plan.world_size,
                thread_cap=max(512, block.count))
            engine = SimEngine(sim_cfg)
            fs = VirtualFileSystem()
            if setup is not None:
                setup(fs, cfg)  # deterministic replica; not journaled
            recorder = Recorder(plan.world_size)
            world = PartitionedWorld(engine, recorder, plan, partition,
                                     chan, fs)
            world.install()
            execute_application(cfg, program, engine=engine, fs=fs,
                                world=world, recorder=recorder)
            trace = recorder.build_trace(meta=trace_meta(cfg))
            ColumnarTrace.from_trace(trace).save(shard_path)
            done: dict[str, Any] = {"type": "done",
                                    "partition": partition,
                                    "shard": str(shard_path),
                                    "rounds": world.rounds}
        finally:
            if reg_ctx is not None:
                reg_ctx.__exit__(None, None, None)
        if reg is not None:
            done["obs"] = {
                "metrics": reg.snapshot(),
                "trace": (reg.tracer.records()
                          if reg.tracer is not None else []),
            }
        chan.send(done)
    except BaseException as exc:  # ship the failure, then exit
        try:
            chan.send(describe_error(exc))
        except Exception:
            pass
    finally:
        chan.close()
