"""Contiguous rank-block partitioning of a simulated world."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True)
class RankBlock:
    """One partition's contiguous rank block ``[base, base + count)``."""

    index: int
    base: int
    count: int

    @property
    def ranks(self) -> range:
        return range(self.base, self.base + self.count)

    def owns(self, rank: int) -> bool:
        return self.base <= rank < self.base + self.count


@dataclass(frozen=True)
class PartitionPlan:
    """How ``world_size`` ranks are split across worker processes."""

    world_size: int
    blocks: tuple[RankBlock, ...]

    @property
    def npartitions(self) -> int:
        return len(self.blocks)

    def owner(self, rank: int) -> int:
        """Partition index hosting a global rank (O(log n))."""
        lo, hi = 0, len(self.blocks) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if rank >= self.blocks[mid].base + self.blocks[mid].count:
                lo = mid + 1
            else:
                hi = mid
        return lo


def partition_plan(world_size: int, partitions: int) -> PartitionPlan:
    """Split ``world_size`` ranks into ``partitions`` contiguous blocks.

    Blocks differ in size by at most one (the first ``world % p`` blocks
    take the extra rank), and empty partitions are never produced: asking
    for more partitions than ranks is an error rather than a silent clamp.
    """
    if world_size < 1:
        raise SimulationError(f"world_size must be >= 1, got {world_size}")
    if partitions < 1:
        raise SimulationError(f"partitions must be >= 1, got {partitions}")
    if partitions > world_size:
        raise SimulationError(
            f"cannot split {world_size} rank(s) into {partitions} "
            f"partitions (at least one would be empty)")
    quotient, remainder = divmod(world_size, partitions)
    blocks = []
    base = 0
    for i in range(partitions):
        count = quotient + (1 if i < remainder else 0)
        blocks.append(RankBlock(index=i, base=base, count=count))
        base += count
    return PartitionPlan(world_size=world_size, blocks=tuple(blocks))
