"""Coordinator side of the partitioned simulation.

The coordinator owns every cross-partition decision so that each one is
made exactly once, from global state, by the same pure functions the
single-process simulator uses:

* point-to-point routing — sends whose destination lives in another
  partition are forwarded in deterministic per-channel FIFO order;
* collective completion — arrivals are merged across partitions and,
  once all world ranks have entered, the exit time and per-rank results
  are computed with :func:`repro.mpi.comm.finish_collective`, the very
  function the single-process path runs;
* ANY_SOURCE matching — grants are issued under the same stability rule
  as :meth:`repro.mpi.comm.MPIWorld.anysource_ready`, evaluated over the
  assembled global rank table;
* deadlock detection — a round that routes nothing, completes nothing
  and grants nothing while ranks remain blocked can never make progress
  again (workers are quiescent), so it fails fast with the per-rank
  blocked reasons.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import CollectiveMismatchError, DeadlockError
from repro.mpi.comm import (
    _CollectiveSlot,
    collective_depth,
    finish_collective,
)
from repro.obs import registry as obs
from repro.partition import codec
from repro.partition.channel import Channel
from repro.partition.plan import PartitionPlan
from repro.partition.worker import describe_error, rebuild_error
from repro.sim.engine import RANK_BLOCKED, RANK_DONE, SimConfig


def _tag_key(tag_doc: Any) -> str:
    """Deterministic sort key for an (encoded) tag of any shape."""
    return json.dumps(tag_doc, sort_keys=True, separators=(",", ":"))


class Coordinator:
    """Drives the epoch rounds over one channel per worker."""

    def __init__(self, plan: PartitionPlan, sim_cfg: SimConfig,
                 channels: list[Channel]):
        self.plan = plan
        self.sim_cfg = sim_cfg
        self.channels = channels
        self._slots: dict[int, _CollectiveSlot] = {}
        reg = obs.current()
        self._obs_rounds = reg.counter("partition.rounds")
        self._obs_routed = reg.counter("partition.p2p_routed")
        self._obs_colls = reg.counter("partition.collectives_completed")
        self._obs_grants = reg.counter("partition.grants")
        self._obs_creates = reg.counter("partition.create_grants")
        self._obs_journal = reg.counter("partition.journal_entries")

    # -- driving ---------------------------------------------------------------

    def run(self) -> list[dict[str, Any]]:
        """Run rounds until the world finishes; return per-worker done docs.

        On any failure the error is broadcast to every worker and
        re-raised here with its original repro type.
        """
        try:
            while True:
                reqs = [chan.recv() for chan in self.channels]
                for req in reqs:
                    if req.get("type") == "error":
                        raise rebuild_error(req)
                finished = all(r.get("all_done") for r in reqs)
                resps = self._process_round(reqs, finished)
                for chan, resp in zip(self.channels, resps):
                    chan.send(resp)
                if finished:
                    break
            dones = []
            for chan in self.channels:
                doc = chan.recv()
                if doc.get("type") == "error":
                    raise rebuild_error(doc)
                dones.append(doc)
            dones.sort(key=lambda d: d["partition"])
            return dones
        except BaseException as exc:
            self._broadcast_error(exc)
            raise

    def _broadcast_error(self, exc: BaseException) -> None:
        doc = describe_error(exc)
        for chan in self.channels:
            try:
                chan.send(doc)
            except Exception:
                pass

    # -- one round -------------------------------------------------------------

    def _process_round(self, reqs: list[dict[str, Any]],
                       finished: bool) -> list[dict[str, Any]]:
        self._obs_rounds.inc()
        nparts = self.plan.npartitions
        reqs = sorted(reqs, key=lambda r: r["partition"])

        # 1. merge journals: each partition receives the others' entries
        #    in global (time, rank, seq) order.
        journal: list[tuple[int, dict[str, Any]]] = []
        for req in reqs:
            for e in req.get("journal", ()):
                journal.append((req["partition"], e))
        journal.sort(key=lambda pe: (pe[1]["t"], pe[1]["rank"],
                                     pe[1]["seq"]))
        self._obs_journal.inc(len(journal))
        journal_out: list[list[dict[str, Any]]] = [
            [e for p, e in journal if p != i] for i in range(nparts)]

        # 2. route point-to-point sends (per-channel FIFO via seq order)
        sends = [s for req in reqs for s in req.get("sends", ())]
        sends.sort(key=lambda s: (s["src"], s["dest"],
                                  _tag_key(s["tag"]), s["seq"]))
        deliveries: list[list[dict[str, Any]]] = [[] for _ in range(nparts)]
        for s in sends:
            deliveries[self.plan.owner(s["dest"])].append(s)
        self._obs_routed.inc(len(sends))

        # 3. merge collective arrivals; complete fully-arrived slots
        completions: list[list[dict[str, Any]]] = [[] for _ in range(nparts)]
        arrivals = [a for req in reqs for a in req.get("colls", ())]
        arrivals.sort(key=lambda a: (a["index"], a["rank"]))
        touched: list[int] = []
        for a in arrivals:
            slot = self._slots.get(a["index"])
            if slot is None:
                slot = _CollectiveSlot(a["kind"], a["root"], a["op"])
                self._slots[a["index"]] = slot
            elif (slot.kind != a["kind"] or slot.root != a["root"]
                    or slot.op != a["op"]):
                raise CollectiveMismatchError(
                    f"collective #{a['index']}: rank {a['rank']} entered "
                    f"{a['kind']}(root={a['root']}) but others entered "
                    f"{slot.kind}(root={slot.root})")
            slot.arrivals[a["rank"]] = a["t"]
            slot.payloads[a["rank"]] = codec.decode(a["payload"])
            touched.append(a["index"])
        completed: dict[int, _CollectiveSlot] = {}
        for index in sorted(set(touched)):
            slot = self._slots[index]
            if len(slot.arrivals) != self.plan.world_size:
                continue
            slot.exit_true = (
                max(slot.arrivals.values())
                + self.sim_cfg.barrier_cost
                * collective_depth(self.plan.world_size))
            finish_collective(slot, self.plan.world_size)  # may raise
            slot.complete = True
            completed[index] = slot
            del self._slots[index]
            self._obs_colls.inc()
            for i, block in enumerate(self.plan.blocks):
                completions[i].append({
                    "index": index,
                    "exit": slot.exit_true,
                    "results": [[r, codec.encode(slot.results[r])]
                                for r in block.ranks],
                })

        # 4. ANY_SOURCE and first-create grants from the global rank table
        grants, creators = self._grants(reqs, deliveries, completed)

        # 5. progress check: a zero-effect round can never become
        #    productive (every worker is quiescent), so it is a deadlock.
        #    Journal entries count — they can satisfy a create gate.
        progress = (any(deliveries) or completed or journal
                    or any(g for g in grants)
                    or any(c for c in creators))
        if not finished and not progress:
            blocked = {}
            for req in reqs:
                for e in req.get("ranks", ()):
                    if e["status"] == RANK_BLOCKED:
                        blocked[e["rank"]] = e.get("reason", "")
            if blocked or not any(
                    e["status"] != RANK_DONE
                    for req in reqs for e in req.get("ranks", ())):
                raise DeadlockError(
                    f"deadlock across partitions: {len(blocked)} rank(s) "
                    f"blocked, none runnable", blocked)

        rtype = "finish" if finished else "advance"
        return [{"type": rtype,
                 "journal": journal_out[i],
                 "deliveries": deliveries[i],
                 "completions": completions[i],
                 "grants": grants[i],
                 "creators": creators[i]}
                for i in range(nparts)]

    # -- ANY_SOURCE safety over the global table --------------------------------

    def _grants(self, reqs: list[dict[str, Any]],
                deliveries: list[list[dict[str, Any]]],
                completed: dict[int, _CollectiveSlot]
                ) -> tuple[list[list[list[Any]]], list[list[list[Any]]]]:
        # routed heads this round: (dest, tag_key) -> {src: first send done}
        routed: dict[tuple[int, str], dict[int, float]] = {}
        for part in deliveries:
            for s in part:  # already seq-sorted: first seen is the head
                heads = routed.setdefault((s["dest"], _tag_key(s["tag"])),
                                          {})
                heads.setdefault(s["src"], s["done"])

        # global rank table, decoded once per round
        info: dict[int, dict[str, Any]] = {}
        blocked_of: dict[int, Any] = {}
        for req in reqs:
            for e in req.get("ranks", ()):
                info[e["rank"]] = e
                blocked_of[e["rank"]] = codec.decode(e["blocked"])

        def cands_for(rank: int, blocked: tuple) -> list[tuple[float, int]]:
            tag_doc = codec.encode(blocked[1])
            merged = {src: t for t, src in info[rank].get("cands", ())}
            for src, done in routed.get((rank, _tag_key(tag_doc)),
                                        {}).items():
                merged.setdefault(src, done)  # existing head stays head
            return sorted((t, src) for src, t in merged.items())

        # Per-rank lower bound on when its *next* file/MPI operation can
        # happen, memoized for the round.  ``exclusive`` marks bounds the
        # rank's future operations are *strictly* after: a resumed recv
        # charges net latency, a resolved create charges an op cost, so
        # only an engine-level wait (blocked_in is None) can act at
        # exactly its bound.
        bounds: dict[int, tuple[float, bool]] = {}
        for rank, e in info.items():
            if e["status"] == RANK_DONE:
                bounds[rank] = (float("inf"), True)
                continue
            blocked = blocked_of[rank]
            t = e["t"]
            if blocked is None:
                bounds[rank] = (t, False)  # engine-level wait
                continue
            kind = blocked[0]
            if kind == "coll":
                slot = completed.get(blocked[1])
                # still parked in a world collective: it needs every rank
                # (including any ANY_SOURCE receiver) before it can move.
                # A completing rank resumes at exactly exit_true with no
                # further charge, so its bound is not exclusive.
                bounds[rank] = ((slot.exit_true, False) if slot is not None
                                else (float("inf"), True))
            elif kind == "recv":
                heads = routed.get(
                    (rank, _tag_key(codec.encode(blocked[2]))), {})
                done = heads.get(blocked[1])
                if done is None:
                    # parked on an empty mailbox: only a sender below
                    # best_t could wake it, and that sender fails the
                    # check by itself
                    bounds[rank] = (float("inf"), True)
                else:
                    bounds[rank] = (max(t, done), True)
            elif kind == "anyrecv":
                cands = cands_for(rank, blocked)
                bounds[rank] = ((max(t, cands[0][0]), True) if cands
                                else (float("inf"), True))
            else:  # "create": the op at t is a create of its own path
                bounds[rank] = (t, True)

        grants: list[list[list[Any]]] = [
            [] for _ in range(self.plan.npartitions)]
        creators: list[list[list[Any]]] = [
            [] for _ in range(self.plan.npartitions)]
        create_intents: dict[str, list[tuple[float, int]]] = {}
        for rank in sorted(info):
            blocked = blocked_of[rank]
            if blocked is None:
                continue
            if blocked[0] == "create":
                create_intents.setdefault(blocked[1], []).append(
                    (info[rank]["t"], rank))
                continue
            if blocked[0] != "anyrecv":
                continue
            cands = cands_for(rank, blocked)
            if not cands:
                continue
            best_t = cands[0][0]
            if all(q == rank or bounds[q][0] >= best_t for q in info):
                self._obs_grants.inc()
                grants[self.plan.owner(rank)].append(
                    [rank, codec.encode(blocked[1])])

        # First-create arbitration: per path, the globally first
        # ``(time, rank)`` intent creates; everyone else observes the
        # winner's journaled create and opens with existed=True — the
        # order a single engine produces by running ranks in (t, rank)
        # order.  A grant is safe when no rank outside the race can
        # still reach an earlier create of the same path:
        #   * any bound below best_t blocks the grant for a round
        #     (racers never are — best_t is their minimum);
        #   * at exactly best_t, exclusive bounds are safe (the rank's
        #     next create lands strictly later), and an engine-level
        #     wait is safe only if its rank loses the id tie-break.
        if create_intents:
            min_bound = min(b for b, _ in bounds.values())
            ties = [(b, q) for q, (b, excl) in bounds.items()
                    if not excl]
            for path in sorted(create_intents):
                intents = sorted(create_intents[path])
                best_t, winner = intents[0]
                if min_bound < best_t:
                    continue
                if any(b == best_t and q < winner for b, q in ties):
                    continue
                self._obs_creates.inc()
                creators[self.plan.owner(winner)].append([winner, path])
        return grants, creators
