"""Synchronous length-prefixed canonical-JSON channel over a socket pair.

Same wire discipline as :mod:`repro.serve.protocol` (4-byte big-endian
length prefix, canonical JSON body) but blocking — the epoch protocol is
strictly request/response between each worker and the coordinator — and
with a larger frame ceiling, since an epoch exchange can carry a
partition's whole file-system change journal.
"""

from __future__ import annotations

import socket
import struct
from typing import Any

from repro.errors import SimulationError
from repro.serve.protocol import canonical_json, decode_body

_HEADER = struct.Struct(">I")

#: Epoch frames carry journals and payload batches; far above the serve
#: protocol's 8 MiB request cap, still bounded to catch runaway state.
MAX_FRAME = 256 * 1024 * 1024


class ChannelClosed(SimulationError):
    """The peer went away mid-run (worker crash or coordinator abort)."""


class Channel:
    """One end of a coordinator<->worker socket pair."""

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._sock.setblocking(True)

    def send(self, doc: dict[str, Any]) -> None:
        body = canonical_json(doc).encode("utf-8")
        if len(body) > MAX_FRAME:
            raise SimulationError(
                f"partition frame of {len(body)} bytes exceeds the "
                f"{MAX_FRAME}-byte ceiling")
        try:
            self._sock.sendall(_HEADER.pack(len(body)) + body)
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            raise ChannelClosed(f"peer closed the channel: {exc}") from exc

    def recv(self) -> dict[str, Any]:
        header = self._read_exact(_HEADER.size)
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME:
            raise SimulationError(
                f"incoming partition frame of {length} bytes exceeds the "
                f"{MAX_FRAME}-byte ceiling")
        return decode_body(self._read_exact(length))

    def request(self, doc: dict[str, Any]) -> dict[str, Any]:
        self.send(doc)
        return self.recv()

    def _read_exact(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            try:
                chunk = self._sock.recv(min(remaining, 1 << 20))
            except (ConnectionResetError, OSError) as exc:
                raise ChannelClosed(
                    f"peer closed the channel: {exc}") from exc
            if not chunk:
                raise ChannelClosed(
                    "peer closed the channel mid-frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass
