"""Asyncio front end turning the analysis pipeline into a service.

Request path, in order:

1. **Admission.**  A bounded counter of in-flight requests; a request
   arriving when ``queue_limit`` are already admitted (or while the
   server is draining) is rejected immediately with ``overloaded`` —
   explicit backpressure, never an unbounded queue or a silent hang.
2. **Read-through cache.**  Compute endpoints key their work with
   :func:`repro.study.cache.cache_key` (identically to the batch CLI),
   so a warm ``.repro-cache/`` answers without touching the pool.
3. **Coalescing.**  Identical keys already being computed share one
   future: N concurrent duplicates cost one computation.  A waiter's
   deadline abandons *its wait*, never the shared computation — the
   result still lands in the cache for the retry.
4. **Pool.**  Misses run in a :class:`ProcessPoolExecutor` — the
   analyses are CPU-bound simulations, and worker processes keep the
   event loop responsive for health checks and admission decisions.
5. **Deadline.**  Each request carries a seconds budget (bounded by the
   server's maximum); expiry returns ``deadline``.

Shutdown is drain-then-exit: stop accepting, reject new work as
``overloaded``, wait (bounded) for admitted requests to finish, then
shut the pool down.

Every stage is metered through a :class:`repro.obs` registry
(``server.*`` counters/gauges/timers); the ``metrics`` endpoint
snapshots it live.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import (
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass, field

from repro.obs import registry as obs
from repro.serve import protocol
from repro.serve.handlers import (
    ENDPOINTS,
    Endpoint,
    Prepared,
    endpoint_catalog,
)
from repro.study.cache import ResultCache, code_fingerprint


@dataclass
class ServeConfig:
    """Tunables of one :class:`AnalysisServer` instance."""

    host: str = "127.0.0.1"
    #: 0 = ephemeral; the bound port is on ``server.port`` after start
    port: int = 0
    #: max requests admitted concurrently (queued + executing);
    #: arrivals beyond this are rejected with ``overloaded``
    queue_limit: int = 16
    #: analysis worker processes; 0 = compute on an in-process thread
    #: instead (no forked children — the in-process cluster harness
    #: needs kill semantics where a dead node's sockets actually
    #: close, and forked pool children would inherit and hold them)
    workers: int = 2
    #: deadline budget for requests that set none
    default_deadline_s: float = 60.0
    #: hard ceiling on any request's deadline budget
    max_deadline_s: float = 600.0
    #: how long shutdown waits for admitted requests to finish
    drain_s: float = 10.0
    max_frame: int = protocol.MAX_FRAME
    #: serve debug endpoints (``sleep``); tests and benches only
    debug: bool = False
    #: cluster identity, when this server is a cluster worker; plain
    #: single-process serving leaves it unset
    node_id: str | None = None


class AnalysisServer:
    """One listening service over a result cache and a worker pool."""

    def __init__(self, config: ServeConfig | None = None, *,
                 cache: ResultCache | None = None,
                 registry: obs.MetricsRegistry | None = None):
        self.config = config or ServeConfig()
        self.cache = cache if cache is not None else ResultCache()
        #: server-owned registry: the ``metrics`` endpoint snapshots it
        #: live and never races the global one
        self.registry = registry if registry is not None \
            else obs.MetricsRegistry()
        self.port: int | None = None
        self._server: asyncio.AbstractServer | None = None
        self._pool: Executor | None = None
        self._in_flight = 0
        self._draining = False
        self._idle = asyncio.Event()
        self._idle.set()
        #: cache key -> future of the one in-progress computation
        self._computing: dict[str, asyncio.Future] = {}
        #: live connection-handler tasks, cancelled at shutdown
        self._connections: set[asyncio.Task] = set()
        #: live connection writers, so abort() can RST them like a
        #: kernel tearing down a killed process's sockets
        self._writers: set[asyncio.StreamWriter] = set()
        reg = self.registry
        self._c_connections = reg.counter("server.connections")
        self._c_requests = reg.counter("server.requests")
        self._c_ok = reg.counter("server.responses.ok")
        self._c_cache_hits = reg.counter("server.cache.hits")
        self._c_computations = reg.counter("server.computations")
        self._c_coalesced = reg.counter("server.coalesced")
        self._c_errors = {code: reg.counter(f"server.errors.{code}")
                          for code in protocol.ERROR_CODES}
        self._g_in_flight = reg.gauge("server.in_flight")
        self._g_in_flight_max = reg.gauge("server.in_flight_max")
        self._t_request = reg.timer("server.request_seconds")
        self._t_compute = reg.timer("server.compute_seconds")

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind, spin up the pool, and begin accepting connections."""
        if self._server is not None:
            raise RuntimeError("server already started")
        if self.config.workers >= 1:
            self._pool = ProcessPoolExecutor(
                max_workers=self.config.workers)
        else:
            self._pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="serve-inline")
        self._server = await asyncio.start_server(
            self._serve_connection, self.config.host, self.config.port)
        sock = self._server.sockets[0]
        self.port = sock.getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def stop(self) -> None:
        """Drain-then-exit: refuse new work, finish admitted work."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            await asyncio.wait_for(self._idle.wait(),
                                   timeout=self.config.drain_s)
        except asyncio.TimeoutError:
            pass  # bounded drain: give up on stragglers
        for fut in list(self._computing.values()):
            fut.cancel()
        # idle keep-alive connections are parked in read_frame; hang
        # up on them so nothing outlives the loop
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections,
                                 return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        self._server = None

    async def abort(self) -> None:
        """Die abruptly: no drain, no goodbyes — the in-process stand-in
        for SIGKILL that the chaos suite and failover bench use.

        Admitted requests are abandoned mid-flight and connections are
        torn down immediately; peers observe exactly what a killed
        node's peers observe (reset/EOF), which is the failure the
        cluster's replication must absorb."""
        self._draining = True
        if self._server is not None:
            self._server.close()
        # RST every live connection *first* — when a process is
        # SIGKILLed the kernel closes its sockets at once, and peers
        # must observe the same here or they would block forever on
        # replies that will never come
        for writer in list(self._writers):
            transport = writer.transport
            if transport is not None:
                transport.abort()
        for fut in list(self._computing.values()):
            fut.cancel()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections,
                                 return_exceptions=True)
        if self._server is not None:
            try:
                await self._server.wait_closed()
            except (RuntimeError, OSError):
                pass
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self._server = None

    # -- connection handling -----------------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        self._c_connections.inc()
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        self._writers.add(writer)
        try:
            while True:
                try:
                    doc = await protocol.read_frame(
                        reader, max_frame=self.config.max_frame)
                except EOFError:
                    break
                except asyncio.IncompleteReadError:
                    break  # peer vanished mid-frame
                except protocol.FrameTooLarge as exc:
                    # cannot resync a stream we refused to read:
                    # answer, then close
                    await self._respond_error(
                        writer, None, protocol.ERR_BAD_REQUEST,
                        str(exc))
                    break
                except protocol.ProtocolError as exc:
                    # framing is intact (length prefix honoured), the
                    # body was garbage: answer and keep the connection
                    await self._respond_error(
                        writer, None, protocol.ERR_BAD_REQUEST,
                        str(exc))
                    continue
                try:
                    response = await self._handle(doc)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # noqa: BLE001 — taxonomy:
                    # a handler bug degrades to 'internal', never to a
                    # dead connection or a crashed server
                    response = self._error(
                        doc.get("id"), protocol.ERR_INTERNAL,
                        f"{type(exc).__name__}: {exc}")
                await protocol.write_frame(writer, response)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, RuntimeError):
                pass

    async def _respond_error(self, writer: asyncio.StreamWriter,
                             req_id, code: str, message: str) -> None:
        self._c_errors[code].inc()
        try:
            await protocol.write_frame(
                writer, protocol.error_response(req_id, code, message))
        except (ConnectionError, OSError):
            pass

    # -- request handling --------------------------------------------------

    async def _handle(self, doc: dict) -> dict:
        """One request document -> one response document."""
        self._c_requests.inc()
        try:
            request = protocol.parse_request(doc)
        except protocol.BadRequest as exc:
            return self._error(doc.get("id"), protocol.ERR_BAD_REQUEST,
                               str(exc))
        endpoint = ENDPOINTS.get(request.endpoint)
        if endpoint is None \
                or (endpoint.debug and not self.config.debug):
            known = ", ".join(
                ep["name"]
                for ep in endpoint_catalog(debug=self.config.debug))
            return self._error(request.id, protocol.ERR_BAD_REQUEST,
                               f"unknown endpoint "
                               f"{request.endpoint!r}; known: {known}")
        if endpoint.inline:
            # liveness/introspection reads bypass admission: a full
            # queue (or a drain) must never hide the server's state
            return self._ok(request.id, self._inline(endpoint.name))
        if self._draining:
            return self._error(request.id, protocol.ERR_OVERLOADED,
                               "server is draining")
        if self._in_flight >= self.config.queue_limit:
            return self._error(
                request.id, protocol.ERR_OVERLOADED,
                f"admission queue full "
                f"({self._in_flight}/{self.config.queue_limit} in "
                f"flight)")
        self._admit(+1)
        try:
            with self._t_request.time():
                return await self._dispatch(request, endpoint)
        finally:
            self._admit(-1)

    def _admit(self, delta: int) -> None:
        self._in_flight += delta
        self._g_in_flight.set(self._in_flight)
        self._g_in_flight_max.set_max(self._in_flight)
        if self._in_flight == 0:
            self._idle.set()
        else:
            self._idle.clear()

    def _error(self, req_id, code: str, message: str) -> dict:
        self._c_errors[code].inc()
        return protocol.error_response(req_id, code, message)

    def _ok(self, req_id, result: dict, *, cached: bool = False,
            coalesced: bool = False) -> dict:
        self._c_ok.inc()
        return protocol.ok_response(req_id, result, cached=cached,
                                    coalesced=coalesced)

    async def _dispatch(self, request: protocol.Request,
                        endpoint: Endpoint) -> dict:
        assert endpoint.prepare is not None
        try:
            prepared = endpoint.prepare(request.params)
        except protocol.BadRequest as exc:
            return self._error(request.id, protocol.ERR_BAD_REQUEST,
                               str(exc))
        return await self._serve_prepared(request, prepared)

    def _inline(self, name: str) -> dict:
        if name == "healthz":
            # three-valued health: 'ok', 'degraded' (admission is
            # saturated — the next compute request gets 'overloaded'),
            # or 'draining'.  Failover-aware clients route away from
            # anything that is not 'ok' instead of discovering the
            # rejection the hard way.
            if self._draining:
                status = "draining"
            elif self._in_flight >= self.config.queue_limit:
                status = "degraded"
            else:
                status = "ok"
            doc = {"status": status,
                   "degraded": status != "ok",
                   "in_flight": self._in_flight,
                   "queue_limit": self.config.queue_limit,
                   "workers": self.config.workers,
                   "endpoints": endpoint_catalog(
                       debug=self.config.debug),
                   "protocol": protocol.PROTOCOL_VERSION}
            if self.config.node_id is not None:
                doc["node"] = self.config.node_id
            return doc
        if name == "fingerprint":
            return {"fingerprint": code_fingerprint(),
                    "cache_enabled": self.cache.enabled,
                    "cache_root": str(self.cache.root)}
        if name == "metrics":
            return {"metrics": self.registry.snapshot()}
        raise AssertionError(f"unhandled inline endpoint {name!r}")

    async def _serve_prepared(self, request: protocol.Request,
                              prepared: Prepared) -> dict:
        key = prepared.key
        payload = self.cache.get(key)
        if payload is not None:
            self._c_cache_hits.inc()
            return self._ok(request.id, payload, cached=True)

        deadline = min(request.deadline_s
                       or self.config.default_deadline_s,
                       self.config.max_deadline_s)
        fut = self._computing.get(key)
        coalesced = fut is not None
        if fut is None:
            # registered synchronously (no await between probe and
            # insert), so two arrivals in one loop tick still share
            fut = asyncio.ensure_future(self._compute(key, prepared))
            self._computing[key] = fut
        else:
            self._c_coalesced.inc()
        try:
            # shield: a waiter's deadline abandons its wait, never the
            # shared computation other waiters (and the cache) rely on
            payload = await asyncio.wait_for(asyncio.shield(fut),
                                             timeout=deadline)
        except asyncio.TimeoutError:
            return self._error(
                request.id, protocol.ERR_DEADLINE,
                f"deadline of {deadline:g}s expired computing "
                f"{request.endpoint}; the result will be cached — "
                f"retry to collect it")
        except asyncio.CancelledError:
            raise
        except protocol.BadRequest as exc:
            # a worker may only discover invalid params while running
            return self._error(request.id, protocol.ERR_BAD_REQUEST,
                               str(exc))
        except Exception as exc:  # noqa: BLE001 — the taxonomy demands
            return self._error(request.id, protocol.ERR_INTERNAL,
                               f"{type(exc).__name__}: {exc}")
        return self._ok(request.id, payload, coalesced=coalesced)

    async def _compute(self, key: str, prepared: Prepared) -> dict:
        """The one computation for ``key``; the caller registered it
        under ``self._computing[key]`` before this coroutine ran."""
        self._c_computations.inc()
        loop = asyncio.get_running_loop()
        try:
            with self._t_compute.time():
                payload = await loop.run_in_executor(
                    self._pool, prepared.worker, prepared.task)
            self.cache.put(key, payload)
            return payload
        finally:
            self._computing.pop(key, None)


@dataclass
class ServerHandle:
    """A server running on a background thread's event loop.

    The synchronous face the CLI tests, benches, and the load
    generator share: ``start()`` binds and returns once the port is
    known; ``stop()`` drains and joins the thread.
    """

    server: AnalysisServer
    _loop: asyncio.AbstractEventLoop | None = None
    _thread: object = None
    _stop: asyncio.Event | None = None
    _abort: bool = False
    _start_error: BaseException | None = None

    @property
    def port(self) -> int:
        assert self.server.port is not None
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.config.host

    def start(self) -> "ServerHandle":
        import threading

        started = threading.Event()

        async def main() -> None:
            self._stop = asyncio.Event()
            try:
                await self.server.start()
            except Exception as exc:
                # surface bind/boot failures to the starting thread
                # instead of leaving it waiting forever
                self._start_error = exc
                started.set()
                return
            forever = asyncio.ensure_future(
                self.server.serve_forever())
            started.set()
            # stop() closes the listener, which also ends
            # serve_forever(); waiting on the explicit event keeps
            # the loop alive until the drain has fully finished
            await self._stop.wait()
            if self._abort and hasattr(self.server, "abort"):
                await self.server.abort()
            else:
                await self.server.stop()
            forever.cancel()

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(main())
            finally:
                try:
                    # flush teardown callbacks (transport
                    # connection_lost) so sockets actually close
                    # before the loop dies — a loop closed with those
                    # pending leaks live fds and peers hang on them
                    loop.run_until_complete(asyncio.sleep(0.01))
                except Exception:  # noqa: BLE001 — teardown only
                    pass
                loop.close()

        self._thread = threading.Thread(target=run, name="repro-serve",
                                        daemon=True)
        self._thread.start()
        started.wait()
        if self._start_error is not None:
            error, self._start_error = self._start_error, None
            self._loop = self._stop = None
            raise error
        return self

    def stop(self) -> None:
        loop, stop = self._loop, self._stop
        if loop is None or stop is None:
            return
        loop.call_soon_threadsafe(stop.set)
        self._thread.join(timeout=self.server.config.drain_s + 30)
        self._loop = self._stop = None

    def kill(self) -> None:
        """SIGKILL stand-in: tear the server down with no drain."""
        self._abort = True
        self.stop()

    def __enter__(self) -> "ServerHandle":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def start_background(config: ServeConfig | None = None, *,
                     cache: ResultCache | None = None) -> ServerHandle:
    """Start an :class:`AnalysisServer` on a daemon thread."""
    return ServerHandle(AnalysisServer(config, cache=cache)).start()


__all__ = [
    "AnalysisServer",
    "ServeConfig",
    "ServerHandle",
    "start_background",
]
