"""Endpoints of the analysis service: the existing pipeline as queries.

Every compute endpoint resolves its parameters to the **same cache
key** the batch CLI uses for the same work (``cell`` produces
``study-cell`` keys, ``chaos`` produces ``chaos-variant`` keys), so
the server is a read-through front end over ``.repro-cache/``: a cell
computed by ``python -m repro.study all`` is a warm hit for the
service, and vice versa.  Key derivation goes through
:func:`repro.study.cache.cache_key` — the injectivity the cache's
hypothesis tests pin is exactly the coalescing correctness the server
relies on (identical keys ⇒ identical payloads).

An endpoint contributes:

* ``prepare(params)`` — validate and normalize the raw parameter
  document (raising :class:`~repro.serve.protocol.BadRequest` with a
  caller-facing message) into a :class:`Prepared` work item;
* a top-level, picklable worker function the server runs in its
  :class:`~concurrent.futures.ProcessPoolExecutor`.

Inline endpoints (``healthz``, ``fingerprint``, ``metrics``) are
answered on the event loop by the server itself — they are reads of
server state, never queued, cached, or pooled.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.apps.registry import APPLICATIONS, RunVariant
from repro.serve.protocol import BadRequest
from repro.study.cache import cache_key

#: ceiling on ranks per service request — the analyses are O(nranks)
#: traces; a query service refuses campaign-sized asks outright
MAX_NRANKS = 64
#: ceiling on the debug sleep endpoint (tests/benches only)
MAX_SLEEP_S = 30.0


@dataclass(frozen=True)
class Prepared:
    """One validated, schedulable unit of server work."""

    #: cache kind (shared with the batch CLI where the work is shared)
    kind: str
    #: cache key fields; with ``kind`` they fully determine the payload
    key_fields: dict
    #: top-level picklable worker, called as ``worker(task)`` in a pool
    worker: Callable[[tuple], dict]
    task: tuple

    @property
    def key(self) -> str:
        return cache_key(self.kind, **self.key_fields)


@dataclass(frozen=True)
class Endpoint:
    """One service endpoint: name, doc line, and request preparation."""

    name: str
    summary: str
    prepare: Callable[[dict], Prepared] | None = None
    #: answered by the server on the event loop (no queue/cache/pool)
    inline: bool = False
    #: only served when the server runs with ``debug=True``
    debug: bool = False
    #: parameter names accepted by ``prepare`` (for error messages)
    param_names: tuple[str, ...] = field(default=())


# -- parameter validation ------------------------------------------------------


def _check_unknown(params: dict, allowed: tuple[str, ...]) -> None:
    unknown = sorted(set(params) - set(allowed))
    if unknown:
        raise BadRequest(
            f"unknown parameter(s) {', '.join(map(repr, unknown))}; "
            f"accepted: {', '.join(allowed)}")


def _int_param(params: dict, name: str, default: int, lo: int,
               hi: int) -> int:
    value = params.get(name, default)
    if not isinstance(value, int) or isinstance(value, bool):
        raise BadRequest(f"{name!r} must be an integer")
    if not lo <= value <= hi:
        raise BadRequest(f"{name!r} must be in [{lo}, {hi}], "
                         f"got {value}")
    return value


def _name_list(params: dict, name: str) -> list[str] | None:
    """Optional list-of-names parameter.

    Accepts a JSON list of non-empty strings or a comma-separated
    string (the form ``--param {name}=a,b`` produces), so the CLI and
    programmatic clients key identically.
    """
    value = params.get(name)
    if value is None:
        return None
    if isinstance(value, str):
        value = [part.strip() for part in value.split(",")]
    if not isinstance(value, list) \
            or not value \
            or not all(isinstance(v, str) and v for v in value):
        raise BadRequest(
            f"{name!r} must be a list of names or a comma-separated "
            f"string")
    return value


def resolve_one_variant(selector: Any) -> RunVariant:
    """``NAME``, ``NAME/LIB`` or a full variant label -> one variant.

    A selector matching several variants is a :class:`BadRequest`
    naming the candidates — a query answers for exactly one
    configuration.
    """
    if not isinstance(selector, str) or not selector:
        raise BadRequest("'app' must be a non-empty string like "
                         "'FLASH/HDF5' or a variant label")
    everything = [v for spec in APPLICATIONS for v in spec.variants]
    by_label = [v for v in everything
                if v.label.lower() == selector.lower()]
    if by_label:
        return by_label[0]
    name, _, lib = selector.partition("/")
    specs = [s for s in APPLICATIONS
             if s.name.lower() == name.lower()]
    if not specs:
        known = ", ".join(sorted(s.name for s in APPLICATIONS))
        raise BadRequest(f"unknown application {name!r}; known: {known}")
    matched = [v for v in specs[0].variants
               if not lib or v.io_library.lower() == lib.lower()]
    if not matched:
        raise BadRequest(
            f"no variant of {specs[0].name} uses {lib!r}")
    if len(matched) > 1:
        labels = ", ".join(repr(v.label) for v in matched)
        raise BadRequest(
            f"{selector!r} is ambiguous ({labels}); pass a full "
            f"variant label")
    return matched[0]


def _variant_fields(variant: RunVariant) -> dict:
    """The (label, options) identity the batch CLI keys cells on."""
    return {"label": variant.label,
            "options": dict(sorted(variant.options.items()))}


# -- compute endpoints ---------------------------------------------------------


_CELL_PARAMS = ("app", "nranks", "seed")


def prepare_cell(params: dict) -> Prepared:
    """Study cell: the per-configuration conflict/semantics summary.

    Keyed identically to ``study all`` cells, so the service and the
    batch matrix share one content-addressed store.
    """
    from repro.study.parallel import study_cell_task

    _check_unknown(params, _CELL_PARAMS)
    variant = resolve_one_variant(params.get("app"))
    nranks = _int_param(params, "nranks", 8, 1, MAX_NRANKS)
    seed = _int_param(params, "seed", 7, 0, 2**31 - 1)
    return Prepared(
        kind="study-cell",
        key_fields={**_variant_fields(variant),
                    "nranks": nranks, "seed": seed},
        worker=study_cell_task, task=(variant, nranks, seed))


_LINT_PARAMS = ("app", "nranks", "seed", "rules")


def lint_task(task: tuple) -> dict:
    """(variant, nranks, seed, rules|None) -> lint report document."""
    from repro.errors import LintError
    from repro.lint import lint_variant
    from repro.lint.reporters import report_to_dict

    variant, nranks, seed, rules = task
    try:
        report = lint_variant(variant, nranks=nranks, seed=seed,
                              rules=list(rules) if rules else None)
    except LintError as exc:
        # unknown rule names surface as a bad request, not a crash;
        # the server maps ValueError subclasses to bad_request
        raise BadRequest(str(exc)) from exc
    doc = report_to_dict(report)
    doc["errors"] = len(report.errors)
    return doc


def prepare_lint(params: dict) -> Prepared:
    _check_unknown(params, _LINT_PARAMS)
    variant = resolve_one_variant(params.get("app"))
    nranks = _int_param(params, "nranks", 8, 1, MAX_NRANKS)
    seed = _int_param(params, "seed", 7, 0, 2**31 - 1)
    rules = _name_list(params, "rules")
    if rules is not None:
        rules = sorted(set(rules))
    return Prepared(
        kind="lint-cell",
        key_fields={**_variant_fields(variant), "nranks": nranks,
                    "seed": seed, "rules": rules},
        worker=lint_task, task=(variant, nranks, seed,
                                tuple(rules) if rules else None))


_ADVISE_PARAMS = ("app", "nranks", "seed", "semantics")
_ADVISE_SEMANTICS = ("session", "commit")


def advise_task(task: tuple) -> dict:
    """(variant, nranks, seed, semantics) -> repair-advice document."""
    from repro.core.advisor import suggest_fixes
    from repro.core.report import analyze
    from repro.core.semantics import Semantics

    variant, nranks, seed, semantics_name = task
    trace = variant.run(nranks=nranks, seed=seed)
    report = analyze(trace)
    conflicts = report.conflicts(Semantics[semantics_name.upper()])
    fixes = suggest_fixes(conflicts)
    return {
        "label": variant.label,
        "nranks": nranks,
        "seed": seed,
        "semantics": semantics_name,
        "conflicts": len(conflicts),
        "fixes": [{
            "kind": str(f.kind),
            "path": f.path,
            "writer_rank": f.writer_rank,
            "reader_rank": f.reader_rank,
            "after_func": f.after_func,
            "after_time": f.after_time,
            "library_side": f.library_side,
            "conflicts_resolved": f.conflicts_resolved,
            "summary": f.summary,
        } for f in fixes],
    }


def prepare_advise(params: dict) -> Prepared:
    _check_unknown(params, _ADVISE_PARAMS)
    variant = resolve_one_variant(params.get("app"))
    nranks = _int_param(params, "nranks", 8, 1, MAX_NRANKS)
    seed = _int_param(params, "seed", 7, 0, 2**31 - 1)
    semantics = params.get("semantics", "session")
    if semantics not in _ADVISE_SEMANTICS:
        raise BadRequest(f"'semantics' must be one of "
                         f"{', '.join(_ADVISE_SEMANTICS)}")
    return Prepared(
        kind="advise-cell",
        key_fields={**_variant_fields(variant), "nranks": nranks,
                    "seed": seed, "semantics": semantics},
        worker=advise_task, task=(variant, nranks, seed, semantics))


_CHAOS_PARAMS = ("app", "nranks", "seed", "plans")


def prepare_chaos(params: dict) -> Prepared:
    """Chaos variant: the fault-matrix audit for one configuration.

    Keyed identically to ``study chaos`` cells (plans, semantics and
    stripe size included), sharing the batch CLI's cache entries.
    """
    from repro.pfs.chaos import (
        CHAOS_SEMANTICS,
        CHAOS_STRIPE_SIZE,
        default_fault_plans,
    )
    from repro.study.parallel import chaos_variant_task

    _check_unknown(params, _CHAOS_PARAMS)
    variant = resolve_one_variant(params.get("app"))
    nranks = _int_param(params, "nranks", 4, 1, MAX_NRANKS)
    seed = _int_param(params, "seed", 7, 0, 2**31 - 1)
    plans = default_fault_plans(seed)
    wanted = _name_list(params, "plans")
    if wanted is not None:
        unknown = sorted(set(wanted) - {p.name for p in plans})
        if unknown:
            raise BadRequest(f"unknown plan(s): {', '.join(unknown)}")
        plans = [p for p in plans if p.name in set(wanted)]
    plan_names = tuple(p.name for p in plans)
    sem_names = tuple(s.name.lower() for s in CHAOS_SEMANTICS)
    return Prepared(
        kind="chaos-variant",
        key_fields={**_variant_fields(variant), "nranks": nranks,
                    "seed": seed, "plans": list(plan_names),
                    "semantics": list(sem_names),
                    "stripe": CHAOS_STRIPE_SIZE},
        worker=chaos_variant_task,
        task=(variant, nranks, seed, plan_names, sem_names,
              CHAOS_STRIPE_SIZE))


_STATICCHECK_PARAMS = ("app", "nranks", "seed")


def prepare_staticcheck(params: dict) -> Prepared:
    """Static conflict prediction vs the dynamic detector.

    Keyed identically to ``study staticcheck`` cells, so the service
    and the batch soundness matrix share one content-addressed store.
    """
    from repro.study.parallel import staticcheck_task

    _check_unknown(params, _STATICCHECK_PARAMS)
    variant = resolve_one_variant(params.get("app"))
    nranks = _int_param(params, "nranks", 8, 1, MAX_NRANKS)
    seed = _int_param(params, "seed", 7, 0, 2**31 - 1)
    return Prepared(
        kind="staticcheck-cell",
        key_fields={**_variant_fields(variant),
                    "nranks": nranks, "seed": seed},
        worker=staticcheck_task, task=(variant, nranks, seed))


_SLEEP_PARAMS = ("seconds", "token")


def sleep_task(task: tuple) -> dict:
    """(seconds, token) -> sleep then echo; debug-only latency probe."""
    seconds, token = task
    time.sleep(seconds)
    return {"slept_s": seconds, "token": token}


def prepare_sleep(params: dict) -> Prepared:
    _check_unknown(params, _SLEEP_PARAMS)
    seconds = params.get("seconds", 0.0)
    if not isinstance(seconds, (int, float)) \
            or isinstance(seconds, bool) \
            or not 0.0 <= seconds <= MAX_SLEEP_S:
        raise BadRequest(
            f"'seconds' must be a number in [0, {MAX_SLEEP_S:g}]")
    token = params.get("token", 0)
    if not isinstance(token, (str, int)) or isinstance(token, bool):
        raise BadRequest("'token' must be a string or integer")
    return Prepared(
        kind="serve-sleep",
        key_fields={"seconds": seconds, "token": token},
        worker=sleep_task, task=(float(seconds), token))


# -- registry ------------------------------------------------------------------

ENDPOINTS: dict[str, Endpoint] = {
    ep.name: ep for ep in (
        Endpoint("cell",
                 "conflict/semantics summary for one configuration",
                 prepare=prepare_cell, param_names=_CELL_PARAMS),
        Endpoint("lint",
                 "static consistency-semantics lint of one "
                 "configuration",
                 prepare=prepare_lint, param_names=_LINT_PARAMS),
        Endpoint("advise",
                 "conflict-repair insertion points for one "
                 "configuration",
                 prepare=prepare_advise, param_names=_ADVISE_PARAMS),
        Endpoint("chaos",
                 "fault-matrix crash-recovery audit for one "
                 "configuration",
                 prepare=prepare_chaos, param_names=_CHAOS_PARAMS),
        Endpoint("staticcheck",
                 "static conflict prediction cross-validated against "
                 "the dynamic detector",
                 prepare=prepare_staticcheck,
                 param_names=_STATICCHECK_PARAMS),
        Endpoint("healthz", "liveness + admission-queue state",
                 inline=True),
        Endpoint("fingerprint",
                 "code fingerprint scoping every cache key",
                 inline=True),
        Endpoint("metrics", "live server.* metrics snapshot",
                 inline=True),
        Endpoint("sleep", "debug latency probe (requires --debug)",
                 prepare=prepare_sleep, debug=True,
                 param_names=_SLEEP_PARAMS),
    )
}


def endpoint_catalog(*, debug: bool = False) -> list[dict]:
    """JSON-able endpoint listing (what ``healthz`` advertises)."""
    return [{"name": ep.name, "summary": ep.summary,
             "inline": ep.inline, "params": list(ep.param_names)}
            for ep in ENDPOINTS.values() if debug or not ep.debug]


def request_key(endpoint: str, params: dict) -> str:
    """Cache/coalescing key for one raw ``(endpoint, params)`` pair.

    Raises :class:`BadRequest` exactly when the server would reject
    the request; for accepted requests the key is
    ``study.cache.cache_key`` over the endpoint's normalized fields,
    so two requests share a key iff they denote the same analysis.
    """
    ep = ENDPOINTS.get(endpoint)
    if ep is None or ep.prepare is None:
        raise BadRequest(f"endpoint {endpoint!r} has no cacheable key")
    return ep.prepare(params).key


__all__ = [
    "ENDPOINTS",
    "Endpoint",
    "MAX_NRANKS",
    "Prepared",
    "advise_task",
    "endpoint_catalog",
    "lint_task",
    "prepare_advise",
    "prepare_cell",
    "prepare_chaos",
    "prepare_lint",
    "prepare_sleep",
    "prepare_staticcheck",
    "request_key",
    "resolve_one_variant",
    "sleep_task",
]
