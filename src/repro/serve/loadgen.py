"""Seeded closed-loop load generator for the analysis service.

Models the service's expected traffic shape: many users repeatedly
asking for the semantics verdict of a *popular few* configurations —
a zipf-skewed popularity curve over the cell catalogue, the regime
where the read-through cache and in-flight coalescing pay.

Determinism contract: the request **schedule** (which client issues
which request in which order) is a pure function of the spec's seed —
per-client streams are seeded ``f"{seed}:{client}"``, so adding a
client never reshuffles another's sequence.  The report separates
deterministic fields (schedule digest, request mix, outcome counts)
from measured ones: everything nondeterministic lives under the
``"timing"`` key, and two runs with the same seed against a healthy
server produce byte-identical reports once ``"timing"`` is dropped
(pinned by ``tests/serve/test_client_loadgen.py``).

Closed loop: each simulated client waits for its response before
issuing the next request, so offered load self-limits to
``clients / mean_latency`` — the backpressure-friendly way to probe a
bounded admission queue.
"""

from __future__ import annotations

import asyncio
import hashlib
import random
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.serve import protocol
from repro.serve.client import DEFAULT_RETRY, ServeClient, ServeConnectionError

#: latency quantiles the report carries, in report order
PERCENTILES = (0.50, 0.90, 0.99)


@dataclass(frozen=True)
class LoadSpec:
    """Shape of one load run; every field feeds the schedule or keys."""

    clients: int = 4
    requests_per_client: int = 25
    seed: int = 7
    #: zipf skew exponent: weight of catalogue rank r is (r+1)**-s
    zipf_s: float = 1.2
    #: ranks per requested cell (small: this is a query, not a campaign)
    nranks: int = 2
    #: per-request deadline budget shipped to the server
    deadline_s: float | None = 60.0

    def validate(self) -> None:
        if self.clients < 1:
            raise ValueError("clients must be >= 1")
        if self.requests_per_client < 1:
            raise ValueError("requests_per_client must be >= 1")
        if self.zipf_s < 0:
            raise ValueError("zipf_s must be >= 0")


def default_catalog(*, nranks: int = 2,
                    seed: int = 7) -> list[tuple[str, dict]]:
    """Every registered configuration as a ``cell`` request."""
    from repro.apps.registry import all_variants

    return [("cell", {"app": v.label, "nranks": nranks, "seed": seed})
            for v in all_variants()]


def zipf_weights(n: int, s: float) -> list[float]:
    """Unnormalized zipf pmf over catalogue ranks 0..n-1."""
    return [(rank + 1) ** -s for rank in range(n)]


def build_schedule(catalog: Sequence[tuple[str, dict]],
                   spec: LoadSpec) -> list[list[int]]:
    """Per-client catalogue-index sequences, seeded and stable.

    ``random.Random`` with a string seed hashes deterministically, and
    each client draws from its own stream — the schedule is a pure
    function of ``(catalog order, spec.seed, spec.zipf_s, counts)``.
    """
    weights = zipf_weights(len(catalog), spec.zipf_s)
    schedule = []
    for client in range(spec.clients):
        rng = random.Random(f"{spec.seed}:{client}")
        schedule.append(rng.choices(range(len(catalog)),
                                    weights=weights,
                                    k=spec.requests_per_client))
    return schedule


def schedule_digest(catalog: Sequence[tuple[str, dict]],
                    schedule: list[list[int]]) -> str:
    """SHA-256 over the canonical schedule — the determinism witness."""
    doc = {"catalog": [[ep, params] for ep, params in catalog],
           "schedule": schedule}
    return hashlib.sha256(
        protocol.canonical_json(doc).encode()).hexdigest()


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(q * len(sorted_values) + 0.5) - 1))
    return sorted_values[rank]


async def _run_client(host: str, port: int, client_id: int,
                      catalog: Sequence[tuple[str, dict]],
                      sequence: list[int], spec: LoadSpec,
                      outcomes: dict[str, int],
                      latencies: list[float],
                      client_factory: Callable | None = None) -> None:
    if client_factory is not None:
        client = client_factory(client_id)
    else:
        client = ServeClient(host=host, port=port, retry=DEFAULT_RETRY,
                             seed=spec.seed * 1000003 + client_id)
    try:
        for index in sequence:
            endpoint, params = catalog[index]
            t0 = time.perf_counter()
            try:
                response = await client.request(
                    endpoint, params, deadline_s=spec.deadline_s)
            except ServeConnectionError:
                outcome = "unreachable"
            else:
                code = protocol.response_error_code(response)
                outcome = "ok" if code is None else code
            latencies.append(time.perf_counter() - t0)
            outcomes[outcome] = outcomes.get(outcome, 0) + 1
    finally:
        await client.close()


async def run_load(host: str, port: int, spec: LoadSpec,
                   catalog: Sequence[tuple[str, dict]] | None = None,
                   *, client_factory: Callable | None = None) -> dict:
    """Drive the schedule against a live server; return the report.

    ``client_factory(client_id)`` substitutes a different per-client
    requester — anything with ``await request(endpoint, params,
    deadline_s=...)`` and ``await close()`` — which is how the cluster
    loadtest drives the same seeded schedule through the
    membership-routed failover client instead of one socket.  With a
    factory, ``host``/``port`` only label the report.
    """
    spec.validate()
    if catalog is None:
        catalog = default_catalog(nranks=spec.nranks, seed=spec.seed)
    schedule = build_schedule(catalog, spec)
    request_counts: dict[int, int] = {}
    for sequence in schedule:
        for index in sequence:
            request_counts[index] = request_counts.get(index, 0) + 1

    outcomes: dict[str, int] = {}
    latencies: list[float] = []
    t0 = time.perf_counter()
    await asyncio.gather(*(
        _run_client(host, port, client_id, catalog, sequence, spec,
                    outcomes, latencies,
                    client_factory=client_factory)
        for client_id, sequence in enumerate(schedule)))
    wall = time.perf_counter() - t0

    server_counters: dict[str, int] = {}
    try:
        if client_factory is not None:
            probe = client_factory(spec.clients)
        else:
            probe = ServeClient(host=host, port=port, seed=spec.seed)
        response = await probe.request("metrics")
        await probe.close()
        if response.get("ok"):
            metrics = response["result"]["metrics"]
            for name in ("server.requests", "server.computations",
                         "server.coalesced", "server.cache.hits"):
                doc = metrics.get(name)
                if doc is not None:
                    server_counters[name] = doc["value"]
    except ServeConnectionError:
        pass

    total = sum(outcomes.values())
    latencies.sort()
    return {
        "loadgen": {
            "clients": spec.clients,
            "requests_per_client": spec.requests_per_client,
            "seed": spec.seed,
            "zipf_s": spec.zipf_s,
            "nranks": spec.nranks,
            "deadline_s": spec.deadline_s,
            "catalog_size": len(catalog),
        },
        "schedule": {
            "digest": schedule_digest(catalog, schedule),
            "requests": total,
            "unique_cells": len(request_counts),
            # the zipf head: catalogue rank -> times requested
            "popularity": [[index, request_counts[index]]
                           for index in sorted(
                               request_counts,
                               key=lambda i: (-request_counts[i], i))
                           [:5]],
        },
        "outcomes": dict(sorted(outcomes.items())),
        "ok": set(outcomes) <= {"ok"} and total > 0,
        "timing": {
            "wall_s": round(wall, 4),
            "rps": round(total / wall, 2) if wall else 0.0,
            "latency_s": {
                **{f"p{int(q * 100)}": round(_percentile(latencies, q), 5)
                   for q in PERCENTILES},
                "mean": round(sum(latencies) / len(latencies), 5)
                if latencies else 0.0,
                "max": round(max(latencies), 5) if latencies else 0.0,
            },
            "server": server_counters,
        },
    }


def run_load_sync(host: str, port: int, spec: LoadSpec,
                  catalog: Sequence[tuple[str, dict]] | None = None,
                  *, client_factory: Callable | None = None) -> dict:
    """Blocking wrapper (the ``study loadtest`` CLI path)."""
    return asyncio.run(run_load(host, port, spec, catalog,
                                client_factory=client_factory))


def report_text(report: dict) -> str:
    """Human rendering of one load report."""
    lg, timing = report["loadgen"], report["timing"]
    lat = timing["latency_s"]
    lines = [
        f"loadgen: {lg['clients']} clients x "
        f"{lg['requests_per_client']} requests, seed {lg['seed']}, "
        f"zipf_s {lg['zipf_s']:g}, catalog {lg['catalog_size']} cells",
        f"schedule: {report['schedule']['requests']} requests over "
        f"{report['schedule']['unique_cells']} unique cells "
        f"(digest {report['schedule']['digest'][:12]})",
        "outcomes: " + ", ".join(
            f"{name}={count}"
            for name, count in report["outcomes"].items()),
        f"throughput: {timing['rps']} req/s over {timing['wall_s']}s",
        f"latency: p50 {lat['p50']}s  p90 {lat['p90']}s  "
        f"p99 {lat['p99']}s  max {lat['max']}s",
    ]
    server = timing.get("server") or {}
    if server:
        lines.append("server: " + ", ".join(
            f"{name.removeprefix('server.')}={value}"
            for name, value in sorted(server.items())))
    lines.append("result: " + ("ok" if report["ok"] else "FAILURES"))
    return "\n".join(lines)


__all__ = [
    "LoadSpec",
    "PERCENTILES",
    "build_schedule",
    "default_catalog",
    "report_text",
    "run_load",
    "run_load_sync",
    "schedule_digest",
    "zipf_weights",
]
