"""Wire protocol of the consistency-analysis service.

One frame is a 4-byte big-endian length prefix followed by a
canonical-JSON document (sorted keys, explicit separators, no NaN) —
the same serialization discipline :mod:`repro.study.cache` uses for
key material, so what travels on the wire is exactly what hashes and
caches deterministically.

Requests name an endpoint, carry a JSON-object parameter document, and
may set a per-request deadline budget in seconds.  Responses either
succeed (``ok: true`` with a ``result`` document plus provenance flags
``cached``/``coalesced``) or fail with one of four error codes:

* ``bad_request`` — the frame or request is malformed, the endpoint is
  unknown, or a parameter failed validation.  The caller's fault;
  never retried.
* ``overloaded``  — the admission queue is full; explicit backpressure.
  Retryable after backoff.
* ``deadline``    — the request's deadline budget expired before the
  analysis finished.  The computation itself keeps running and lands
  in the cache, so a retry is usually a cheap hit.
* ``internal``    — the analysis raised.  A bug (or a poisoned cell);
  reported, never hidden behind a hang.

Framing errors degrade, they never crash: an oversized or garbage
frame gets a ``bad_request`` response and (when the stream cannot be
resynchronized) a closed connection.
"""

from __future__ import annotations

import asyncio
import json
import struct
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ReproError

#: protocol version; bumped only on incompatible frame/document changes
PROTOCOL_VERSION = 1

#: frame-length prefix: 4-byte unsigned big-endian
_HEADER = struct.Struct(">I")
HEADER_SIZE = _HEADER.size

#: default ceiling on one frame's body (chaos payloads are < 100 KiB;
#: this leaves two orders of magnitude of headroom)
MAX_FRAME = 8 * 1024 * 1024

# -- error taxonomy ------------------------------------------------------------

#: caller's fault: malformed frame, unknown endpoint, bad parameter
ERR_BAD_REQUEST = "bad_request"
#: explicit backpressure: the admission queue is full, retry later
ERR_OVERLOADED = "overloaded"
#: the per-request deadline budget expired before the result was ready
ERR_DEADLINE = "deadline"
#: the analysis raised; a server-side bug, never silently swallowed
ERR_INTERNAL = "internal"

ERROR_CODES = frozenset(
    {ERR_BAD_REQUEST, ERR_OVERLOADED, ERR_DEADLINE, ERR_INTERNAL})

#: error codes a client may retry (with backoff); the rest are final
RETRYABLE_CODES = frozenset({ERR_OVERLOADED})


class ProtocolError(ReproError):
    """A frame or document that violates the wire protocol."""


class FrameTooLarge(ProtocolError):
    """Length prefix exceeds the frame ceiling; the stream is suspect."""


class BadRequest(ProtocolError):
    """A decodable frame whose request document failed validation."""


def canonical_json(doc: dict) -> str:
    """The one serialization both sides agree on, byte for byte."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


# -- framing -------------------------------------------------------------------


def encode_frame(doc: dict) -> bytes:
    """Length-prefixed canonical-JSON frame for ``doc``."""
    body = canonical_json(doc).encode()
    if len(body) > MAX_FRAME:
        raise FrameTooLarge(
            f"frame body {len(body)} bytes exceeds {MAX_FRAME}")
    return _HEADER.pack(len(body)) + body


def decode_frame(data: bytes) -> dict:
    """Inverse of :func:`encode_frame` (header included), for tests."""
    if len(data) < HEADER_SIZE:
        raise ProtocolError(f"truncated header: {len(data)} bytes")
    (length,) = _HEADER.unpack_from(data)
    body = data[HEADER_SIZE:]
    if length != len(body):
        raise ProtocolError(
            f"length prefix {length} != body {len(body)} bytes")
    return decode_body(body)


def decode_body(body: bytes) -> dict:
    """Parse one frame body into a JSON object, or raise ProtocolError."""
    try:
        doc = json.loads(body.decode())
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"frame body is not JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got "
            f"{type(doc).__name__}")
    return doc


async def read_frame(reader: asyncio.StreamReader, *,
                     max_frame: int = MAX_FRAME) -> dict:
    """Read one frame; ``EOFError`` at a clean end of stream.

    Raises :class:`FrameTooLarge` for an over-limit length prefix
    (garbage bytes land here too: random headers decode to absurd
    lengths) and :class:`ProtocolError` for non-JSON bodies.
    """
    header = await reader.read(HEADER_SIZE)
    if not header:
        raise EOFError("connection closed")
    if len(header) < HEADER_SIZE:
        raise ProtocolError(f"truncated header: {len(header)} bytes")
    (length,) = _HEADER.unpack(header)
    if length > max_frame:
        raise FrameTooLarge(
            f"frame of {length} bytes exceeds limit {max_frame}")
    body = await reader.readexactly(length)
    return decode_body(body)


async def write_frame(writer: asyncio.StreamWriter, doc: dict) -> None:
    writer.write(encode_frame(doc))
    await writer.drain()


# -- requests ------------------------------------------------------------------


@dataclass(frozen=True)
class Request:
    """One validated request: endpoint + parameters + deadline budget."""

    endpoint: str
    params: dict = field(default_factory=dict)
    id: str | int | None = None
    #: seconds this request may spend server-side; ``None`` = server
    #: default.  The budget covers queueing *and* computation.
    deadline_s: float | None = None

    def to_dict(self) -> dict:
        doc: dict[str, Any] = {"v": PROTOCOL_VERSION,
                               "endpoint": self.endpoint,
                               "params": self.params}
        if self.id is not None:
            doc["id"] = self.id
        if self.deadline_s is not None:
            doc["deadline_s"] = self.deadline_s
        return doc


def parse_request(doc: dict) -> Request:
    """Validate a decoded frame into a :class:`Request`.

    Raises :class:`BadRequest` with a caller-facing message on any
    violation; the server maps that straight to a ``bad_request``
    response.
    """
    version = doc.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise BadRequest(f"unsupported protocol version {version!r}; "
                         f"this server speaks {PROTOCOL_VERSION}")
    endpoint = doc.get("endpoint")
    if not isinstance(endpoint, str) or not endpoint:
        raise BadRequest("request must name a string 'endpoint'")
    params = doc.get("params", {})
    if not isinstance(params, dict):
        raise BadRequest("'params' must be a JSON object")
    req_id = doc.get("id")
    if req_id is not None and not isinstance(req_id, (str, int)):
        raise BadRequest("'id' must be a string or integer")
    deadline = doc.get("deadline_s")
    if deadline is not None:
        if not isinstance(deadline, (int, float)) \
                or isinstance(deadline, bool) or deadline <= 0:
            raise BadRequest("'deadline_s' must be a positive number")
        deadline = float(deadline)
    return Request(endpoint=endpoint, params=params, id=req_id,
                   deadline_s=deadline)


# -- responses -----------------------------------------------------------------


def ok_response(req_id: str | int | None, result: dict, *,
                cached: bool = False, coalesced: bool = False) -> dict:
    return {"v": PROTOCOL_VERSION, "id": req_id, "ok": True,
            "result": result, "cached": cached, "coalesced": coalesced}


def error_response(req_id: str | int | None, code: str,
                   message: str) -> dict:
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    return {"v": PROTOCOL_VERSION, "id": req_id, "ok": False,
            "error": {"code": code, "message": message}}


def response_error_code(doc: dict) -> str | None:
    """The error code of a response document, or ``None`` if it is ok."""
    if doc.get("ok"):
        return None
    error = doc.get("error")
    if isinstance(error, dict) and error.get("code") in ERROR_CODES:
        return error["code"]
    return ERR_INTERNAL


__all__ = [
    "BadRequest",
    "ERROR_CODES",
    "ERR_BAD_REQUEST",
    "ERR_DEADLINE",
    "ERR_INTERNAL",
    "ERR_OVERLOADED",
    "FrameTooLarge",
    "HEADER_SIZE",
    "MAX_FRAME",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RETRYABLE_CODES",
    "Request",
    "canonical_json",
    "decode_body",
    "decode_frame",
    "encode_frame",
    "error_response",
    "ok_response",
    "parse_request",
    "read_frame",
    "response_error_code",
    "write_frame",
]
