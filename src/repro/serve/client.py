"""Retrying client for the analysis service.

Reuses the retry discipline the PFS clients apply against failing
servers (:class:`repro.pfs.config.RetryPolicy`): exponential backoff
``base_delay * backoff**attempt`` stretched by a seeded jitter draw,
giving up after ``max_attempts``.  The same policy object, the same
``delay(attempt, u)`` arithmetic — only the clock is real here instead
of virtual, so the defaults are rescaled to network time.

Retried conditions:

* connection failures (refused, reset, closed mid-exchange) — the
  connection is re-established and the request reissued;
* ``overloaded`` responses — explicit backpressure; backing off is the
  protocol-mandated reaction.

``bad_request`` is never retried (the request will not get better),
and ``deadline``/``internal`` are surfaced to the caller, who knows
whether a retry makes sense (a ``deadline`` retry is usually a cheap
cache hit — the server kept computing).
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.pfs.config import RetryPolicy
from repro.serve import protocol

#: the PFS policy rescaled to wall-clock networking: five attempts
#: backing off 50 ms, 100 ms, 200 ms, 400 ms (plus jitter)
DEFAULT_RETRY = RetryPolicy(max_attempts=5, base_delay=0.05,
                            backoff=2.0, jitter=0.1)

#: slack added to ``deadline_s`` for the client-side exchange bound:
#: the server is allowed to spend the full deadline computing before
#: answering ``deadline``, so the client must wait a little longer
#: before declaring the connection dead
DEADLINE_GRACE_S = 2.0


#: responses a *failover-aware* caller treats as "go ask another
#: node" rather than "retry here": explicit backpressure and expired
#: deadlines — both mean this node cannot answer in time, and in a
#: replicated cluster some other replica usually can
FAILOVER_CODES = frozenset({protocol.ERR_OVERLOADED,
                            protocol.ERR_DEADLINE})


def is_failover_response(doc: dict) -> bool:
    """Should a cluster client try the next replica after ``doc``?

    True for ``overloaded``/``deadline`` errors, and for a successful
    ``healthz`` whose status is not ``"ok"`` (``degraded`` or
    ``draining``) — the server's own advice to route elsewhere.
    """
    code = protocol.response_error_code(doc)
    if code in FAILOVER_CODES:
        return True
    result = doc.get("result")
    if isinstance(result, dict) and "status" in result \
            and ("queue_limit" in result or "role" in result):
        # a healthz document (server or cluster-manager shaped) —
        # not an arbitrary payload that happens to carry 'status'
        return result.get("status") != "ok"
    return False


class ServeConnectionError(ReproError):
    """Could not complete an exchange within the retry budget."""


@dataclass
class ServeClient:
    """One connection-reusing client endpoint.

    Not thread-safe and not for concurrent use of a single instance:
    one client = one closed-loop requester (the load generator gives
    each simulated user its own client).  ``seed`` feeds the jitter
    stream, keeping backoff schedules reproducible run to run.
    """

    host: str = "127.0.0.1"
    port: int = 0
    retry: RetryPolicy = field(default_factory=lambda: DEFAULT_RETRY)
    seed: int = 0
    connect_timeout_s: float = 5.0
    _reader: asyncio.StreamReader | None = None
    _writer: asyncio.StreamWriter | None = None
    _rng: random.Random | None = None
    _next_id: int = 0

    def _jitter(self) -> float:
        if self._rng is None:
            self._rng = random.Random(self.seed)
        return self._rng.random()

    async def _ensure_connected(self) -> None:
        if self._writer is not None and not self._writer.is_closing():
            return
        self._reader, self._writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port),
            timeout=self.connect_timeout_s)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._reader = self._writer = None

    async def _exchange(self, doc: dict) -> dict:
        await self._ensure_connected()
        assert self._reader is not None and self._writer is not None
        await protocol.write_frame(self._writer, doc)
        try:
            return await protocol.read_frame(self._reader)
        except (EOFError, asyncio.IncompleteReadError) as exc:
            raise ConnectionResetError(
                "server closed the connection") from exc

    async def request(self, endpoint: str, params: dict | None = None,
                      *, deadline_s: float | None = None,
                      request_id: str | int | None = None) -> dict:
        """One request -> the final response document.

        Connection failures and ``overloaded`` responses are retried
        under the policy; exhausting it raises
        :class:`ServeConnectionError`.  Any other response — success
        or terminal error — is returned as-is.
        """
        if request_id is None:
            self._next_id += 1
            request_id = self._next_id
        doc = protocol.Request(endpoint=endpoint, params=params or {},
                               id=request_id,
                               deadline_s=deadline_s).to_dict()
        # when the caller set a deadline, bound the whole exchange by
        # it client-side too: a half-open connection (a SIGKILLed
        # server whose port is still held open by its worker children)
        # otherwise blocks `read_frame` forever
        bound = None if deadline_s is None \
            else deadline_s + DEADLINE_GRACE_S
        attempt = 0
        last: str = "no attempt made"
        while attempt < self.retry.max_attempts:
            try:
                if bound is None:
                    response = await self._exchange(doc)
                else:
                    response = await asyncio.wait_for(
                        self._exchange(doc), timeout=bound)
            except (ConnectionError, OSError,
                    asyncio.TimeoutError) as exc:
                last = f"{type(exc).__name__}: {exc}"
                await self.close()
            else:
                code = protocol.response_error_code(response)
                if code not in protocol.RETRYABLE_CODES:
                    return response
                last = f"server answered {code!r}"
            attempt += 1
            if attempt >= self.retry.max_attempts:
                break
            await asyncio.sleep(
                self.retry.delay(attempt - 1, self._jitter()))
        raise ServeConnectionError(
            f"{endpoint} to {self.host}:{self.port} failed after "
            f"{attempt} attempt(s): {last}")

    async def __aenter__(self) -> "ServeClient":
        await self._ensure_connected()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()


def request_sync(host: str, port: int, endpoint: str,
                 params: dict | None = None, *,
                 deadline_s: float | None = None,
                 retry: RetryPolicy | None = None,
                 seed: int = 0) -> dict:
    """Blocking one-shot request (the ``study request`` CLI path)."""

    async def go() -> dict:
        client = ServeClient(host=host, port=port,
                             retry=retry or DEFAULT_RETRY, seed=seed)
        try:
            return await client.request(endpoint, params,
                                        deadline_s=deadline_s)
        finally:
            await client.close()

    return asyncio.run(go())


__all__ = [
    "DEADLINE_GRACE_S",
    "DEFAULT_RETRY",
    "FAILOVER_CODES",
    "ServeClient",
    "ServeConnectionError",
    "is_failover_response",
    "request_sync",
]
