"""repro.serve: the analysis pipeline as a queryable network service.

A zero-dependency (stdlib-only) asyncio TCP service exposing the
study's pure, content-addressed analyses — study cells, lint, repair
advice, chaos audits — as request/response queries with explicit
backpressure, per-request deadlines, in-flight coalescing, and
read-through reuse of ``.repro-cache/``.

Layers:

* :mod:`repro.serve.protocol` — length-prefixed canonical-JSON frames
  and the four-code error taxonomy;
* :mod:`repro.serve.handlers` — the endpoint registry, keyed
  identically to the batch CLI's cache entries;
* :mod:`repro.serve.server`   — the asyncio front end + process-pool
  back end;
* :mod:`repro.serve.client`   — a retrying client reusing the PFS
  retry discipline;
* :mod:`repro.serve.loadgen`  — a seeded, deterministic closed-loop
  load generator.

See ``docs/serving.md`` for the architecture and operational story.
"""

from repro.serve.client import ServeClient, ServeConnectionError, request_sync
from repro.serve.loadgen import LoadSpec, run_load, run_load_sync
from repro.serve.server import (
    AnalysisServer,
    ServeConfig,
    ServerHandle,
    start_background,
)

__all__ = [
    "AnalysisServer",
    "LoadSpec",
    "ServeClient",
    "ServeConfig",
    "ServeConnectionError",
    "ServerHandle",
    "request_sync",
    "run_load",
    "run_load_sync",
    "start_background",
]
