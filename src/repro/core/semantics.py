"""Consistency-model lattice and the PFS registry (paper §3, Table 1).

The four models form a strength order::

    STRONG  >  COMMIT  >  SESSION  >  EVENTUAL

A file system offering a model at least as strong as an application's
*requirement* runs that application correctly.  The requirement is the
weakest model under which the conflict detector reports nothing — with
the refinement from §6.3 that same-process (S) conflicts are harmless on
any PFS that orders a single process's own operations (all of Table 1
except BurstFS, and PLFS/PVFS2 whose overlapping-write behaviour is
undefined).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.conflicts import ConflictSet


class Semantics(enum.Enum):
    """PFS consistency-semantics categories, strongest first."""

    STRONG = 4
    COMMIT = 3
    SESSION = 2
    EVENTUAL = 1

    def __ge__(self, other: "Semantics") -> bool:
        return self.value >= other.value

    def __gt__(self, other: "Semantics") -> bool:
        return self.value > other.value

    def __le__(self, other: "Semantics") -> bool:
        return self.value <= other.value

    def __lt__(self, other: "Semantics") -> bool:
        return self.value < other.value

    @property
    def title(self) -> str:
        return self.name.capitalize() + " Consistency"

    def at_least(self, other: "Semantics") -> bool:
        """True when this model is at least as strong as ``other``."""
        return self.value >= other.value


#: Weakest-to-strongest iteration order used by the sufficiency search.
WEAKEST_FIRST = [Semantics.EVENTUAL, Semantics.SESSION, Semantics.COMMIT,
                 Semantics.STRONG]


@dataclass(frozen=True)
class FileSystemInfo:
    """One row of the Table 1 registry."""

    name: str
    semantics: Semantics
    #: does a read see the same process's own earlier write (program
    #: order)?  True for everything in the paper except BurstFS, and
    #: PLFS/PVFS2 where overlapping writes are undefined (§3.5).
    same_process_ordering: bool = True
    notes: str = ""


#: Table 1 of the paper: HPC file systems and their consistency semantics.
PFS_REGISTRY: tuple[FileSystemInfo, ...] = (
    FileSystemInfo("GPFS", Semantics.STRONG),
    FileSystemInfo("Lustre", Semantics.STRONG),
    FileSystemInfo("GekkoFS", Semantics.STRONG,
                   notes="relaxed metadata, strict data consistency"),
    FileSystemInfo("BeeGFS", Semantics.STRONG),
    FileSystemInfo("BatchFS", Semantics.STRONG,
                   notes="relaxed metadata, strict data consistency"),
    FileSystemInfo("OrangeFS", Semantics.STRONG, same_process_ordering=False,
                   notes="non-conflicting write semantics; overlapping "
                         "writes undefined (PVFS/PVFS2 lineage)"),
    FileSystemInfo("BSCFS", Semantics.COMMIT),
    FileSystemInfo("UnifyFS", Semantics.COMMIT,
                   notes="fsync or lamination acts as the commit"),
    FileSystemInfo("SymphonyFS", Semantics.COMMIT,
                   notes="fsync flushes and commits"),
    FileSystemInfo("BurstFS", Semantics.COMMIT, same_process_ordering=False,
                   notes="read after two same-process writes may return "
                         "either value"),
    FileSystemInfo("NFS", Semantics.SESSION),
    FileSystemInfo("AFS", Semantics.SESSION),
    FileSystemInfo("DDN IME", Semantics.SESSION),
    FileSystemInfo("Gfarm/BB", Semantics.SESSION),
    FileSystemInfo("PLFS", Semantics.EVENTUAL, same_process_ordering=False,
                   notes="overlapping-write outcome undefined even with "
                         "synchronization"),
    FileSystemInfo("echofs", Semantics.EVENTUAL,
                   notes="POSIX locally per node; global visibility on "
                         "transfer to the PFS"),
    FileSystemInfo("MarFS", Semantics.EVENTUAL),
)


def registry_by_semantics() -> dict[Semantics, list[str]]:
    """Table 1's grouping: semantics class -> file-system names."""
    out: dict[Semantics, list[str]] = {s: [] for s in Semantics}
    for fs in PFS_REGISTRY:
        out[fs.semantics].append(fs.name)
    return out


def find_filesystem(name: str) -> FileSystemInfo:
    for fs in PFS_REGISTRY:
        if fs.name.lower() == name.lower():
            return fs
    raise KeyError(f"unknown file system {name!r}")


def conflicts_matter(conflicts: "ConflictSet", *,
                     same_process_ordering: bool = True) -> bool:
    """Would the given conflict set break an application on such a PFS?

    With ``same_process_ordering`` (the common case), S conflicts are
    resolved by the file system itself and only D conflicts matter.
    """
    effective = (conflicts.cross_process_only if same_process_ordering
                 else conflicts)
    return bool(effective)


def weakest_sufficient_semantics(
        conflicts_by_model: dict[Semantics, "ConflictSet"], *,
        same_process_ordering: bool = True) -> Semantics:
    """The weakest model whose detected conflicts are harmless.

    ``conflicts_by_model`` maps each candidate model to the conflicts the
    detector found under it (STRONG may be omitted: it never conflicts).
    """
    for model in WEAKEST_FIRST:
        if model is Semantics.STRONG:
            return model
        cs = conflicts_by_model.get(model)
        if cs is None:
            continue
        if not conflicts_matter(
                cs, same_process_ordering=same_process_ordering):
            return model
    return Semantics.STRONG


def compatible_filesystems(
        conflicts_by_model: dict[Semantics, "ConflictSet"],
        registry: Iterable[FileSystemInfo] = PFS_REGISTRY,
        ) -> list[FileSystemInfo]:
    """Registry entries this application can run on correctly.

    Each file system is judged with its *own* same-process-ordering
    capability, so e.g. BurstFS is excluded for an app with WAW-S
    conflicts even though UnifyFS (same semantics class) is fine.
    """
    out = []
    for fs in registry:
        required = weakest_sufficient_semantics(
            conflicts_by_model,
            same_process_ordering=fs.same_process_ordering)
        if fs.semantics.at_least(required):
            out.append(fs)
    return out
