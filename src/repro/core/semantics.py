"""Consistency-model lattice and the PFS registry (paper §3, Table 1).

The paper's four POSIX models form a strength chain::

    STRONG  >  COMMIT  >  SESSION  >  EVENTUAL

A fifth model, :attr:`Semantics.OBJECT`, covers object-store backends
(immutable whole-object PUT/GET, no partial overwrite, no atomic
rename, list-after-write lag).  It differs from the POSIX chain *in
kind*: an object conflict exists at whole-object granularity, so the
lattice is a partial order ::

    STRONG > COMMIT > SESSION > OBJECT      (chain)
    STRONG > COMMIT > SESSION > EVENTUAL    (chain)
    EVENTUAL ⋈ OBJECT                       (incomparable)

``SESSION >= OBJECT`` holds because every byte-overlap pair is also a
whole-object pair and the object clearing condition (writer's session
closed before the reader's session opened) implies the session one
(writer closed before the reader's access) — an object-clean
application is therefore session-clean.  ``EVENTUAL`` and ``OBJECT``
dominate each other in neither direction: disjoint-byte concurrent
puts to one object are eventual-clean but object-conflicting, while a
byte overlap whose writer closed before the reader opened is
object-clean but eventual-conflicting.

A file system offering a model at least as strong as an application's
*requirement* runs that application correctly.  The requirement is the
weakest model under which the conflict detector reports nothing — with
the refinement from §6.3 that same-process (S) conflicts are harmless on
any PFS that orders a single process's own operations (all of Table 1
except BurstFS, and PLFS/PVFS2 whose overlapping-write behaviour is
undefined).  Because ``OBJECT`` sits off the chain, the sufficiency
search stays on the POSIX models and object stores are judged by the
separate :func:`object_store_compatible` predicate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.conflicts import ConflictSet


class Semantics(enum.Enum):
    """Consistency-semantics categories, strongest first.

    The comparison operators implement the *partial* strength order
    documented in the module docstring: the four POSIX models compare
    by value, ``OBJECT`` sits below ``SESSION`` but is incomparable
    with ``EVENTUAL`` (both ``>=`` directions are False there).
    """

    STRONG = 4
    COMMIT = 3
    SESSION = 2
    EVENTUAL = 1
    OBJECT = 0

    def __ge__(self, other: "Semantics") -> bool:
        if self is other:
            return True
        if other is Semantics.OBJECT:
            # SESSION (and everything above it) dominates OBJECT;
            # EVENTUAL does not
            return self is not Semantics.EVENTUAL
        if self is Semantics.OBJECT:
            return False
        return self.value >= other.value

    def __gt__(self, other: "Semantics") -> bool:
        return self is not other and self.__ge__(other)

    def __le__(self, other: "Semantics") -> bool:
        return other.__ge__(self)

    def __lt__(self, other: "Semantics") -> bool:
        return self is not other and other.__ge__(self)

    @property
    def title(self) -> str:
        if self is Semantics.OBJECT:
            return "Object-store Consistency"
        return self.name.capitalize() + " Consistency"

    def at_least(self, other: "Semantics") -> bool:
        """True when this model is at least as strong as ``other``."""
        return self.__ge__(other)


#: Weakest-to-strongest iteration order used by the sufficiency search.
#: Deliberately the POSIX chain only: OBJECT is off-chain (incomparable
#: with EVENTUAL), so "the weakest sufficient model" is answered on the
#: chain and object-store fitness separately by
#: :func:`object_store_compatible`.
WEAKEST_FIRST = [Semantics.EVENTUAL, Semantics.SESSION, Semantics.COMMIT,
                 Semantics.STRONG]


@dataclass(frozen=True)
class FileSystemInfo:
    """One row of the Table 1 registry."""

    name: str
    semantics: Semantics
    #: does a read see the same process's own earlier write (program
    #: order)?  True for everything in the paper except BurstFS, and
    #: PLFS/PVFS2 where overlapping writes are undefined (§3.5).
    same_process_ordering: bool = True
    notes: str = ""


#: Table 1 of the paper: HPC file systems and their consistency semantics.
PFS_REGISTRY: tuple[FileSystemInfo, ...] = (
    FileSystemInfo("GPFS", Semantics.STRONG),
    FileSystemInfo("Lustre", Semantics.STRONG),
    FileSystemInfo("GekkoFS", Semantics.STRONG,
                   notes="relaxed metadata, strict data consistency"),
    FileSystemInfo("BeeGFS", Semantics.STRONG),
    FileSystemInfo("BatchFS", Semantics.STRONG,
                   notes="relaxed metadata, strict data consistency"),
    FileSystemInfo("OrangeFS", Semantics.STRONG, same_process_ordering=False,
                   notes="non-conflicting write semantics; overlapping "
                         "writes undefined (PVFS/PVFS2 lineage)"),
    FileSystemInfo("BSCFS", Semantics.COMMIT),
    FileSystemInfo("UnifyFS", Semantics.COMMIT,
                   notes="fsync or lamination acts as the commit"),
    FileSystemInfo("SymphonyFS", Semantics.COMMIT,
                   notes="fsync flushes and commits"),
    FileSystemInfo("BurstFS", Semantics.COMMIT, same_process_ordering=False,
                   notes="read after two same-process writes may return "
                         "either value"),
    FileSystemInfo("NFS", Semantics.SESSION),
    FileSystemInfo("AFS", Semantics.SESSION),
    FileSystemInfo("DDN IME", Semantics.SESSION),
    FileSystemInfo("Gfarm/BB", Semantics.SESSION),
    FileSystemInfo("PLFS", Semantics.EVENTUAL, same_process_ordering=False,
                   notes="overlapping-write outcome undefined even with "
                         "synchronization"),
    FileSystemInfo("echofs", Semantics.EVENTUAL,
                   notes="POSIX locally per node; global visibility on "
                         "transfer to the PFS"),
    FileSystemInfo("MarFS", Semantics.EVENTUAL),
)

#: Object-store backends (the fifth model): immutable whole-object
#: PUT/GET, no partial overwrite, no atomic rename, list-after-write
#: lag.  Kept out of :data:`PFS_REGISTRY` so Table 1 stays the paper's
#: table; :data:`FULL_REGISTRY` is the combined judgement universe.
OBJECT_STORES: tuple[FileSystemInfo, ...] = (
    FileSystemInfo("S3", Semantics.OBJECT,
                   notes="immutable puts; read-after-write for new "
                         "keys, list-after-write lag"),
    FileSystemInfo("Ceph RGW", Semantics.OBJECT,
                   notes="S3-compatible gateway over RADOS"),
    FileSystemInfo("Swift", Semantics.OBJECT,
                   notes="eventually consistent container listings"),
)

#: Every file system the analyses can issue verdicts for.
FULL_REGISTRY: tuple[FileSystemInfo, ...] = PFS_REGISTRY + OBJECT_STORES


def registry_by_semantics() -> dict[Semantics, list[str]]:
    """Table 1's grouping (plus object stores): semantics -> names."""
    out: dict[Semantics, list[str]] = {s: [] for s in Semantics}
    for fs in FULL_REGISTRY:
        out[fs.semantics].append(fs.name)
    return out


def find_filesystem(name: str) -> FileSystemInfo:
    for fs in FULL_REGISTRY:
        if fs.name.lower() == name.lower():
            return fs
    raise KeyError(f"unknown file system {name!r}")


def conflicts_matter(conflicts: "ConflictSet", *,
                     same_process_ordering: bool = True) -> bool:
    """Would the given conflict set break an application on such a PFS?

    With ``same_process_ordering`` (the common case), S conflicts are
    resolved by the file system itself and only D conflicts matter.
    """
    effective = (conflicts.cross_process_only if same_process_ordering
                 else conflicts)
    return bool(effective)


def weakest_sufficient_semantics(
        conflicts_by_model: dict[Semantics, "ConflictSet"], *,
        same_process_ordering: bool = True) -> Semantics:
    """The weakest model whose detected conflicts are harmless.

    ``conflicts_by_model`` maps each candidate model to the conflicts the
    detector found under it (STRONG may be omitted: it never conflicts).
    """
    for model in WEAKEST_FIRST:
        if model is Semantics.STRONG:
            return model
        cs = conflicts_by_model.get(model)
        if cs is None:
            continue
        if not conflicts_matter(
                cs, same_process_ordering=same_process_ordering):
            return model
    return Semantics.STRONG


def object_store_compatible(
        conflicts_by_model: dict[Semantics, "ConflictSet"], *,
        same_process_ordering: bool = True) -> bool:
    """Can this application run correctly on an object-store backend?

    OBJECT is off the POSIX chain, so sufficiency is a predicate, not a
    position in :data:`WEAKEST_FIRST`: the app is object-store safe iff
    the whole-object conflict detector found nothing that matters.
    Without an OBJECT entry in ``conflicts_by_model`` the answer is a
    conservative ``False`` — absence of analysis is not cleanliness.
    """
    cs = conflicts_by_model.get(Semantics.OBJECT)
    if cs is None:
        return False
    return not conflicts_matter(
        cs, same_process_ordering=same_process_ordering)


def compatible_filesystems(
        conflicts_by_model: dict[Semantics, "ConflictSet"],
        registry: Iterable[FileSystemInfo] = FULL_REGISTRY,
        ) -> list[FileSystemInfo]:
    """Registry entries this application can run on correctly.

    Each file system is judged with its *own* same-process-ordering
    capability, so e.g. BurstFS is excluded for an app with WAW-S
    conflicts even though UnifyFS (same semantics class) is fine.
    Object-store rows are judged by :func:`object_store_compatible`
    rather than chain position.
    """
    out = []
    for fs in registry:
        if fs.semantics is Semantics.OBJECT:
            if object_store_compatible(
                    conflicts_by_model,
                    same_process_ordering=fs.same_process_ordering):
                out.append(fs)
            continue
        required = weakest_sufficient_semantics(
            conflicts_by_model,
            same_process_ordering=fs.same_process_ordering)
        if fs.semantics.at_least(required):
            out.append(fs)
    return out
