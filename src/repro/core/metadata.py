"""Metadata-operation usage analysis (paper §6.4, Figure 3).

For every POSIX metadata/utility operation observed in a trace, report
which layer issued it, bucketed the way the paper's Figure 3 does:
the MPI library (our MPI-IO layer), HDF5, or "application / other
library" (which absorbs NetCDF, ADIOS, and Silo since Recorder does not
trace those)."""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field

from repro.tracer.events import Layer, METADATA_OPS
from repro.tracer.trace import Trace


class LayerGroup(str, enum.Enum):
    """Figure 3's issuer buckets."""

    MPI = "MPI"
    HDF5 = "HDF5"
    APPLICATION = "application/other"

    def __str__(self) -> str:
        return self.value


def group_of(issuer: Layer) -> LayerGroup:
    if issuer in (Layer.MPI, Layer.MPIIO):
        return LayerGroup.MPI
    if issuer is Layer.HDF5:
        return LayerGroup.HDF5
    return LayerGroup.APPLICATION


@dataclass
class MetadataUsage:
    """Which metadata ops a run used, and who issued them."""

    #: op name -> issuer groups observed
    ops: dict[str, set[LayerGroup]] = field(default_factory=dict)
    #: (op name, group) -> call count
    counts: dict[tuple[str, LayerGroup], int] = field(
        default_factory=lambda: defaultdict(int))

    @property
    def op_names(self) -> list[str]:
        return sorted(self.ops)

    def used_by(self, op: str) -> set[LayerGroup]:
        return self.ops.get(op, set())

    def count(self, op: str, group: LayerGroup | None = None) -> int:
        if group is not None:
            return self.counts.get((op, group), 0)
        return sum(v for (name, _), v in self.counts.items() if name == op)


def metadata_usage(trace: Trace) -> MetadataUsage:
    """Collect Figure 3's (operation × issuing layer) usage for one run."""
    usage = MetadataUsage()
    # lint: allow-per-op-loop (metadata ops are sparse; object path)
    for rec in trace.records:
        if rec.layer != Layer.POSIX or rec.func not in METADATA_OPS:
            continue
        grp = group_of(rec.issuer)
        usage.ops.setdefault(rec.func, set()).add(grp)
        usage.counts[(rec.func, grp)] += 1
    return usage


def unused_operations(usage: MetadataUsage) -> list[str]:
    """Monitored metadata ops the run never called (§6.4's observation
    that most of the POSIX metadata surface goes unused)."""
    return sorted(METADATA_OPS - set(usage.ops))
