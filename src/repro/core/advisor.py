"""Conflict-repair advice (paper §4.1).

    "A programmer running the application on a PFS with weak consistency
    can prevent the conflicts by inserting commit operations at suitable
    points, or the designer of a parallel I/O library can insert commit
    operations automatically."

This module turns a :class:`~repro.core.conflicts.ConflictSet` into a
deduplicated list of insertion points:

* for a **commit**-semantics conflict: insert a commit (``fsync``) on the
  writer's descriptor right after the first access of the pair;
* for a **session**-semantics conflict: additionally, the second process
  must re-open the file after the writer's commit/close — so the advice
  pairs a writer-side close/flush with a reader-side reopen;
* conflicts attributed to an I/O library layer (the issuing layer of the
  first access is not the application) are labelled as library-side
  fixes, matching the paper's observation that most conflicts come from
  library metadata and "can be avoided with little effort".

Advice is *sound by construction*: applying a suggested commit between
``t1`` and ``t2`` falsifies the §5.2 conflict condition for that pair.
The suggestions are validated end-to-end by tests that re-run FLASH with
the suggested fix applied and observe a clean trace.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass

from repro.core.conflicts import Conflict, ConflictSet
from repro.core.semantics import Semantics
from repro.util.tables import AsciiTable


class FixKind(str, enum.Enum):
    INSERT_COMMIT = "insert-commit"
    CLOSE_THEN_REOPEN = "close-then-reopen"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class FixSuggestion:
    """One deduplicated repair point."""

    kind: FixKind
    path: str
    writer_rank: int
    after_func: str        # the call to commit after (e.g. "pwrite")
    after_time: float      # entry timestamp of that call
    library_side: bool     # first access was issued by an I/O library
    reader_rank: int | None = None  # for close-then-reopen advice
    conflicts_resolved: int = 1

    @property
    def summary(self) -> str:
        where = (f"library ({self.after_func})" if self.library_side
                 else self.after_func)
        if self.kind is FixKind.INSERT_COMMIT:
            return (f"rank {self.writer_rank}: fsync {self.path} after "
                    f"{where} @ t={self.after_time:.6f} "
                    f"(resolves {self.conflicts_resolved})")
        return (f"rank {self.writer_rank}: close {self.path} after "
                f"{where} @ t={self.after_time:.6f}; rank "
                f"{self.reader_rank}: reopen before next access "
                f"(resolves {self.conflicts_resolved})")


def _suggestion_for(conflict: Conflict, semantics: Semantics
                    ) -> FixSuggestion:
    first = conflict.first
    library_side = first.issuer not in ("app",)
    if semantics is Semantics.OBJECT:
        # an object store publishes whole objects on close only — an
        # fsync commits nothing, so the repair is always to finish the
        # PUT (close) before the other session opens its version
        return FixSuggestion(kind=FixKind.CLOSE_THEN_REOPEN,
                             path=conflict.path, writer_rank=first.rank,
                             after_func=first.func,
                             after_time=first.tstart,
                             library_side=library_side,
                             reader_rank=conflict.second.rank)
    if semantics is Semantics.COMMIT or first.rank == conflict.second.rank:
        kind = FixKind.INSERT_COMMIT
        reader = None
    else:
        kind = FixKind.CLOSE_THEN_REOPEN
        reader = conflict.second.rank
    return FixSuggestion(kind=kind, path=conflict.path,
                         writer_rank=first.rank, after_func=first.func,
                         after_time=first.tstart,
                         library_side=library_side, reader_rank=reader)


def suggest_fixes(conflicts: ConflictSet) -> list[FixSuggestion]:
    """Deduplicated repair points for a conflict set.

    Suggestions are keyed by (path, writer, kind): committing after the
    *first* conflicting write of a file/writer pair resolves every later
    pair with the same shape, so one suggestion carries a
    ``conflicts_resolved`` count instead of repeating per pair.
    """
    buckets: Counter = Counter()
    exemplar: dict[tuple, FixSuggestion] = {}
    for conflict in conflicts:
        s = _suggestion_for(conflict, conflicts.semantics)
        key = (s.path, s.writer_rank, s.kind, s.reader_rank)
        buckets[key] += 1
        if key not in exemplar or s.after_time < exemplar[key].after_time:
            exemplar[key] = s
    out = []
    for key, count in buckets.items():
        s = exemplar[key]
        out.append(FixSuggestion(
            kind=s.kind, path=s.path, writer_rank=s.writer_rank,
            after_func=s.after_func, after_time=s.after_time,
            library_side=s.library_side, reader_rank=s.reader_rank,
            conflicts_resolved=count))
    out.sort(key=lambda s: (s.path, s.writer_rank, s.after_time))
    return out


def advice_text(conflicts: ConflictSet) -> str:
    """Human-readable repair plan for one conflict set."""
    fixes = suggest_fixes(conflicts)
    if not fixes:
        return (f"No conflicts under {conflicts.semantics.name.lower()} "
                f"semantics; nothing to fix.")
    table = AsciiTable(
        ["file", "fix", "who", "where", "resolves", "layer"],
        title=f"Suggested fixes for "
              f"{conflicts.semantics.name.lower()}-semantics conflicts")
    for s in fixes:
        who = (f"rank {s.writer_rank}"
               + (f" + rank {s.reader_rank}" if s.reader_rank is not None
                  else ""))
        table.add_row(s.path, s.kind, who,
                      f"after {s.after_func} @ {s.after_time:.6f}",
                      s.conflicts_resolved,
                      "I/O library" if s.library_side else "application")
    return table.render()
