"""Metadata-visibility conflict detection (the paper's §7 future work).

The paper's conflict algorithm covers data operations only and
explicitly defers metadata to future work; file systems like GekkoFS and
BatchFS relax *metadata* consistency instead (Table 1 note).  This
module provides the natural first extension: detect namespace
*produce/consume* dependencies that relaxed metadata semantics can
break.

A namespace **producer** makes an entry visible: creating ``open``
(``O_CREAT`` on a file that did not exist), ``mkdir``, or the
destination side of ``rename``.  A namespace **consumer** requires that
entry: a non-creating ``open``/``fopen``, ``stat``/``lstat``/``access``
on the path, directory listing of the parent, or creating a file inside
a directory (which consumes the directory entry).

For every consumer we find the most recent producer of the entity it
needs; a cross-rank pair is a *potential metadata conflict*: on a PFS
with relaxed metadata consistency and no synchronizing metadata flush,
the consumer may not see the entry even though the application's
communication ordered the two calls.  Same-rank pairs are reported too
(scope S), mirroring the data-plane classification; most relaxed systems
order a client's own metadata operations.

This is intentionally a *conservative potential-conflict* analysis —
the metadata analogue of the paper's eventual-semantics data rule —
because, unlike ``fsync``/``close`` for data, POSIX has no portable
"metadata commit" operation to test against.
"""

from __future__ import annotations

import enum
import posixpath
from dataclasses import dataclass, field

from repro.posix import flags as F
from repro.tracer.events import Layer, OPEN_OPS, TraceRecord
from repro.tracer.trace import Trace


class MetadataConflictKind(str, enum.Enum):
    """What kind of namespace dependency the pair represents."""

    FILE_CREATE_USE = "file-create/use"
    DIR_CREATE_USE = "dir-create/use"
    RENAME_USE = "rename/use"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class MetadataConflict:
    """A namespace producer/consumer pair that relaxed metadata
    consistency may break."""

    kind: MetadataConflictKind
    path: str                 # the entity consumed (file or directory)
    producer: TraceRecord
    consumer: TraceRecord

    @property
    def cross_process(self) -> bool:
        return self.producer.rank != self.consumer.rank

    @property
    def scope(self) -> str:
        return "D" if self.cross_process else "S"

    @property
    def label(self) -> str:
        return f"{self.kind.value}-{self.scope}"


@dataclass
class MetadataConflictSet:
    conflicts: list[MetadataConflict] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.conflicts)

    def __iter__(self):
        return iter(self.conflicts)

    def __bool__(self) -> bool:
        return bool(self.conflicts)

    @property
    def cross_process(self) -> list[MetadataConflict]:
        return [c for c in self.conflicts if c.cross_process]

    def kinds(self) -> set[str]:
        return {c.label for c in self.conflicts}

    def by_path(self) -> dict[str, list[MetadataConflict]]:
        out: dict[str, list[MetadataConflict]] = {}
        for c in self.conflicts:
            out.setdefault(c.path, []).append(c)
        return out


_CONSUMER_FUNCS = frozenset({"stat", "lstat", "access", "opendir",
                             "readdir"})


def is_creating_open(rec: TraceRecord) -> bool:
    """Does this open record make a new namespace entry visible?"""
    if rec.func not in OPEN_OPS:
        return False
    flags = int(rec.args.get("flags", 0))
    existed = bool(rec.args.get("existed", True))
    if rec.func in ("creat",):
        return not existed
    return bool(flags & F.O_CREAT) and not existed


#: backward-compatible alias (pre-lint name)
_is_creating_open = is_creating_open


def detect_metadata_conflicts(trace: Trace, *,
                              max_conflicts: int | None = None,
                              ) -> MetadataConflictSet:
    """Find namespace produce/consume pairs in timestamp order."""
    # last producer per entity: path -> (record, kind-on-consume)
    producers: dict[str, tuple[TraceRecord, MetadataConflictKind]] = {}
    out = MetadataConflictSet()

    def consume(path: str, rec: TraceRecord) -> None:
        hit = producers.get(path)
        if hit is None:
            return
        producer, kind = hit
        if producer.rid == rec.rid:
            return
        out.conflicts.append(MetadataConflict(
            kind=kind, path=path, producer=producer, consumer=rec))

    # lint: allow-per-op-loop (metadata ops are sparse; object path)
    for rec in trace.records:
        if rec.layer != Layer.POSIX or rec.path is None:
            continue
        if max_conflicts is not None and len(out) >= max_conflicts:
            break
        path = rec.path
        parent = posixpath.dirname(path)

        # consumption first (an op can both consume its parent dir and
        # produce a new file entry, e.g. a creating open)
        if rec.func in _CONSUMER_FUNCS:
            consume(path, rec)
        elif rec.func in OPEN_OPS:
            if _is_creating_open(rec):
                consume(parent, rec)   # creating a file uses the dir
            else:
                consume(path, rec)     # opening uses the file entry
        elif rec.func == "unlink" or rec.func == "remove":
            consume(path, rec)

        # production
        if _is_creating_open(rec):
            producers[path] = (rec, MetadataConflictKind.FILE_CREATE_USE)
        elif rec.func == "mkdir":
            producers[path] = (rec, MetadataConflictKind.DIR_CREATE_USE)
        elif rec.func == "rename":
            dst = rec.args.get("to")
            if dst:
                producers[str(dst)] = (
                    rec, MetadataConflictKind.RENAME_USE)
            producers.pop(path, None)
        elif rec.func in ("unlink", "remove"):
            producers.pop(path, None)
    return out
