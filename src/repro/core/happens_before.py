"""Happens-before recovery and race-freedom validation (paper §5.2).

The paper validates its timestamp-ordering methodology on FLASH by
matching sends to receives and collective invocations, deriving the
execution order imposed by communication, and checking that every pair
of conflicting I/O operations is ordered by it.  This module implements
that check for any trace.

Each MPI event is split into an *entry* and an *exit* node, because
synchronization constraints relate entries to exits ("a send starts
before the receive completes, and a barrier starts at all nodes before
it completes at any node" — §5.2):

* program order: ``exit(e_i) -> entry(e_{i+1})`` per rank, and
  ``entry(e) -> exit(e)``;
* point-to-point: ``entry(send) -> exit(recv)``;
* rooted collectives: ``entry(root) -> exit(member)`` for bcast/scatter,
  ``entry(member) -> exit(root)`` for gather/reduce;
* fully synchronizing collectives (barrier, allreduce, allgather,
  alltoall): ``entry(member) -> hub -> exit(member)`` for all members.

Exact reachability is answered with vector clocks computed in one
topological sweep, so per-pair queries are O(1).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.core.records import AccessRecord
from repro.errors import RaceConditionError
from repro.tracer.events import MPIEvent
from repro.tracer.trace import Trace

#: collectives where the root's entry precedes everyone's exit
_ROOT_TO_ALL = {"bcast", "scatter"}
#: collectives where everyone's entry precedes the root's exit
_ALL_TO_ROOT = {"gather", "reduce"}

_IN, _OUT = 0, 1


class HappensBefore:
    """Vector-clock index over a run's communication partial order."""

    def __init__(self, trace: Trace):
        self.nranks = trace.nranks
        self.events_by_rank: list[list[MPIEvent]] = [
            [] for _ in range(trace.nranks)]
        for ev in sorted(trace.mpi_events,
                         key=lambda e: (e.rank, e.tstart, e.eid)):
            self.events_by_rank[ev.rank].append(ev)
        self._starts: list[list[float]] = [
            [e.tstart for e in evs] for evs in self.events_by_rank]
        self._ends: list[list[float]] = [
            [e.tend for e in evs] for evs in self.events_by_rank]
        # node position along its rank's program order: entry=2i, exit=2i+1
        self._pos: dict[tuple, int] = {}
        self._rank_of: dict[tuple, int] = {}
        for rank, evs in enumerate(self.events_by_rank):
            for i, ev in enumerate(evs):
                self._pos[(ev.eid, _IN)] = 2 * i
                self._pos[(ev.eid, _OUT)] = 2 * i + 1
                self._rank_of[(ev.eid, _IN)] = rank
                self._rank_of[(ev.eid, _OUT)] = rank
        self.graph = self._build_graph()
        self._clocks = self._compute_vector_clocks()

    # -- construction ---------------------------------------------------------

    def _build_graph(self) -> "nx.DiGraph":
        g = nx.DiGraph()
        for evs in self.events_by_rank:
            for i, ev in enumerate(evs):
                g.add_edge((ev.eid, _IN), (ev.eid, _OUT))
                if i > 0:
                    g.add_edge((evs[i - 1].eid, _OUT), (ev.eid, _IN))
        by_match: dict[tuple, list[MPIEvent]] = {}
        for evs in self.events_by_rank:
            for ev in evs:
                by_match.setdefault(ev.match_key, []).append(ev)
        for key, match in by_match.items():
            kind = match[0].kind
            if kind in ("send", "recv"):
                for s in (e for e in match if e.role == "sender"):
                    for r in (e for e in match if e.role == "receiver"):
                        g.add_edge((s.eid, _IN), (r.eid, _OUT))
            elif kind in _ROOT_TO_ALL:
                for root in (e for e in match if e.role == "root"):
                    for e in match:
                        g.add_edge((root.eid, _IN), (e.eid, _OUT))
            elif kind in _ALL_TO_ROOT:
                for root in (e for e in match if e.role == "root"):
                    for e in match:
                        g.add_edge((e.eid, _IN), (root.eid, _OUT))
            else:  # fully synchronizing
                hub = ("hub", key)
                for e in match:
                    g.add_edge((e.eid, _IN), hub)
                    g.add_edge(hub, (e.eid, _OUT))
        return g

    def _compute_vector_clocks(self) -> dict[tuple, np.ndarray]:
        clocks: dict[tuple, np.ndarray] = {}
        for node in nx.topological_sort(self.graph):
            vc = np.zeros(self.nranks, dtype=np.int64)
            for pred in self.graph.predecessors(node):
                np.maximum(vc, clocks[pred], out=vc)
            rank = self._rank_of.get(node)
            if rank is not None:
                vc[rank] = max(vc[rank], self._pos[node] + 1)
            clocks[node] = vc
        return clocks

    # -- queries -----------------------------------------------------------------

    def node_ordered(self, x: tuple, y: tuple) -> bool:
        """Does graph node ``x`` precede node ``y`` in the partial order?"""
        rank = self._rank_of[x]
        return bool(self._clocks[y][rank] >= self._pos[x] + 1) and x != y

    def event_ordered(self, ea: MPIEvent, eb: MPIEvent) -> bool:
        """entry(ea) precedes exit(eb) — the relation access ordering needs."""
        return self.node_ordered((ea.eid, _IN), (eb.eid, _OUT)) \
            or (ea.eid == eb.eid)

    def _first_event_at_or_after(self, rank: int,
                                 t: float) -> MPIEvent | None:
        i = bisect_left(self._starts[rank], t)
        evs = self.events_by_rank[rank]
        return evs[i] if i < len(evs) else None

    def _last_event_ending_by(self, rank: int, t: float) -> MPIEvent | None:
        i = bisect_right(self._ends[rank], t) - 1
        evs = self.events_by_rank[rank]
        return evs[i] if i >= 0 else None

    def access_ordered(self, a: AccessRecord, b: AccessRecord) -> bool:
        """Does access ``a`` happen before access ``b``?

        Same rank: program order (local timestamps are exact).  Different
        ranks: there must be a communication chain from an event after
        ``a`` on ``a``'s rank to an event before ``b`` on ``b``'s rank.
        """
        if a.rank == b.rank:
            return a.tstart <= b.tstart
        ea = self._first_event_at_or_after(a.rank, a.tend)
        eb = self._last_event_ending_by(b.rank, b.tstart)
        if ea is None or eb is None:
            return False
        return self.event_ordered(ea, eb)


@dataclass
class RaceReport:
    """Outcome of the §5.2 validation over a set of conflicting pairs."""

    checked_pairs: int = 0
    unsynchronized: list[tuple[AccessRecord, AccessRecord]] = field(
        default_factory=list)
    timestamp_disagreements: list[tuple[AccessRecord, AccessRecord]] = field(
        default_factory=list)

    @property
    def race_free(self) -> bool:
        return not self.unsynchronized

    @property
    def timestamps_trustworthy(self) -> bool:
        return not self.timestamp_disagreements


def validate_race_freedom(trace: Trace,
                          pairs: list[tuple[AccessRecord, AccessRecord]],
                          *, raise_on_race: bool = False) -> RaceReport:
    """Check §5.2's two assumptions on conflicting access pairs.

    ``pairs`` should be timestamp-ordered (first.tstart <= second.tstart),
    e.g. the (first, second) pairs of detected conflicts.  For each pair
    we verify the program's synchronization orders the two accesses, and
    that the order matches timestamp order.
    """
    hb = HappensBefore(trace)
    report = RaceReport()
    for a, b in pairs:
        report.checked_pairs += 1
        forward = hb.access_ordered(a, b)
        backward = hb.access_ordered(b, a)
        if not forward and not backward:
            report.unsynchronized.append((a, b))
        elif backward and not forward:
            report.timestamp_disagreements.append((a, b))
    if raise_on_race and not report.race_free:
        a, b = report.unsynchronized[0]
        raise RaceConditionError(
            f"unsynchronized conflicting accesses on {a.path!r}: "
            f"rank {a.rank} [{a.offset},{a.stop}) at t={a.tstart:.6f} vs "
            f"rank {b.rank} [{b.offset},{b.stop}) at t={b.tstart:.6f}")
    return report
