"""Offset reconstruction (paper Section 5.1).

``pwrite``/``pread`` carry their offset; ``write``/``read``/``fwrite``/
``fread`` do not, so the analyzer replays the trace and maintains, per
*open file description*, "the most up-to-date offset for each file":

* ``open``-family sets the offset to 0, applies ``O_TRUNC`` to the
  tracked size, and flags ``O_APPEND`` descriptions (whose writes land at
  the tracked end of file);
* ``lseek``/``fseek`` apply ``SEEK_SET``/``SEEK_CUR``/``SEEK_END``;
* data operations advance the offset by the byte count;
* ``dup`` aliases a descriptor to the same description (shared offset);
* ``truncate``/``ftruncate`` update the tracked size.

The tracked size is global per path, updated in global timestamp order —
valid for traces whose shared-file appends are synchronized, which the
race-freedom assumption (§5.2) already requires.  ``size_at_open`` from
the open record seeds sizes of files that predate the trace.

The reconstruction never reads the simulator's ``gt_offset`` ground
truth; tests compare against it instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.posix import flags as F
from repro.tracer.events import (
    CLOSE_OPS,
    DATA_OPS,
    Layer,
    OPEN_OPS,
    READ_OPS,
    SEEK_OPS,
    WRITE_OPS,
    TraceRecord,
)
from repro.core.records import AccessRecord, AccessTable, group_by_path


@dataclass
class _OfdState:
    """Tracked open-file-description state (mirror of the kernel object)."""

    path: str
    offset: int
    append: bool


class _SizeTracker:
    """Global per-path file-size model, replayed in timestamp order."""

    def __init__(self) -> None:
        self._sizes: dict[str, int] = {}

    def seed(self, path: str, size: int) -> None:
        self._sizes.setdefault(path, size)

    def get(self, path: str) -> int:
        return self._sizes.get(path, 0)

    def set(self, path: str, size: int) -> None:
        self._sizes[path] = size

    def grow_to(self, path: str, stop: int) -> None:
        if stop > self._sizes.get(path, 0):
            self._sizes[path] = stop


def reconstruct_offsets(records: list[TraceRecord], *,
                        strict: bool = True) -> list[AccessRecord]:
    """Resolve every POSIX data record to an absolute byte extent.

    ``records`` may be a full multi-layer trace; only POSIX-layer records
    are consumed.  Input must be (and trace containers are) sorted by
    start time, so the shared size model sees operations in global order.

    With ``strict`` a data record on an untracked descriptor raises
    :class:`TraceError`; otherwise it is skipped (useful for partial
    traces).
    """
    size = _SizeTracker()
    # descriptor tables: (rank, fd) -> shared description state
    ofds: dict[tuple[int, int], _OfdState] = {}
    out: list[AccessRecord] = []

    for rec in records:
        if rec.layer != Layer.POSIX:
            continue
        func = rec.func
        if func in OPEN_OPS:
            _handle_open(rec, ofds, size)
        elif func in CLOSE_OPS:
            ofds.pop((rec.rank, rec.fd), None)
        elif func == "dup":
            st = ofds.get((rec.rank, rec.fd))
            if st is not None:
                ofds[(rec.rank, int(rec.args["newfd"]))] = st
        elif func in SEEK_OPS:
            _handle_seek(rec, ofds, size, strict)
        elif func in ("truncate",):
            size.set(_require_path(rec), int(rec.args["length"]))
        elif func == "ftruncate":
            st = ofds.get((rec.rank, rec.fd))
            path = st.path if st is not None else rec.path
            if path is not None:
                size.set(path, int(rec.args["length"]))
        elif func in DATA_OPS:
            acc = _handle_data(rec, ofds, size, strict)
            if acc is not None:
                out.append(acc)
        # all other (metadata) operations do not move offsets
    return out


def _require_path(rec: TraceRecord) -> str:
    if rec.path is None:
        raise TraceError(f"record {rec.rid} ({rec.func}) lacks a path")
    return rec.path


def _handle_open(rec: TraceRecord, ofds: dict[tuple[int, int], _OfdState],
                 size: _SizeTracker) -> None:
    path = _require_path(rec)
    open_flags = int(rec.args.get("flags", 0))
    if "size_at_open" in rec.args:
        size.seed(path, int(rec.args["size_at_open"]))
    if open_flags & F.O_TRUNC and F.writable(open_flags):
        size.set(path, 0)
    ofds[(rec.rank, rec.fd)] = _OfdState(
        path=path, offset=0, append=bool(open_flags & F.O_APPEND))


def _handle_seek(rec: TraceRecord, ofds: dict[tuple[int, int], _OfdState],
                 size: _SizeTracker, strict: bool) -> None:
    st = ofds.get((rec.rank, rec.fd))
    if st is None:
        if strict:
            raise TraceError(
                f"seek on untracked fd {rec.fd} (rank {rec.rank})")
        return
    offset = int(rec.args["offset"])
    whence = int(rec.args["whence"])
    if whence == F.SEEK_SET:
        st.offset = offset
    elif whence == F.SEEK_CUR:
        st.offset += offset
    elif whence == F.SEEK_END:
        st.offset = size.get(st.path) + offset
    else:
        raise TraceError(f"record {rec.rid}: unknown whence {whence}")


def _handle_data(rec: TraceRecord, ofds: dict[tuple[int, int], _OfdState],
                 size: _SizeTracker, strict: bool) -> AccessRecord | None:
    count = int(rec.count or 0)
    is_write = rec.func not in READ_OPS
    explicit = rec.offset is not None  # pread/pwrite carry their offset
    if explicit:
        start = int(rec.offset)
        path = _require_path(rec)
    else:
        st = ofds.get((rec.rank, rec.fd))
        if st is None:
            if strict:
                raise TraceError(
                    f"data op on untracked fd {rec.fd} (rank {rec.rank})")
            return None
        if is_write and st.append:
            st.offset = size.get(st.path)
        start = st.offset
        st.offset = start + count
        path = st.path
    stop = start + count
    if is_write:
        size.grow_to(path, stop)
    if count == 0:
        return None
    return AccessRecord(
        rid=rec.rid, rank=rec.rank, path=path, offset=start, stop=stop,
        is_write=is_write, tstart=rec.tstart, tend=rec.tend,
        fd=rec.fd if rec.fd is not None else -1, func=rec.func,
        issuer=rec.issuer.value)


# -- columnar reconstruction -----------------------------------------------------
#
# The replay above touches every op with Python-object overhead; at 10^6+
# ops that dominates the whole analysis.  The columnar path below runs
# the same state machine as array passes over a
# :class:`~repro.tracer.columnar.ColumnarTrace`:
#
# * descriptor streams: rows are grouped per (rank, fd) with a lexsort;
#   each open starts a new generation, and the current position inside a
#   generation is a "reset + cumulative sum" — seeks/opens/append-writes
#   contribute absolute bases, sequential reads/writes contribute count
#   deltas, and position(j) = base[last reset <= j] + (cumdelta[j] -
#   cumdelta[last reset]);
# * O_APPEND landing offsets come from per-path size streams built the
#   same way (O_TRUNC opens reset to zero, ``size_at_open`` seeds the
#   first generation, append writes grow by their count);
# * trace features whose exact semantics need the sequential replay
#   (dup aliasing, SEEK_END, truncate interacting with appends, strict
#   errors on untracked descriptors, non-strict skipping) fall back to
#   :func:`reconstruct_offsets` on the materialized objects — the two
#   paths are byte-identical by construction, and parity tests pin it.

_OTHER, _OPEN, _CLOSE, _DUP, _SEEK, _TRUNC, _FTRUNC, _RD, _WR = range(9)

#: promoted ``args`` keys the vectorized pass consumes structurally; a
#: value for one of these living only in the ``extras`` side table
#: (escape-encoded bool / sentinel-valued / out-of-range int) reads as
#: "absent" from the integer column, so the array pass must fall back
#: to the object replay, which merges ``extras`` into ``args``
_STRUCTURAL_ARGS = ("flags", "whence", "offset", "length", "newfd",
                    "size_at_open")


class _ColumnarFallback(Exception):
    """Internal: this trace needs the sequential object replay."""


def _func_class_lut(funcs: list[str]) -> np.ndarray:
    """Map the (tiny) interned function table to op-class codes."""
    lut = np.zeros(len(funcs), dtype=np.int8)
    for i, name in enumerate(funcs):
        if name in OPEN_OPS:
            lut[i] = _OPEN
        elif name in CLOSE_OPS:
            lut[i] = _CLOSE
        elif name == "dup":
            lut[i] = _DUP
        elif name in SEEK_OPS:
            lut[i] = _SEEK
        elif name == "truncate":
            lut[i] = _TRUNC
        elif name == "ftruncate":
            lut[i] = _FTRUNC
        elif name in READ_OPS:
            lut[i] = _RD
        elif name in WRITE_OPS:
            lut[i] = _WR
    return lut


def reconstruct_tables_columnar(ct, *, strict: bool = True,
                                ) -> dict[str, AccessTable]:
    """Columnar offset reconstruction straight to per-file tables.

    Equivalent to ``group_by_path(reconstruct_offsets(records))`` but
    vectorized over a :class:`~repro.tracer.columnar.ColumnarTrace`,
    without materializing :class:`TraceRecord`/:class:`AccessRecord`
    objects.  Falls back to the object replay (including its exact
    error behaviour) for trace features the array passes do not model.
    """
    if strict:
        try:
            return _reconstruct_vectorized(ct)
        except _ColumnarFallback:
            pass
    records = reconstruct_offsets(ct.to_trace().records, strict=strict)
    return group_by_path(records)


def _reconstruct_vectorized(ct) -> dict[str, AccessTable]:
    from repro.tracer.columnar import I64_NONE, LAYER_TABLE

    c = ct.columns
    mask = ct.posix_mask()
    npx = int(np.count_nonzero(mask))
    if npx == 0:
        return {}
    # structurally relevant args escape-encoded into the side table are
    # invisible to the integer columns: sequential replay territory
    # (extras is sparse — a handful of rows at most on real traces)
    for row, extra in ct.extras.items():
        if mask[row] and any(key in extra for key in _STRUCTURAL_ARGS):
            raise _ColumnarFallback
    if npx == mask.size:
        take = lambda name: c[name]  # noqa: E731 — all-POSIX: zero-copy
    else:
        idx = np.flatnonzero(mask)
        take = lambda name: c[name][idx]  # noqa: E731
    cls_ = _func_class_lut(ct.funcs)[take("func_id")]
    rank = take("rank")
    fd = take("fd")
    path_id = take("path_id")
    offset = take("offset")
    count = take("count")
    raw_flags = take("flags")
    flags = np.where(raw_flags == I64_NONE, 0, raw_flags)
    whence = take("whence")
    arg_off = take("arg_offset")
    length = take("length")
    sz_open = take("size_at_open")

    is_open = cls_ == _OPEN
    is_close = cls_ == _CLOSE
    is_seek = cls_ == _SEEK
    is_data = (cls_ == _RD) | (cls_ == _WR)
    is_write_op = cls_ == _WR
    explicit = is_data & (offset != I64_NONE)
    implicit = is_data & ~explicit
    count_eff = np.where(count == I64_NONE, 0, count)
    is_trunc_op = (cls_ == _TRUNC) | (cls_ == _FTRUNC)

    # features that need the sequential replay (or its exact errors)
    if (bool(np.any(cls_ == _DUP))
            or bool(np.any(is_seek & (
                (whence == I64_NONE) | (arg_off == I64_NONE)
                | ((whence != F.SEEK_SET) & (whence != F.SEEK_CUR)))))
            or bool(np.any(is_open & (path_id < 0)))
            or bool(np.any(explicit & (path_id < 0)))
            or bool(np.any((cls_ == _TRUNC) & (path_id < 0)))
            or bool(np.any(is_trunc_op & (length == I64_NONE)))
            or bool(np.any(is_data & (count_eff < 0)))):
        raise _ColumnarFallback

    # -- descriptor streams: group rows per (rank, fd), time-ordered --
    s = np.flatnonzero(is_open | is_close | is_seek | implicit)
    s_fd = fd[s]
    # one stable argsort on a dense composite (rank, fd) key beats a
    # three-key lexsort; fds are remapped to dense ids first
    fd_vals, fd_dense = np.unique(s_fd, return_inverse=True)
    so = s[np.argsort(rank[s] * fd_vals.size + fd_dense,
                      kind="stable")]
    m = so.size
    pos_m = np.arange(m)
    g_rank = rank[so]
    g_fd = fd[so]
    g_open = is_open[so]
    g_close = is_close[so]
    g_seek = is_seek[so]
    g_impl = implicit[so]
    new_grp = np.ones(m, dtype=bool)
    new_grp[1:] = ((g_rank[1:] != g_rank[:-1])
                   | (g_fd[1:] != g_fd[:-1]))
    grp_start = np.maximum.accumulate(np.where(new_grp, pos_m, 0))
    last_open = np.maximum.accumulate(np.where(g_open, pos_m, -1))
    last_close = np.maximum.accumulate(np.where(g_close, pos_m, -1))
    open_ok = last_open >= grp_start
    if bool(np.any((g_seek | g_impl)
                   & (~open_ok | (last_close > last_open)))):
        raise _ColumnarFallback  # untracked fd: strict replay raises

    open_row = so[np.maximum(last_open, 0)]  # the generation's open
    stream_path = path_id[open_row]
    stream_append = (flags[open_row] & F.O_APPEND) != 0
    g_write = is_write_op[so]
    g_appw = g_impl & g_write & stream_append & open_ok

    # -- O_APPEND size streams (global, per path) --
    append_paths = np.unique(path_id[is_open & ((flags & F.O_APPEND)
                                                != 0)])
    land = np.zeros(npx, dtype=np.int64)
    if append_paths.size:
        appending = np.isin(path_id, append_paths)
        entangled = (
            bool(np.any(is_write_op & explicit & appending))
            or bool(np.any(g_impl & g_write & ~stream_append
                           & np.isin(stream_path, append_paths)))
            or bool(np.any(is_trunc_op)))
        if entangled:
            raise _ColumnarFallback
        _append_landings(npx, np.flatnonzero(is_open & appending),
                         so[g_appw], path_id, stream_path[g_appw],
                         flags, sz_open, count_eff, I64_NONE, land)

    # -- positions inside each descriptor generation (reset + cumsum) --
    g_cnt = count_eff[so]
    g_whence = whence[so]
    g_set = g_seek & (g_whence == F.SEEK_SET)
    g_cur = g_seek & (g_whence == F.SEEK_CUR)
    g_arg = arg_off[so]
    g_reset = g_open | g_set | g_appw | new_grp
    base = np.zeros(m, dtype=np.int64)
    base[g_set] = g_arg[g_set]
    base[g_appw] = land[so[g_appw]] + g_cnt[g_appw]
    base[g_open] = 0
    delta = np.zeros(m, dtype=np.int64)
    delta[g_cur] = g_arg[g_cur]
    seq_data = g_impl & ~g_appw
    delta[seq_data] = g_cnt[seq_data]
    delta[g_reset] = 0
    cum = np.cumsum(delta)
    reset_idx = np.maximum.accumulate(np.where(g_reset, pos_m, 0))
    pos_after = base[reset_idx] + cum - cum[reset_idx]
    impl_off = np.where(g_appw, land[so], pos_after - delta)

    # -- assemble the output extents --
    im = g_impl & (g_cnt > 0)
    ex = explicit & (count_eff > 0)
    rows = np.concatenate([so[im], np.flatnonzero(ex)])
    out_off = np.concatenate([impl_off[im], offset[ex]])
    out_path = np.concatenate([stream_path[im], path_id[ex]])
    out_stop = out_off + count_eff[rows]
    raw_fd = fd[rows]
    out_fd = np.where(raw_fd == I64_NONE, -1, raw_fd)
    out_write = is_write_op[rows]
    out_rid = take("rid")[rows]
    out_rank = rank[rows]
    out_t0 = take("tstart")[rows]
    out_t1 = take("tend")[rows]
    out_func = take("func_id")[rows]
    out_issuer = take("issuer_id")[rows]

    tables: dict[str, AccessTable] = {}
    pids = sorted(np.unique(out_path).tolist(),
                  key=lambda p: ct.paths[p])
    for pid in pids:
        sel = out_path == pid
        tables[ct.paths[pid]] = AccessTable.from_columns(
            ct.paths[pid], rid=out_rid[sel], rank=out_rank[sel],
            offset=out_off[sel], stop=out_stop[sel],
            is_write=out_write[sel], tstart=out_t0[sel],
            tend=out_t1[sel], fd=out_fd[sel], func_id=out_func[sel],
            issuer_id=out_issuer[sel], funcs=tuple(ct.funcs),
            issuers=LAYER_TABLE)
    return tables


def _append_landings(n: int, open_rows: np.ndarray, write_rows: np.ndarray,
                     path_id: np.ndarray, write_path: np.ndarray,
                     flags: np.ndarray, sz_open: np.ndarray,
                     count_eff: np.ndarray, none_val: int,
                     land: np.ndarray) -> None:
    """Fill ``land[row]`` with the size-before for append-write rows.

    Each appending path's size is replayed as one reset+cumsum stream
    over its opens and append writes, matching :class:`_SizeTracker`:
    ``size_at_open`` seeds only while the size is still unknown (the
    ``setdefault``), a writable ``O_TRUNC`` open resets to zero, and
    every write grows the size by its count.
    """
    rows = np.concatenate([open_rows, write_rows])
    paths = np.concatenate([path_id[open_rows], write_path])
    order = np.lexsort((rows, paths))
    rows = rows[order]
    paths = paths[order]
    m = rows.size
    p = np.arange(m)
    z_open = np.zeros(m, dtype=bool)
    z_open[np.isin(rows, open_rows)] = True
    z_flags = flags[rows]
    am = z_flags & F.O_ACCMODE
    z_trunc = (z_open & ((z_flags & F.O_TRUNC) != 0)
               & ((am == F.O_WRONLY) | (am == F.O_RDWR)))
    z_seed = z_open & (sz_open[rows] != none_val) & ~z_trunc
    z_cnt = np.where(z_open, 0, count_eff[rows])
    new_grp = np.ones(m, dtype=bool)
    new_grp[1:] = paths[1:] != paths[:-1]
    starts = np.flatnonzero(new_grp)
    gid = np.cumsum(new_grp) - 1
    # setdefault semantics: a seed applies only if it precedes every
    # "hard" size setter (truncating open or size-growing write)
    hard = z_trunc | (~z_open & (z_cnt > 0))
    first_hard = np.minimum.reduceat(np.where(hard, p, m), starts)
    first_seed = np.minimum.reduceat(np.where(z_seed, p, m), starts)
    applies = first_seed[gid] < first_hard[gid]
    z_applied = z_seed & applies & (p == first_seed[gid])
    z_reset = new_grp | z_trunc | z_applied
    base = np.zeros(m, dtype=np.int64)
    base[z_applied] = sz_open[rows[z_applied]]
    first_write = new_grp & ~z_open & ~z_applied
    base[first_write] = z_cnt[first_write]
    base[z_trunc] = 0
    delta = np.where(z_reset, 0, z_cnt)
    cum = np.cumsum(delta)
    reset_idx = np.maximum.accumulate(np.where(z_reset, p, 0))
    size_after = base[reset_idx] + cum - cum[reset_idx]
    w = ~z_open
    land[rows[w]] = size_after[w] - z_cnt[w]
