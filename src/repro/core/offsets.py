"""Offset reconstruction (paper Section 5.1).

``pwrite``/``pread`` carry their offset; ``write``/``read``/``fwrite``/
``fread`` do not, so the analyzer replays the trace and maintains, per
*open file description*, "the most up-to-date offset for each file":

* ``open``-family sets the offset to 0, applies ``O_TRUNC`` to the
  tracked size, and flags ``O_APPEND`` descriptions (whose writes land at
  the tracked end of file);
* ``lseek``/``fseek`` apply ``SEEK_SET``/``SEEK_CUR``/``SEEK_END``;
* data operations advance the offset by the byte count;
* ``dup`` aliases a descriptor to the same description (shared offset);
* ``truncate``/``ftruncate`` update the tracked size.

The tracked size is global per path, updated in global timestamp order —
valid for traces whose shared-file appends are synchronized, which the
race-freedom assumption (§5.2) already requires.  ``size_at_open`` from
the open record seeds sizes of files that predate the trace.

The reconstruction never reads the simulator's ``gt_offset`` ground
truth; tests compare against it instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TraceError
from repro.posix import flags as F
from repro.tracer.events import (
    CLOSE_OPS,
    DATA_OPS,
    Layer,
    OPEN_OPS,
    READ_OPS,
    SEEK_OPS,
    TraceRecord,
)
from repro.core.records import AccessRecord


@dataclass
class _OfdState:
    """Tracked open-file-description state (mirror of the kernel object)."""

    path: str
    offset: int
    append: bool


class _SizeTracker:
    """Global per-path file-size model, replayed in timestamp order."""

    def __init__(self) -> None:
        self._sizes: dict[str, int] = {}

    def seed(self, path: str, size: int) -> None:
        self._sizes.setdefault(path, size)

    def get(self, path: str) -> int:
        return self._sizes.get(path, 0)

    def set(self, path: str, size: int) -> None:
        self._sizes[path] = size

    def grow_to(self, path: str, stop: int) -> None:
        if stop > self._sizes.get(path, 0):
            self._sizes[path] = stop


def reconstruct_offsets(records: list[TraceRecord], *,
                        strict: bool = True) -> list[AccessRecord]:
    """Resolve every POSIX data record to an absolute byte extent.

    ``records`` may be a full multi-layer trace; only POSIX-layer records
    are consumed.  Input must be (and trace containers are) sorted by
    start time, so the shared size model sees operations in global order.

    With ``strict`` a data record on an untracked descriptor raises
    :class:`TraceError`; otherwise it is skipped (useful for partial
    traces).
    """
    size = _SizeTracker()
    # descriptor tables: (rank, fd) -> shared description state
    ofds: dict[tuple[int, int], _OfdState] = {}
    out: list[AccessRecord] = []

    for rec in records:
        if rec.layer != Layer.POSIX:
            continue
        func = rec.func
        if func in OPEN_OPS:
            _handle_open(rec, ofds, size)
        elif func in CLOSE_OPS:
            ofds.pop((rec.rank, rec.fd), None)
        elif func == "dup":
            st = ofds.get((rec.rank, rec.fd))
            if st is not None:
                ofds[(rec.rank, int(rec.args["newfd"]))] = st
        elif func in SEEK_OPS:
            _handle_seek(rec, ofds, size, strict)
        elif func in ("truncate",):
            size.set(_require_path(rec), int(rec.args["length"]))
        elif func == "ftruncate":
            st = ofds.get((rec.rank, rec.fd))
            path = st.path if st is not None else rec.path
            if path is not None:
                size.set(path, int(rec.args["length"]))
        elif func in DATA_OPS:
            acc = _handle_data(rec, ofds, size, strict)
            if acc is not None:
                out.append(acc)
        # all other (metadata) operations do not move offsets
    return out


def _require_path(rec: TraceRecord) -> str:
    if rec.path is None:
        raise TraceError(f"record {rec.rid} ({rec.func}) lacks a path")
    return rec.path


def _handle_open(rec: TraceRecord, ofds: dict[tuple[int, int], _OfdState],
                 size: _SizeTracker) -> None:
    path = _require_path(rec)
    open_flags = int(rec.args.get("flags", 0))
    if "size_at_open" in rec.args:
        size.seed(path, int(rec.args["size_at_open"]))
    if open_flags & F.O_TRUNC and F.writable(open_flags):
        size.set(path, 0)
    ofds[(rec.rank, rec.fd)] = _OfdState(
        path=path, offset=0, append=bool(open_flags & F.O_APPEND))


def _handle_seek(rec: TraceRecord, ofds: dict[tuple[int, int], _OfdState],
                 size: _SizeTracker, strict: bool) -> None:
    st = ofds.get((rec.rank, rec.fd))
    if st is None:
        if strict:
            raise TraceError(
                f"seek on untracked fd {rec.fd} (rank {rec.rank})")
        return
    offset = int(rec.args["offset"])
    whence = int(rec.args["whence"])
    if whence == F.SEEK_SET:
        st.offset = offset
    elif whence == F.SEEK_CUR:
        st.offset += offset
    elif whence == F.SEEK_END:
        st.offset = size.get(st.path) + offset
    else:
        raise TraceError(f"record {rec.rid}: unknown whence {whence}")


def _handle_data(rec: TraceRecord, ofds: dict[tuple[int, int], _OfdState],
                 size: _SizeTracker, strict: bool) -> AccessRecord | None:
    count = int(rec.count or 0)
    is_write = rec.func not in READ_OPS
    explicit = rec.offset is not None  # pread/pwrite carry their offset
    if explicit:
        start = int(rec.offset)
        path = _require_path(rec)
    else:
        st = ofds.get((rec.rank, rec.fd))
        if st is None:
            if strict:
                raise TraceError(
                    f"data op on untracked fd {rec.fd} (rank {rec.rank})")
            return None
        if is_write and st.append:
            st.offset = size.get(st.path)
        start = st.offset
        st.offset = start + count
        path = st.path
    stop = start + count
    if is_write:
        size.grow_to(path, stop)
    if count == 0:
        return None
    return AccessRecord(
        rid=rec.rid, rank=rec.rank, path=path, offset=start, stop=stop,
        is_write=is_write, tstart=rec.tstart, tend=rec.tend,
        fd=rec.fd if rec.fd is not None else -1, func=rec.func,
        issuer=rec.issuer.value)
