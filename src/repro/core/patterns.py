"""Access-pattern characterization (paper §4, §6.2, Table 3, Figure 1).

Two granularities:

* **Per-transition mix** (Figure 1): for consecutive accesses in a
  sequence, with ``o`` the next start and ``p`` the previous end:
  ``o == p`` → *consecutive*, ``o > p`` → *monotonic*, ``o < p`` →
  *random*.  Computed locally (per rank per file) and globally (per file,
  all ranks in timestamp order).
* **Sequence classification** (Table 3): a whole per-(rank, file) write
  sequence is labelled consecutive / strided / strided-cyclic /
  monotonic / random from its gap structure.  Library metadata is
  excluded first, matching the paper's "except for a small amount of
  extra metadata" caveat: accesses are dropped when they are at least 8×
  smaller than the sequence's dominant (median) access size.

Gap rules (gap = next start − previous end, zero-length gaps are the
consecutive case):

* ≥ 90% zero gaps → CONSECUTIVE;
* any backward gap → RANDOM (writes in well-formed output phases move
  forward; backward jumps that survive metadata filtering are real);
* one positive gap value → STRIDED;
* few gap values with the smallest dominant and larger jumps recurring
  periodically (≥ 2 cycles) → STRIDED_CYCLIC — the signature of
  round-interleaved collective buffering (FLASH-fbs, VPIC-IO);
* otherwise MONOTONIC.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.core.records import AccessRecord


class AccessPattern(str, enum.Enum):
    CONSECUTIVE = "consecutive"
    STRIDED = "strided"
    STRIDED_CYCLIC = "strided cyclic"
    MONOTONIC = "monotonic"
    RANDOM = "random"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class TransitionMix:
    """Counts of per-transition classes (Figure 1 bars)."""

    consecutive: int = 0
    monotonic: int = 0
    random: int = 0

    @property
    def total(self) -> int:
        return self.consecutive + self.monotonic + self.random

    def fraction(self, which: str) -> float:
        total = self.total
        if total == 0:
            return 0.0
        return getattr(self, which) / total

    def __add__(self, other: "TransitionMix") -> "TransitionMix":
        return TransitionMix(self.consecutive + other.consecutive,
                             self.monotonic + other.monotonic,
                             self.random + other.random)


def transition_mix(offsets: np.ndarray, stops: np.ndarray) -> TransitionMix:
    """Classify each transition of one access sequence (already in order)."""
    if len(offsets) < 2:
        return TransitionMix()
    gaps = offsets[1:] - stops[:-1]
    return TransitionMix(
        consecutive=int(np.sum(gaps == 0)),
        monotonic=int(np.sum(gaps > 0)),
        random=int(np.sum(gaps < 0)),
    )


def _sequences_by_rank(records: list[AccessRecord]
                       ) -> dict[tuple[int, str], list[AccessRecord]]:
    out: dict[tuple[int, str], list[AccessRecord]] = {}
    for r in sorted(records, key=lambda r: (r.tstart, r.rid)):
        out.setdefault((r.rank, r.path), []).append(r)
    return out


def local_pattern_mix(records: list[AccessRecord]) -> TransitionMix:
    """Figure 1(b): transitions within each (rank, file) sequence."""
    total = TransitionMix()
    for seq in _sequences_by_rank(records).values():
        offsets = np.fromiter((r.offset for r in seq), np.int64, len(seq))
        stops = np.fromiter((r.stop for r in seq), np.int64, len(seq))
        total = total + transition_mix(offsets, stops)
    return total


def global_pattern_mix(records: list[AccessRecord]) -> TransitionMix:
    """Figure 1(a): transitions per file with all ranks interleaved."""
    byfile: dict[str, list[AccessRecord]] = {}
    for r in sorted(records, key=lambda r: (r.tstart, r.rid)):
        byfile.setdefault(r.path, []).append(r)
    total = TransitionMix()
    for seq in byfile.values():
        offsets = np.fromiter((r.offset for r in seq), np.int64, len(seq))
        stops = np.fromiter((r.stop for r in seq), np.int64, len(seq))
        total = total + transition_mix(offsets, stops)
    return total


def drop_library_metadata(records: list[AccessRecord]
                          ) -> list[AccessRecord]:
    """Apply the paper's small-metadata exception before classification.

    When a file mixes large data accesses with much smaller
    library-metadata accesses (headers, TOCs, index entries), drop
    accesses at least 8x smaller than the largest access.  The threshold
    anchors on the maximum because metadata operations can outnumber the
    data operations (e.g. HDF5 header pieces at small rank counts), which
    would fool a median.
    """
    if not records:
        return records
    sizes = np.fromiter((r.nbytes for r in records), np.int64, len(records))
    biggest = int(sizes.max())
    if biggest < 8 * int(sizes.min()):
        return records
    keep = sizes * 8 >= biggest
    return [r for r, k in zip(records, keep) if k]


def filter_metadata_by_file(records: list[AccessRecord]
                            ) -> list[AccessRecord]:
    """Per-file metadata exception, applied across all ranks at once."""
    byfile: dict[str, list[AccessRecord]] = {}
    for r in records:
        byfile.setdefault(r.path, []).append(r)
    out: list[AccessRecord] = []
    for recs in byfile.values():
        out.extend(drop_library_metadata(recs))
    out.sort(key=lambda r: (r.tstart, r.rid))
    return out


def classify_gap_sequence(offsets: np.ndarray,
                          stops: np.ndarray) -> AccessPattern:
    """Label one ordered access sequence per the Table 3 taxonomy."""
    n = len(offsets)
    if n < 2:
        return AccessPattern.CONSECUTIVE
    gaps = offsets[1:] - stops[:-1]
    n_zero = int(np.sum(gaps == 0))
    if n_zero >= 0.9 * len(gaps):
        return AccessPattern.CONSECUTIVE
    if np.any(gaps < 0):
        return AccessPattern.RANDOM
    positive = gaps[gaps > 0]
    values = Counter(positive.tolist())
    if len(values) == 1:
        return AccessPattern.STRIDED
    if _is_cyclic(gaps, values):
        return AccessPattern.STRIDED_CYCLIC
    dominant = values.most_common(1)[0][1]
    if dominant >= 0.8 * len(positive):
        return AccessPattern.STRIDED
    return AccessPattern.MONOTONIC


#: A cyclic phase must be short (few accesses between phase jumps); long
#: constant-stride runs with occasional dataset-boundary jumps read as
#: plain strided.
_MAX_CYCLE_SPACING = 4


def _is_cyclic(gaps: np.ndarray, values: Counter) -> bool:
    """Short periodic stride runs separated by recurring larger jumps.

    This is the signature of round-interleaved collective buffering: an
    aggregator writes a handful of stripes per I/O phase (gaps equal to
    the stripe interleave, the *most common* gap), then jumps to the next
    phase's region — FLASH-fbs and VPIC-IO in the paper's Table 3.
    Independent strided writers (Chombo, ParaDiS, FLASH-nofbs) produce
    long same-stride runs instead and stay "strided".
    """
    if len(values) > 3:
        return False
    stride, stride_count = values.most_common(1)[0]
    total_positive = sum(values.values())
    if stride_count < 0.5 * total_positive:
        return False
    # positions of the non-dominant (phase-boundary) jumps
    boundary_positions = np.flatnonzero((gaps > 0) & (gaps != stride))
    if len(boundary_positions) < 2:
        return False
    spacing = np.diff(boundary_positions)
    if len(spacing) and not np.all(spacing == spacing[0]):
        return False
    period = int(spacing[0]) if len(spacing) else len(gaps)
    return period <= _MAX_CYCLE_SPACING


def classify_rank_file(records: list[AccessRecord], *,
                       writes_only: bool = True,
                       filter_metadata: bool = True) -> AccessPattern:
    """Classify one (rank, file) sequence for the Table 3 taxonomy."""
    seq = [r for r in records if r.is_write] if writes_only else list(records)
    if filter_metadata:
        seq = drop_library_metadata(seq)
    seq.sort(key=lambda r: (r.tstart, r.rid))
    offsets = np.fromiter((r.offset for r in seq), np.int64, len(seq))
    stops = np.fromiter((r.stop for r in seq), np.int64, len(seq))
    return classify_gap_sequence(offsets, stops)


def classify_file(records: list[AccessRecord], *,
                  writes_only: bool = True,
                  prefiltered: bool = False) -> AccessPattern:
    """Majority (transition-weighted) pattern over a file's writing ranks.

    Pass ``prefiltered=True`` when library metadata was already stripped
    (e.g. by :func:`filter_metadata_by_file`) to skip the per-sequence
    filter.
    """
    weights: Counter = Counter()
    for (rank, _), seq in _sequences_by_rank(
            [r for r in records
             if (r.is_write or not writes_only)]).items():
        label = classify_rank_file(seq, writes_only=writes_only,
                                   filter_metadata=not prefiltered)
        weights[label] += max(1, len(seq) - 1)
    if not weights:
        return AccessPattern.CONSECUTIVE
    return weights.most_common(1)[0][0]
