"""Per-file operation timelines with conflict windows.

A debugging view for the §5.2 conditions: for one file, lay out every
rank's writes (``W``), reads (``R``), commits (``C``), opens (``[``) and
closes (``]``) on a character timeline, and mark the spans of detected
conflicts.  Reading a timeline makes it obvious *why* a pair conflicts —
no commit between the two ``W`` marks, or no ``] ... [`` pair between
the writer and the reader.

    rank 0 |--[---W--W---C-------]------
    rank 2 |--[------------W-----]------
    conflict WAW-D: ####________#

Pure presentation; all decisions come from the detector.
"""

from __future__ import annotations

from repro.core.conflicts import ConflictSet
from repro.tracer.events import (
    CLOSE_OPS,
    COMMIT_OPS,
    Layer,
    OPEN_OPS,
    READ_OPS,
    WRITE_OPS,
)
from repro.tracer.trace import Trace

#: mark precedence: later entries overwrite earlier ones in a cell
_MARKS = {"open": "[", "close": "]", "commit": "C", "read": "R",
          "write": "W"}


def _classify(func: str) -> str | None:
    if func in WRITE_OPS:
        return "write"
    if func in READ_OPS:
        return "read"
    if func in OPEN_OPS:
        return "open"
    if func in CLOSE_OPS:
        return "close"
    if func in COMMIT_OPS:
        return "commit"
    return None


def file_timeline(trace: Trace, path: str, *,
                  conflicts: ConflictSet | None = None,
                  width: int = 72) -> str:
    """Render one file's per-rank operation timeline.

    Pass a :class:`ConflictSet` (from the detector) to append one span
    line per conflicting pair on this file.
    """
    events: list[tuple[float, int, str]] = []
    # lint: allow-per-op-loop (timeline rendering; object path)
    for rec in trace.records:
        if rec.layer != Layer.POSIX or rec.path != path:
            continue
        kind = _classify(rec.func)
        if kind is not None:
            events.append((rec.tstart, rec.rank, kind))
    if not events:
        return f"{path}: no POSIX operations\n"
    t_lo = min(t for t, _, _ in events)
    t_hi = max(t for t, _, _ in events)
    span = (t_hi - t_lo) or 1.0

    def col(t: float) -> int:
        return min(width - 1, int((t - t_lo) / span * (width - 1)))

    ranks = sorted({r for _, r, _ in events})
    rows = {r: ["-"] * width for r in ranks}
    precedence = {"open": 0, "close": 1, "commit": 2, "read": 3,
                  "write": 4}
    placed: dict[tuple[int, int], str] = {}
    for t, rank, kind in sorted(events):
        c = col(t)
        prev = placed.get((rank, c))
        if prev is None or precedence[kind] >= precedence[prev]:
            placed[(rank, c)] = kind
            rows[rank][c] = _MARKS[kind]

    label_w = max(len(f"rank {r}") for r in ranks)
    lines = [f"{path}  (t = {t_lo:.6f} .. {t_hi:.6f} s)"]
    for r in ranks:
        lines.append(f"{f'rank {r}':<{label_w}} |" + "".join(rows[r]))
    if conflicts is not None:
        for c in conflicts:
            if c.path != path:
                continue
            a, b = col(c.first.tstart), col(c.second.tstart)
            bar = [" "] * width
            for i in range(min(a, b), max(a, b) + 1):
                bar[i] = "_"
            bar[a] = bar[b] = "#"
            lines.append(f"{c.label:<{label_w}} |" + "".join(bar))
    return "\n".join(lines) + "\n"


def conflict_timelines(trace: Trace, conflicts: ConflictSet, *,
                       width: int = 72,
                       max_files: int | None = None) -> str:
    """Timelines for every conflicted file of a run."""
    paths = conflicts.paths
    if max_files is not None:
        paths = paths[:max_files]
    if not paths:
        return ("no conflicts under "
                f"{conflicts.semantics.name.lower()} semantics\n")
    return "\n".join(
        file_timeline(trace, p, conflicts=conflicts, width=width)
        for p in paths)
