"""High-level X–Y sharing-pattern classification (paper Table 3).

``X`` is how many processes perform *data* I/O on a file group (N = all
ranks, M = a proper subset larger than one, 1 = a single rank); ``Y`` is
the number of files accessed per I/O phase under the same convention.
Groups are file families — files of one output kind, e.g. all checkpoint
files of a run — identified here by their directory (application proxies
put each output family in its own directory, matching how real runs
separate plot files, checkpoints, and scratch).

Two refinements match the paper's conventions:

* library metadata is excluded before counting writers (the paper
  classifies FLASH-fbs as M-1 even though ~30 extra ranks write small
  HDF5 metadata — only the six aggregators move data);
* a *series* of files that all share one writer set (checkpoint
  generations) counts as ``Y = 1``: each I/O phase accesses one shared
  file.  Distinct writer sets per file (rank-private or group files)
  count the files.
"""

from __future__ import annotations

import posixpath
from collections import defaultdict
from dataclasses import dataclass

from repro.core.patterns import (
    AccessPattern,
    classify_file,
    filter_metadata_by_file,
)
from repro.core.records import AccessRecord


@dataclass(frozen=True)
class SharingPattern:
    """One file group's Table 3 characterization."""

    group: str                # directory common to the group's files
    nfiles: int
    files_per_phase: int      # Y before cardinality bucketing
    writer_ranks: frozenset[int]
    reader_ranks: frozenset[int]
    bytes_written: int
    bytes_read: int
    pattern: AccessPattern

    def xy(self, nranks: int) -> str:
        """The paper's X-Y notation, e.g. ``"N-1"`` or ``"M-M"``."""
        ranks = self.writer_ranks or self.reader_ranks
        return f"{_cardinality(len(ranks), nranks)}-" \
               f"{_cardinality(self.files_per_phase, nranks)}"

    @property
    def io_ranks(self) -> frozenset[int]:
        return self.writer_ranks | self.reader_ranks


def _cardinality(count: int, nranks: int) -> str:
    if count >= nranks:
        return "N"
    if count <= 1:
        return "1"
    return "M"


def classify_sharing(records: list[AccessRecord],
                     nranks: int) -> list[SharingPattern]:
    """Group data accesses by directory and characterize each group.

    Groups are returned most-bytes-written first, so index 0 is the run's
    *primary* output pattern (the Table 3 row entry).
    """
    by_group: dict[str, list[AccessRecord]] = defaultdict(list)
    for r in records:
        by_group[posixpath.dirname(r.path)].append(r)
    out: list[SharingPattern] = []
    for group, recs in sorted(by_group.items()):
        data_recs = filter_metadata_by_file(recs)
        paths = {r.path for r in recs}
        writers = frozenset(r.rank for r in data_recs if r.is_write)
        readers = frozenset(r.rank for r in data_recs if not r.is_write)
        written = sum(r.nbytes for r in recs if r.is_write)
        read = sum(r.nbytes for r in recs if not r.is_write)
        pattern = classify_file(data_recs, writes_only=bool(writers),
                                prefiltered=True)
        out.append(SharingPattern(
            group=group, nfiles=len(paths),
            files_per_phase=_files_per_phase(data_recs, paths),
            writer_ranks=writers, reader_ranks=readers,
            bytes_written=written, bytes_read=read, pattern=pattern))
    out.sort(key=lambda g: (g.bytes_written, g.bytes_read), reverse=True)
    return out


def _files_per_phase(data_recs: list[AccessRecord],
                     paths: set[str]) -> int:
    """Y: count one file per phase for same-writer-set file series."""
    sets: dict[str, frozenset[int]] = defaultdict(frozenset)
    for r in data_recs:
        sets[r.path] = sets[r.path] | {r.rank}
    distinct = set(sets.values())
    if len(distinct) == 1 and len(sets) >= 1:
        return 1  # a series of same-pattern files (e.g. checkpoints)
    return len(paths)


def primary_pattern(records: list[AccessRecord],
                    nranks: int) -> SharingPattern | None:
    """The dominant (most bytes written) output group, or None."""
    groups = classify_sharing(records, nranks)
    return groups[0] if groups else None
