"""Overlap detection — the paper's Algorithm 1 plus references and extras.

Input is an :class:`~repro.core.records.AccessTable` (one file).  The
sweep sorts extents by start offset; for each record, candidates that can
still overlap are exactly the following records whose start lies before
this record's stop — found in one ``searchsorted``, so the cost is
``O(n log n + P)`` for ``P`` overlapping pairs (the paper notes the same
"linear in practice, quadratic worst case" behaviour).

``find_overlaps_bruteforce`` is the :math:`O(n^2)` oracle used by tests
and by the scaling benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.core.records import AccessTable


def find_overlaps(table: AccessTable) -> np.ndarray:
    """All overlapping pairs, as an ``(P, 2)`` array of row indices.

    Pair rows are indices into the table's (time-sorted) arrays, ordered
    so that ``pair[0]``'s start offset <= ``pair[1]``'s.  Self pairs are
    excluded; every unordered pair appears once.
    """
    n = len(table)
    if n < 2:
        return np.empty((0, 2), dtype=np.int64)
    order = np.argsort(table.offset, kind="stable")
    starts = table.offset[order]
    stops = table.stop[order]
    # With starts sorted, extent i overlaps a later extent j exactly
    # when starts[j] < stops[i] (half-open extents), so the partners of
    # i are the contiguous run (i, hi[i]) where hi[i] is the first
    # index whose start is >= stops[i].
    hi = np.searchsorted(starts, stops, side="left")
    counts = np.maximum(hi - np.arange(n) - 1, 0)
    total = int(np.sum(counts))
    if not total:
        return np.empty((0, 2), dtype=np.int64)
    a = np.repeat(np.arange(n), counts)
    # b is the concatenation of arange(i+1, hi[i]) for every i — built
    # as a segmented arange: element k of segment i is (i+1) + k, and k
    # is the element's distance from its segment's start in the flat
    # output.
    seg_first = np.cumsum(counts) - counts
    b = a + 1 + np.arange(total) - np.repeat(seg_first, counts)
    return np.stack([order[a], order[b]], axis=1)


def find_overlaps_bruteforce(table: AccessTable) -> np.ndarray:
    """Reference :math:`O(n^2)` overlap detector (test oracle)."""
    n = len(table)
    out = []
    for i in range(n):
        for j in range(i + 1, n):
            if (table.offset[i] < table.stop[j]
                    and table.offset[j] < table.stop[i]):
                out.append((i, j))
    if not out:
        return np.empty((0, 2), dtype=np.int64)
    return np.asarray(out, dtype=np.int64)


def canonical_pairs(pairs: np.ndarray) -> set[tuple[int, int]]:
    """Order-insensitive set form of a pair array, for comparisons."""
    return {(int(min(a, b)), int(max(a, b))) for a, b in pairs}


def overlap_rank_matrix(table: AccessTable, nranks: int) -> np.ndarray:
    """The paper's table ``P[r_i, r_j]``: which rank pairs have overlaps."""
    mat = np.zeros((nranks, nranks), dtype=np.int64)
    pairs = find_overlaps(table)
    if len(pairs):
        ri = table.rank[pairs[:, 0]]
        rj = table.rank[pairs[:, 1]]
        np.add.at(mat, (ri, rj), 1)
        np.add.at(mat, (rj, ri), 1)
    return mat
