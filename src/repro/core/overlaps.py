"""Overlap detection — the paper's Algorithm 1 plus references and extras.

Input is an :class:`~repro.core.records.AccessTable` (one file).  The
sweep sorts extents by start offset; for each record, candidates that can
still overlap are exactly the following records whose start lies before
this record's stop — found in one ``searchsorted``, so the cost is
``O(n log n + P)`` for ``P`` overlapping pairs (the paper notes the same
"linear in practice, quadratic worst case" behaviour).

``find_overlaps_bruteforce`` is the :math:`O(n^2)` oracle used by tests
and by the scaling benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.core.records import AccessTable


def find_overlaps(table: AccessTable) -> np.ndarray:
    """All overlapping pairs, as an ``(P, 2)`` array of row indices.

    Pair rows are indices into the table's (time-sorted) arrays, ordered
    so that ``pair[0]``'s start offset <= ``pair[1]``'s.  Self pairs are
    excluded; every unordered pair appears once.
    """
    n = len(table)
    if n < 2:
        return np.empty((0, 2), dtype=np.int64)
    order = np.argsort(table.offset, kind="stable")
    starts = table.offset[order]
    stops = table.stop[order]
    # For sorted record i, overlap candidates are j > i with
    # starts[j] < stops[i] (half-open extents).  Running maximum of stops
    # is NOT needed for candidate generation because we emit from each i
    # forward; correctness follows from the pairwise check below.
    firsts: list[np.ndarray] = []
    seconds: list[np.ndarray] = []
    # hi[i]: first index whose start is >= stops[i]
    hi = np.searchsorted(starts, stops[np.arange(n)], side="left")
    counts = hi - np.arange(n) - 1
    counts = np.maximum(counts, 0)
    total = int(np.sum(counts))
    if total == 0:
        # Extents sorted by start with no start before a predecessor's
        # stop can still overlap if an earlier long extent spans later
        # ones -- handle via the fallback sweep below.
        pass
    idx_first = np.repeat(np.arange(n), counts)
    idx_second = np.concatenate(
        [np.arange(i + 1, h) for i, h in enumerate(hi) if h > i + 1]
    ) if total else np.empty(0, dtype=np.int64)
    if total:
        firsts.append(idx_first)
        seconds.append(idx_second)
    # Long-extent fallback: record i may also overlap j > hi[i] when some
    # earlier extent spans past intermediate starts.  Since starts are
    # sorted, extent i overlaps j>i iff starts[j] < stops[i]; that is
    # exactly the candidate rule above, so no fallback pairs exist.  The
    # subtlety is only that an extent can overlap MANY following ones,
    # which np.repeat already covers.
    if not firsts:
        return np.empty((0, 2), dtype=np.int64)
    a = np.concatenate(firsts)
    b = np.concatenate(seconds)
    pairs = np.stack([order[a], order[b]], axis=1)
    return pairs


def find_overlaps_bruteforce(table: AccessTable) -> np.ndarray:
    """Reference :math:`O(n^2)` overlap detector (test oracle)."""
    n = len(table)
    out = []
    for i in range(n):
        for j in range(i + 1, n):
            if (table.offset[i] < table.stop[j]
                    and table.offset[j] < table.stop[i]):
                out.append((i, j))
    if not out:
        return np.empty((0, 2), dtype=np.int64)
    return np.asarray(out, dtype=np.int64)


def canonical_pairs(pairs: np.ndarray) -> set[tuple[int, int]]:
    """Order-insensitive set form of a pair array, for comparisons."""
    return {(int(min(a, b)), int(max(a, b))) for a, b in pairs}


def overlap_rank_matrix(table: AccessTable, nranks: int) -> np.ndarray:
    """The paper's table ``P[r_i, r_j]``: which rank pairs have overlaps."""
    mat = np.zeros((nranks, nranks), dtype=np.int64)
    pairs = find_overlaps(table)
    if len(pairs):
        ri = table.rank[pairs[:, 0]]
        rj = table.rank[pairs[:, 1]]
        np.add.at(mat, (ri, rj), 1)
        np.add.at(mat, (rj, ri), 1)
    return mat
