"""Resolved byte-level access records, columnar for vectorized analysis.

After offset reconstruction every POSIX data operation becomes an
:class:`AccessRecord` — the paper's tuple ``(t, r, os, oe, type)`` plus
the fields the conflict conditions need (path, fd, record id).  The
:class:`AccessTable` stores them as numpy arrays per file so the overlap
sweep and the conflict predicates run on contiguous data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError


@dataclass(frozen=True)
class AccessRecord:
    """One resolved data access.

    ``offset``/``stop`` are half-open; the paper's inclusive ``oe`` is
    ``stop - 1``.  Zero-length accesses never enter a table.
    """

    rid: int
    rank: int
    path: str
    offset: int
    stop: int
    is_write: bool
    tstart: float
    tend: float
    fd: int = -1
    func: str = ""
    issuer: str = "app"

    @property
    def nbytes(self) -> int:
        return self.stop - self.offset

    @property
    def oe_inclusive(self) -> int:
        return self.stop - 1


class AccessTable:
    """Columnar store of the accesses to one file, sorted by start time."""

    __slots__ = ("path", "records", "rid", "rank", "offset", "stop",
                 "is_write", "tstart", "tend")

    def __init__(self, path: str, records: list[AccessRecord]):
        for r in records:
            if r.path != path:
                raise AnalysisError(
                    f"record {r.rid} path {r.path!r} != table path {path!r}")
            if r.stop <= r.offset:
                raise AnalysisError(
                    f"record {r.rid} has empty extent [{r.offset},{r.stop})")
        self.path = path
        self.records = sorted(records, key=lambda r: (r.tstart, r.rid))
        n = len(self.records)
        self.rid = np.fromiter((r.rid for r in self.records), np.int64, n)
        self.rank = np.fromiter((r.rank for r in self.records), np.int64, n)
        self.offset = np.fromiter((r.offset for r in self.records),
                                  np.int64, n)
        self.stop = np.fromiter((r.stop for r in self.records), np.int64, n)
        self.is_write = np.fromiter((r.is_write for r in self.records),
                                    np.bool_, n)
        self.tstart = np.fromiter((r.tstart for r in self.records),
                                  np.float64, n)
        self.tend = np.fromiter((r.tend for r in self.records),
                                np.float64, n)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def writer_ranks(self) -> set[int]:
        return set(self.rank[self.is_write].tolist())

    @property
    def reader_ranks(self) -> set[int]:
        return set(self.rank[~self.is_write].tolist())

    @property
    def bytes_written(self) -> int:
        w = self.is_write
        return int(np.sum(self.stop[w] - self.offset[w]))

    @property
    def bytes_read(self) -> int:
        r = ~self.is_write
        return int(np.sum(self.stop[r] - self.offset[r]))

    def for_rank(self, rank: int) -> list[AccessRecord]:
        return [r for r in self.records if r.rank == rank]


def group_by_path(records: list[AccessRecord]) -> dict[str, AccessTable]:
    """Bucket resolved accesses into one :class:`AccessTable` per file."""
    buckets: dict[str, list[AccessRecord]] = {}
    for r in records:
        buckets.setdefault(r.path, []).append(r)
    return {path: AccessTable(path, recs)
            for path, recs in sorted(buckets.items())}
