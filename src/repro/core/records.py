"""Resolved byte-level access records, columnar for vectorized analysis.

After offset reconstruction every POSIX data operation becomes an
:class:`AccessRecord` — the paper's tuple ``(t, r, os, oe, type)`` plus
the fields the conflict conditions need (path, fd, record id).  The
:class:`AccessTable` stores them as numpy arrays per file so the overlap
sweep and the conflict predicates run on contiguous data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError


@dataclass(frozen=True)
class AccessRecord:
    """One resolved data access.

    ``offset``/``stop`` are half-open; the paper's inclusive ``oe`` is
    ``stop - 1``.  Zero-length accesses never enter a table.
    """

    rid: int
    rank: int
    path: str
    offset: int
    stop: int
    is_write: bool
    tstart: float
    tend: float
    fd: int = -1
    func: str = ""
    issuer: str = "app"

    @property
    def nbytes(self) -> int:
        return self.stop - self.offset

    @property
    def oe_inclusive(self) -> int:
        return self.stop - 1


class AccessTable:
    """Columnar store of the accesses to one file, sorted by start time.

    Built either from a list of :class:`AccessRecord` objects (the
    original object path) or directly from parallel arrays via
    :meth:`from_columns` — the columnar reconstruction never
    materializes per-op record objects up front.  Either way the numpy
    columns are identical; ``records`` is a property that materializes
    the object list lazily on first touch (the count path never pays
    for it).
    """

    __slots__ = ("path", "_records", "_lazy", "rid", "rank", "offset",
                 "stop", "is_write", "tstart", "tend")

    def __init__(self, path: str, records: list[AccessRecord]):
        for r in records:
            if r.path != path:
                raise AnalysisError(
                    f"record {r.rid} path {r.path!r} != table path {path!r}")
            if r.stop <= r.offset:
                raise AnalysisError(
                    f"record {r.rid} has empty extent [{r.offset},{r.stop})")
        self.path = path
        self._records = sorted(records, key=lambda r: (r.tstart, r.rid))
        self._lazy = None
        n = len(self._records)
        self.rid = np.fromiter((r.rid for r in self._records), np.int64, n)
        self.rank = np.fromiter((r.rank for r in self._records), np.int64, n)
        self.offset = np.fromiter((r.offset for r in self._records),
                                  np.int64, n)
        self.stop = np.fromiter((r.stop for r in self._records),
                                np.int64, n)
        self.is_write = np.fromiter((r.is_write for r in self._records),
                                    np.bool_, n)
        self.tstart = np.fromiter((r.tstart for r in self._records),
                                  np.float64, n)
        self.tend = np.fromiter((r.tend for r in self._records),
                                np.float64, n)

    @classmethod
    def from_columns(cls, path: str, *, rid: np.ndarray, rank: np.ndarray,
                     offset: np.ndarray, stop: np.ndarray,
                     is_write: np.ndarray, tstart: np.ndarray,
                     tend: np.ndarray, fd: np.ndarray | None = None,
                     func_id: np.ndarray | None = None,
                     issuer_id: np.ndarray | None = None,
                     funcs: tuple[str, ...] = (),
                     issuers: tuple[str, ...] = ()) -> "AccessTable":
        """Build a table from parallel arrays, no per-op objects.

        Rows are re-sorted by ``(tstart, rid)`` exactly like the object
        constructor.  ``fd``/``func_id``/``issuer_id`` (with their string
        tables) feed the lazy ``records`` materialization; when omitted,
        materialized records carry the dataclass defaults.
        """
        bad = np.flatnonzero(stop <= offset)
        if bad.size:
            i = int(bad[0])
            raise AnalysisError(
                f"record {int(rid[i])} has empty extent "
                f"[{int(offset[i])},{int(stop[i])})")
        order = np.lexsort((rid, tstart))
        t = cls.__new__(cls)
        t.path = path
        t._records = None
        t.rid = np.ascontiguousarray(rid[order], dtype=np.int64)
        t.rank = np.ascontiguousarray(rank[order], dtype=np.int64)
        t.offset = np.ascontiguousarray(offset[order], dtype=np.int64)
        t.stop = np.ascontiguousarray(stop[order], dtype=np.int64)
        t.is_write = np.ascontiguousarray(is_write[order], dtype=np.bool_)
        t.tstart = np.ascontiguousarray(tstart[order], dtype=np.float64)
        t.tend = np.ascontiguousarray(tend[order], dtype=np.float64)
        t._lazy = (
            None if fd is None else np.asarray(fd[order], dtype=np.int64),
            None if func_id is None else np.asarray(func_id[order]),
            None if issuer_id is None else np.asarray(issuer_id[order]),
            tuple(funcs), tuple(issuers))
        return t

    @property
    def records(self) -> list[AccessRecord]:
        """The sorted :class:`AccessRecord` list (materialized lazily)."""
        if self._records is None:
            self._records = self._materialize()
        return self._records

    def _materialize(self) -> list[AccessRecord]:
        n = len(self.rid)
        fd, func_id, issuer_id, funcs, issuers = self._lazy
        fds = [-1] * n if fd is None else fd.tolist()
        func_names = ([""] * n if func_id is None
                      else [funcs[i] for i in func_id.tolist()])
        issuer_names = (["app"] * n if issuer_id is None
                        else [issuers[i] for i in issuer_id.tolist()])
        path = self.path
        rows = zip(self.rid.tolist(), self.rank.tolist(),
                   self.offset.tolist(), self.stop.tolist(),
                   self.is_write.tolist(), self.tstart.tolist(),
                   self.tend.tolist(), fds, func_names, issuer_names)
        return [AccessRecord(rid=rid, rank=rank, path=path, offset=off,
                             stop=stop, is_write=w, tstart=t0, tend=t1,
                             fd=d, func=fn, issuer=iss)
                for rid, rank, off, stop, w, t0, t1, d, fn, iss in rows]

    def __len__(self) -> int:
        return len(self.rid)

    def __iter__(self):
        return iter(self.records)

    @property
    def writer_ranks(self) -> set[int]:
        return set(self.rank[self.is_write].tolist())

    @property
    def reader_ranks(self) -> set[int]:
        return set(self.rank[~self.is_write].tolist())

    @property
    def bytes_written(self) -> int:
        w = self.is_write
        return int(np.sum(self.stop[w] - self.offset[w]))

    @property
    def bytes_read(self) -> int:
        r = ~self.is_write
        return int(np.sum(self.stop[r] - self.offset[r]))

    def for_rank(self, rank: int) -> list[AccessRecord]:
        # lint: allow-per-op-loop (object-view convenience accessor)
        return [r for r in self.records if r.rank == rank]


def group_by_path(records: list[AccessRecord]) -> dict[str, AccessTable]:
    """Bucket resolved accesses into one :class:`AccessTable` per file."""
    buckets: dict[str, list[AccessRecord]] = {}
    for r in records:
        buckets.setdefault(r.path, []).append(r)
    return {path: AccessTable(path, recs)
            for path, recs in sorted(buckets.items())}
