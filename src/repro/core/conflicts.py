"""Conflict detection under relaxed consistency semantics (paper §5.2).

Two accesses to the same file, ordered ``t1 < t2``, are a *potential
conflict* when they overlap and the first is a write; they are classified
RAW/WAW × same-process (S) / different-process (D).  Whether a potential
conflict is an *actual* conflict depends on the PFS model:

* **strong** — never (sequential consistency hides write latency);
* **commit** — conflict iff the writer executes no commit operation
  (``fsync``/``fdatasync``/``fflush``/``close``/``fclose``) on the file in
  ``(t1, t2)``;
* **session** — conflict iff there is no close by the writer at ``tc``
  and open by the second process at ``to`` with ``t1 < tc < to < t2``;
* **eventual** — every potential conflict is an actual conflict (no
  operation forces visibility);
* **object** — conflicts exist at *whole-object* granularity, not byte
  granularity.  Accesses are coalesced into PUT/GET sessions (one per
  ``(rank, open..close)`` window); a PUT session conflicts with every
  other session on the object unless the PUT's close precedes the other
  session's open — the only visibility edge an immutable-PUT store
  offers.  Byte overlap is irrelevant: two disjoint-byte writers racing
  on one object clobber each other's whole-object versions.

Commit-conflicts are a subset of session-conflicts: a qualifying
close/open pair implies the writer closed, and close counts as a commit.
A property test pins that theorem.  Session-conflicts are in turn a
subset of object-conflicts (every overlapping pair is a whole-object
pair, and object clearing implies session clearing), which is why
``SESSION >= OBJECT`` in the semantics lattice.
"""

from __future__ import annotations

import enum
from bisect import bisect_right
from dataclasses import dataclass, field

import numpy as np

from repro.core.overlaps import find_overlaps
from repro.core.records import AccessRecord, AccessTable
from repro.core.semantics import Semantics
from repro.tracer.events import CLOSE_OPS, COMMIT_OPS, Layer, OPEN_OPS
from repro.tracer.trace import Trace


class ConflictKind(str, enum.Enum):
    RAW = "RAW"
    WAW = "WAW"

    def __str__(self) -> str:
        return self.value


class ConflictScope(str, enum.Enum):
    SAME = "S"
    DIFFERENT = "D"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Conflict:
    """One conflicting access pair (first is always the write)."""

    path: str
    kind: ConflictKind
    scope: ConflictScope
    first: AccessRecord
    second: AccessRecord

    @property
    def label(self) -> str:
        return f"{self.kind.value}-{self.scope.value}"


@dataclass
class ConflictSet:
    """All conflicts of a run under one semantics model."""

    semantics: Semantics
    conflicts: list[Conflict] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.conflicts)

    def __iter__(self):
        return iter(self.conflicts)

    def __bool__(self) -> bool:
        return bool(self.conflicts)

    def has(self, kind: ConflictKind, scope: ConflictScope) -> bool:
        return any(c.kind == kind and c.scope == scope for c in self.conflicts)

    @property
    def flags(self) -> dict[str, bool]:
        """Table 4 cell flags: ``{"WAW-S": ..., "WAW-D": ..., ...}``."""
        return {
            f"{kind.value}-{scope.value}": self.has(kind, scope)
            for kind in (ConflictKind.WAW, ConflictKind.RAW)
            for scope in (ConflictScope.SAME, ConflictScope.DIFFERENT)
        }

    @property
    def paths(self) -> list[str]:
        seen: dict[str, None] = {}
        for c in self.conflicts:
            seen.setdefault(c.path, None)
        return list(seen)

    def by_path(self) -> dict[str, list[Conflict]]:
        out: dict[str, list[Conflict]] = {}
        for c in self.conflicts:
            out.setdefault(c.path, []).append(c)
        return out

    @property
    def cross_process_only(self) -> "ConflictSet":
        return ConflictSet(self.semantics, [
            c for c in self.conflicts if c.scope == ConflictScope.DIFFERENT])


class VisibilityIndex:
    """Per (rank, path) sorted timelines of opens, closes, and commits.

    Conditions 3 and 4 of §5.2 become binary searches against these
    timelines (the paper suggests exactly this implementation).  The
    timelines are also exposed as numpy arrays so the pair filter can
    evaluate whole batches of candidate pairs at once.
    """

    def __init__(self, trace: Trace):
        self._opens: dict[tuple[int, str], list[float]] = {}
        self._closes: dict[tuple[int, str], list[float]] = {}
        self._commits: dict[tuple[int, str], list[float]] = {}
        for rec in trace.records:  # lint: allow-per-op-loop (object path)
            if rec.layer != Layer.POSIX or rec.path is None:
                continue
            key = (rec.rank, rec.path)
            if rec.func in OPEN_OPS:
                self._opens.setdefault(key, []).append(rec.tstart)
            if rec.func in CLOSE_OPS:
                self._closes.setdefault(key, []).append(rec.tstart)
            if rec.func in COMMIT_OPS:  # closes included: close is a commit
                self._commits.setdefault(key, []).append(rec.tstart)
        for table in (self._opens, self._closes, self._commits):
            for times in table.values():
                times.sort()
        self._array_cache: dict[tuple[str, int, str], np.ndarray] = {}

    @classmethod
    def from_columnar(cls, ct) -> "VisibilityIndex":
        """Build the timelines from a columnar trace, no record objects.

        Each of the three event families is one mask + lexsort + group
        split over the POSIX rows; the resulting per-(rank, path) lists
        are identical to what ``__init__`` builds from the objects.
        """
        vis = cls.__new__(cls)
        vis._opens = {}
        vis._closes = {}
        vis._commits = {}
        vis._array_cache = {}
        c = ct.columns
        base = ct.posix_mask() & (c["path_id"] >= 0)
        fid = c["func_id"]
        for table, ops in ((vis._opens, OPEN_OPS),
                           (vis._closes, CLOSE_OPS),
                           (vis._commits, COMMIT_OPS)):
            rows = np.flatnonzero(base & ct.func_lookup(ops)[fid])
            if rows.size == 0:
                continue
            order = np.lexsort((rows, c["path_id"][rows],
                                c["rank"][rows]))
            rank = c["rank"][rows][order].tolist()
            pid = c["path_id"][rows][order].tolist()
            times = c["tstart"][rows][order].tolist()
            bounds = np.flatnonzero(
                np.r_[True, np.diff(c["rank"][rows][order]) != 0]
                | np.r_[True, np.diff(c["path_id"][rows][order]) != 0]
            ).tolist() + [len(rank)]
            for gi in range(len(bounds) - 1):
                s, e = bounds[gi], bounds[gi + 1]
                group = times[s:e]
                group.sort()  # trace order is time order: no-op, parity
                table[(rank[s], ct.paths[pid[s]])] = group
        return vis

    def times_array(self, which: str, rank: int, path: str) -> np.ndarray:
        """Sorted event times as a float64 array (cached)."""
        key = (which, rank, path)
        arr = self._array_cache.get(key)
        if arr is None:
            table = {"open": self._opens, "close": self._closes,
                     "commit": self._commits}[which]
            arr = np.asarray(table.get((rank, path), ()),
                             dtype=np.float64)
            self._array_cache[key] = arr
        return arr

    def commit_between(self, rank: int, path: str,
                       t1: float, t2: float) -> bool:
        """Does ``rank`` commit ``path`` strictly inside ``(t1, t2)``?"""
        times = self._commits.get((rank, path), ())
        i = bisect_right(times, t1)
        return i < len(times) and times[i] < t2

    def first_close_after(self, rank: int, path: str, t: float) -> float:
        times = self._closes.get((rank, path), ())
        i = bisect_right(times, t)
        return times[i] if i < len(times) else float("inf")

    def open_between(self, rank: int, path: str,
                     t_lo: float, t_hi: float) -> bool:
        """Does ``rank`` open ``path`` strictly inside ``(t_lo, t_hi)``?"""
        times = self._opens.get((rank, path), ())
        i = bisect_right(times, t_lo)
        return i < len(times) and times[i] < t_hi

    def session_pair_between(self, writer: int, reader: int, path: str,
                             t1: float, t2: float) -> bool:
        """Condition 4: close by writer at tc, open by reader at to with
        ``t1 < tc < to < t2``."""
        tc = self.first_close_after(writer, path, t1)
        if tc >= t2:
            return False
        return self.open_between(reader, path, tc, t2)


def _object_sessions(table: AccessTable, vis: VisibilityIndex):
    """Coalesce a file's accesses into whole-object PUT/GET sessions.

    A session is one ``(rank, open..close)`` window: every access is
    assigned to the last open at-or-before it by its rank, and the
    session's close is the first close after its latest member access
    (``inf`` when the window never closes — an unpublished PUT).
    Accesses with no preceding open fall into one catch-all session per
    rank, which is conservative: it can only merge sessions, never
    invent a clearing close/open edge.

    Returns parallel per-session arrays, sorted by (open time, first
    access time, first row): ``rank``, ``open_t``, ``close_t``, ``put``
    (has at least one write), ``first_row`` (earliest access),
    ``write_row`` (earliest write, -1 for GET sessions).
    """
    n = len(table)
    t = table.tstart
    rank = table.rank
    open_t = np.full(n, -np.inf)
    close_t = np.full(n, np.inf)
    for r in np.unique(rank):
        sel = rank == r
        opens = vis.times_array("open", int(r), table.path)
        if opens.size:
            oi = np.searchsorted(opens, t[sel], side="right") - 1
            open_t[sel] = np.where(oi >= 0, opens[np.maximum(oi, 0)],
                                   -np.inf)
        closes = vis.times_array("close", int(r), table.path)
        if closes.size:
            ci = np.searchsorted(closes, t[sel], side="right")
            close_t[sel] = np.where(
                ci < closes.size,
                closes[np.minimum(ci, closes.size - 1)], np.inf)
    # group rows by (rank, open_t); table rows are (tstart, rid)-sorted,
    # so the first row of each group is the session's earliest access
    order = np.lexsort((np.arange(n), open_t, rank))
    g_rank = rank[order]
    g_open = open_t[order]
    # element comparison, not np.diff: open_t may be -inf (no open),
    # and inf - inf is nan, which would split the catch-all session
    new = np.r_[True, (g_rank[1:] != g_rank[:-1])
                | (g_open[1:] != g_open[:-1])]
    sid = np.cumsum(new) - 1          # session id per sorted row
    nsess = int(sid[-1]) + 1 if n else 0
    starts = np.flatnonzero(new)
    s_rank = g_rank[starts]
    s_open = g_open[starts]
    # a session publishes at the first close after its *last* member
    # access — the latest per-row close is the conservative choice
    s_close = np.full(nsess, -np.inf)
    np.maximum.at(s_close, sid, close_t[order])
    # earliest member row and earliest write row of each session
    s_first = np.full(nsess, n, dtype=np.int64)
    np.minimum.at(s_first, sid, order)
    s_write = np.full(nsess, n, dtype=np.int64)
    w = table.is_write[order]
    np.minimum.at(s_write, sid[w], order[w])
    s_put = s_write < n
    s_write = np.where(s_put, s_write, -1)
    # deterministic session order: open time, then first access
    so = np.lexsort((s_first, t[s_first], s_open))
    return (s_rank[so], s_open[so], s_close[so], s_put[so],
            s_first[so], s_write[so])


def _object_conflict_pairs(table: AccessTable, vis: VisibilityIndex):
    """Whole-object conflicting session pairs.

    Returns ``(first_row, second_row, waw, same)`` arrays: exemplar
    row indices into ``table`` (the PUT's first write and the second
    session's first write/access), plus kind and scope masks.
    """
    empty = (np.empty(0, np.int64),) * 2 + (np.empty(0, bool),) * 2
    if not len(table):
        return empty
    s_rank, s_open, s_close, s_put, s_first, s_write = \
        _object_sessions(table, vis)
    ns = len(s_rank)
    if ns < 2:
        return empty
    # ordered pairs (i, j), i before j in session order, i a PUT;
    # cleared only when the PUT's close precedes the second's open
    i_idx, j_idx = np.triu_indices(ns, k=1)
    keep = s_put[i_idx] & ~(s_close[i_idx] < s_open[j_idx])
    i_idx, j_idx = i_idx[keep], j_idx[keep]
    waw = s_put[j_idx]
    same = s_rank[i_idx] == s_rank[j_idx]
    first_row = s_write[i_idx]
    second_row = np.where(waw, s_write[j_idx], s_first[j_idx])
    # report order: by exemplar times, like the byte-level detector
    t = table.tstart
    o = np.lexsort((t[second_row], t[first_row]))
    return first_row[o], second_row[o], waw[o], same[o]


def _is_actual_conflict(semantics: Semantics, vis: VisibilityIndex,
                        path: str, first: AccessRecord,
                        second: AccessRecord) -> bool:
    if semantics is Semantics.STRONG:
        return False
    if semantics is Semantics.EVENTUAL:
        return True
    if semantics is Semantics.COMMIT:
        return not vis.commit_between(first.rank, path,
                                      first.tstart, second.tstart)
    # session
    return not vis.session_pair_between(first.rank, second.rank, path,
                                        first.tstart, second.tstart)


def _actual_conflict_mask(table: AccessTable, pairs: np.ndarray,
                          vis: VisibilityIndex,
                          semantics: Semantics) -> np.ndarray:
    """Vectorized §5.2 conditions 3/4 over a batch of candidate pairs.

    Pairs are grouped by the ranks involved so each group's condition is
    one or two ``searchsorted`` calls over the rank's event timeline —
    the array-at-a-time formulation of the paper's binary-search idea.
    """
    n = len(pairs)
    if semantics is Semantics.STRONG:
        return np.zeros(n, dtype=bool)
    if semantics is Semantics.EVENTUAL:
        return np.ones(n, dtype=bool)
    t = table.tstart
    rank = table.rank
    t1 = t[pairs[:, 0]]
    t2 = t[pairs[:, 1]]
    r1 = rank[pairs[:, 0]]
    r2 = rank[pairs[:, 1]]
    conflict = np.ones(n, dtype=bool)
    if semantics is Semantics.COMMIT:
        for writer in np.unique(r1):
            sel = r1 == writer
            commits = vis.times_array("commit", int(writer), table.path)
            if commits.size == 0:
                continue  # no commits: all selected pairs conflict
            idx = np.searchsorted(commits, t1[sel], side="right")
            has_commit = (idx < commits.size) & \
                (commits[np.minimum(idx, commits.size - 1)] < t2[sel])
            conflict[np.flatnonzero(sel)[has_commit]] = False
        return conflict
    # session: exists close by r1 at tc and open by r2 at to with
    # t1 < tc < to < t2
    tc = np.full(n, np.inf)
    for writer in np.unique(r1):
        sel = r1 == writer
        closes = vis.times_array("close", int(writer), table.path)
        if closes.size == 0:
            continue
        idx = np.searchsorted(closes, t1[sel], side="right")
        found = idx < closes.size
        vals = np.full(sel.sum(), np.inf)
        vals[found] = closes[np.minimum(idx, closes.size - 1)][found]
        tc[sel] = vals
    for reader in np.unique(r2):
        sel = (r2 == reader) & np.isfinite(tc) & (tc < t2)
        if not np.any(sel):
            continue
        opens = vis.times_array("open", int(reader), table.path)
        if opens.size == 0:
            continue
        idx = np.searchsorted(opens, tc[sel], side="right")
        found = idx < opens.size
        to = np.full(sel.sum(), np.inf)
        to[found] = opens[np.minimum(idx, opens.size - 1)][found]
        cleared = to < t2[sel]
        conflict[np.flatnonzero(sel)[cleared]] = False
    return conflict


def detect_conflicts_in_table(table: AccessTable, vis: VisibilityIndex,
                              semantics: Semantics,
                              max_conflicts: int | None = None,
                              engine: str = "vectorized",
                              ) -> list[Conflict]:
    """Classify every overlapping pair of one file's accesses.

    ``engine="vectorized"`` (default) evaluates the visibility
    conditions in numpy batches; ``engine="python"`` keeps the per-pair
    binary-search form — retained as the test oracle.  Under ``OBJECT``
    semantics pairing is whole-object (session granularity) and both
    engines share the one implementation.
    """
    if semantics is Semantics.OBJECT:
        fr, sr, waw, same = _object_conflict_pairs(table, vis)
        out = []
        for k in range(len(fr)):
            out.append(Conflict(
                path=table.path,
                kind=ConflictKind.WAW if waw[k] else ConflictKind.RAW,
                scope=(ConflictScope.SAME if same[k]
                       else ConflictScope.DIFFERENT),
                first=table.records[int(fr[k])],
                second=table.records[int(sr[k])]))
            if max_conflicts is not None and len(out) >= max_conflicts:
                break
        return out
    pairs = find_overlaps(table)
    out: list[Conflict] = []
    if not len(pairs):
        return out
    # order each pair by entry timestamp (t1 < t2)
    t = table.tstart
    swap = t[pairs[:, 0]] > t[pairs[:, 1]]
    pairs[swap] = pairs[swap][:, ::-1]
    # only pairs whose first op is a write can conflict
    pairs = pairs[table.is_write[pairs[:, 0]]]
    if not len(pairs):
        return out
    # deterministic report order: by first access time, then second
    order = np.lexsort((t[pairs[:, 1]], t[pairs[:, 0]]))
    pairs = pairs[order]
    if engine == "vectorized":
        mask = _actual_conflict_mask(table, pairs, vis, semantics)
        pairs = pairs[mask]
    for i, j in pairs:
        first = table.records[int(i)]
        second = table.records[int(j)]
        if engine != "vectorized" and not _is_actual_conflict(
                semantics, vis, table.path, first, second):
            continue
        kind = ConflictKind.WAW if second.is_write else ConflictKind.RAW
        scope = (ConflictScope.SAME if first.rank == second.rank
                 else ConflictScope.DIFFERENT)
        out.append(Conflict(path=table.path, kind=kind, scope=scope,
                            first=first, second=second))
        if max_conflicts is not None and len(out) >= max_conflicts:
            break
    return out


def count_conflicts_in_table(table: AccessTable, vis: VisibilityIndex,
                             semantics: Semantics) -> dict[str, int]:
    """Count conflicts by class without materializing pair objects.

    Pure-numpy fast path for large traces: returns
    ``{"WAW-S": n, "WAW-D": n, "RAW-S": n, "RAW-D": n}``.
    """
    out = {"WAW-S": 0, "WAW-D": 0, "RAW-S": 0, "RAW-D": 0}
    if semantics is Semantics.OBJECT:
        _, _, waw, same = _object_conflict_pairs(table, vis)
        out["WAW-S"] = int(np.sum(waw & same))
        out["WAW-D"] = int(np.sum(waw & ~same))
        out["RAW-S"] = int(np.sum(~waw & same))
        out["RAW-D"] = int(np.sum(~waw & ~same))
        return out
    pairs = find_overlaps(table)
    if not len(pairs):
        return out
    t = table.tstart
    swap = t[pairs[:, 0]] > t[pairs[:, 1]]
    pairs[swap] = pairs[swap][:, ::-1]
    pairs = pairs[table.is_write[pairs[:, 0]]]
    if not len(pairs):
        return out
    mask = _actual_conflict_mask(table, pairs, vis, semantics)
    pairs = pairs[mask]
    if not len(pairs):
        return out
    waw = table.is_write[pairs[:, 1]]
    same = table.rank[pairs[:, 0]] == table.rank[pairs[:, 1]]
    out["WAW-S"] = int(np.sum(waw & same))
    out["WAW-D"] = int(np.sum(waw & ~same))
    out["RAW-S"] = int(np.sum(~waw & same))
    out["RAW-D"] = int(np.sum(~waw & ~same))
    return out


def count_conflicts(trace: Trace, tables: dict[str, AccessTable],
                    semantics: Semantics) -> dict[str, int]:
    """Whole-trace conflict counts by class (numpy fast path)."""
    vis = VisibilityIndex(trace)
    total = {"WAW-S": 0, "WAW-D": 0, "RAW-S": 0, "RAW-D": 0}
    for path in sorted(tables):
        for key, n in count_conflicts_in_table(
                tables[path], vis, semantics).items():
            total[key] += n
    return total


def count_conflicts_columnar(ct, semantics: Semantics,
                             tables: dict[str, AccessTable] | None = None,
                             ) -> dict[str, int]:
    """Whole-trace conflict counts from a columnar trace.

    The fully array-native pipeline: columnar offset reconstruction,
    columnar visibility timelines, then the numpy pair classifiers —
    no per-op objects anywhere.  ``tables`` lets callers reuse an
    already-reconstructed table set.
    """
    from repro.core.offsets import reconstruct_tables_columnar

    if tables is None:
        tables = reconstruct_tables_columnar(ct)
    vis = VisibilityIndex.from_columnar(ct)
    total = {"WAW-S": 0, "WAW-D": 0, "RAW-S": 0, "RAW-D": 0}
    for path in sorted(tables):
        for key, n in count_conflicts_in_table(
                tables[path], vis, semantics).items():
            total[key] += n
    return total


def detect_conflicts(trace: Trace, tables: dict[str, AccessTable],
                     semantics: Semantics,
                     max_conflicts_per_file: int | None = None,
                     engine: str = "vectorized") -> ConflictSet:
    """Run conflict detection over every file of a trace."""
    vis = VisibilityIndex(trace)
    cs = ConflictSet(semantics)
    for path in sorted(tables):
        cs.conflicts.extend(detect_conflicts_in_table(
            tables[path], vis, semantics,
            max_conflicts=max_conflicts_per_file, engine=engine))
    return cs
