"""Per-run analysis report: the one-stop result object.

:func:`analyze` runs the full pipeline on a trace; :class:`RunReport`
memoizes each analysis and renders the per-application report the paper
published alongside its data (function counters, I/O sizes, per-file
conflicts, pattern mixes, metadata usage, semantics verdict).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.core.advisor import FixSuggestion, suggest_fixes
from repro.core.conflicts import ConflictSet, detect_conflicts
from repro.core.highlevel import SharingPattern, classify_sharing
from repro.core.metadata import MetadataUsage, metadata_usage
from repro.core.metadata_conflicts import (
    MetadataConflictSet,
    detect_metadata_conflicts,
)
from repro.core.offsets import reconstruct_offsets
from repro.core.overlaps import overlap_rank_matrix
from repro.core.patterns import (
    TransitionMix,
    global_pattern_mix,
    local_pattern_mix,
)
from repro.core.records import AccessRecord, AccessTable, group_by_path
from repro.core.semantics import (
    FileSystemInfo,
    Semantics,
    compatible_filesystems,
    object_store_compatible,
    weakest_sufficient_semantics,
)
from repro.core.happens_before import RaceReport, validate_race_freedom
from repro.tracer.profile import TraceProfile, profile_trace
from repro.tracer.trace import Trace
from repro.util.formatting import human_bytes, percentage
from repro.util.tables import AsciiTable


@dataclass
class RunReport:
    """Lazy bundle of every analysis for one traced run."""

    trace: Trace

    # -- pipeline stages (memoized) ------------------------------------------

    @cached_property
    def accesses(self) -> list[AccessRecord]:
        """Offset-resolved POSIX data accesses (§5.1)."""
        return reconstruct_offsets(self.trace.records)

    @cached_property
    def tables(self) -> dict[str, AccessTable]:
        return group_by_path(self.accesses)

    def conflicts(self, semantics: Semantics,
                  max_per_file: int | None = 10_000) -> ConflictSet:
        cache = self.__dict__.setdefault("_conflict_cache", {})
        if semantics not in cache:
            cache[semantics] = detect_conflicts(
                self.trace, self.tables, semantics,
                max_conflicts_per_file=max_per_file)
        return cache[semantics]

    @cached_property
    def conflicts_by_model(self) -> dict[Semantics, ConflictSet]:
        return {s: self.conflicts(s)
                for s in (Semantics.SESSION, Semantics.COMMIT,
                          Semantics.EVENTUAL, Semantics.OBJECT)}

    @cached_property
    def sharing(self) -> list[SharingPattern]:
        return classify_sharing(self.accesses, self.trace.nranks)

    @cached_property
    def local_mix(self) -> TransitionMix:
        return local_pattern_mix(self.accesses)

    @cached_property
    def global_mix(self) -> TransitionMix:
        return global_pattern_mix(self.accesses)

    @cached_property
    def metadata(self) -> MetadataUsage:
        return metadata_usage(self.trace)

    @cached_property
    def profile(self) -> TraceProfile:
        """Darshan-style per-file counters for this run."""
        return profile_trace(self.trace, self.accesses)

    @cached_property
    def metadata_conflicts(self) -> MetadataConflictSet:
        """Namespace produce/consume pairs (the paper's future work;
        relevant for relaxed-*metadata* systems like GekkoFS/BatchFS)."""
        return detect_metadata_conflicts(self.trace)

    # -- verdicts ---------------------------------------------------------------

    def weakest_sufficient_semantics(
            self, *, same_process_ordering: bool = True) -> Semantics:
        """The weakest PFS model this run tolerates (§6.3 logic)."""
        return weakest_sufficient_semantics(
            self.conflicts_by_model,
            same_process_ordering=same_process_ordering)

    def compatible_filesystems(self) -> list[FileSystemInfo]:
        return compatible_filesystems(self.conflicts_by_model)

    def object_store_compatible(
            self, *, same_process_ordering: bool = True) -> bool:
        """Whole-object verdict: safe on an immutable-PUT backend?"""
        return object_store_compatible(
            self.conflicts_by_model,
            same_process_ordering=same_process_ordering)

    def suggested_fixes(self, semantics: Semantics = Semantics.SESSION
                        ) -> list[FixSuggestion]:
        """§4.1 repair advice for this run's conflicts under a model."""
        return suggest_fixes(self.conflicts(semantics))

    def overlap_matrix(self, path: str):
        """The paper's rank-pair overlap table ``P[r_i, r_j]`` for one
        file (Algorithm 1's output form)."""
        return overlap_rank_matrix(self.tables[path], self.trace.nranks)

    def validate(self, semantics: Semantics = Semantics.SESSION,
                 *, raise_on_race: bool = False) -> RaceReport:
        """§5.2 validation: conflicting pairs must be synchronized."""
        pairs = [(c.first, c.second) for c in self.conflicts(semantics)]
        return validate_race_freedom(self.trace, pairs,
                                     raise_on_race=raise_on_race)

    # -- presentation ---------------------------------------------------------------

    @property
    def name(self) -> str:
        meta = self.trace.meta
        app = meta.get("application", meta.get("app", "run"))
        lib = meta.get("io_library")
        return f"{app}-{lib}" if lib else str(app)

    def to_text(self) -> str:
        """The detailed per-run report (counters, sizes, conflicts...)."""
        lines = [f"=== I/O analysis report: {self.name} "
                 f"({self.trace.nranks} ranks) ==="]
        rd, wr = self.trace.bytes_moved()
        lines.append(f"POSIX bytes read {human_bytes(rd)}, "
                     f"written {human_bytes(wr)}; "
                     f"{len(self.trace.records)} records across "
                     f"{len(self.trace.data_paths)} data files")

        counters = AsciiTable(["function", "calls"],
                              title="Function counters (POSIX layer)")
        from repro.tracer.events import Layer
        for func, count in sorted(
                self.trace.function_counts(Layer.POSIX).items()):
            counters.add_row(func, count)
        lines.append(counters.render())

        share = AsciiTable(
            ["file group", "X-Y", "files", "writers", "pattern",
             "bytes written"],
            title="High-level sharing patterns")
        for g in self.sharing:
            share.add_row(g.group, g.xy(self.trace.nranks), g.nfiles,
                          len(g.writer_ranks), g.pattern,
                          human_bytes(g.bytes_written))
        lines.append(share.render())

        mixes = AsciiTable(["view", "consecutive", "monotonic", "random"],
                           title="Fine-grained access mix")
        for label, mix in (("local", self.local_mix),
                           ("global", self.global_mix)):
            mixes.add_row(label,
                          percentage(mix.consecutive, mix.total),
                          percentage(mix.monotonic, mix.total),
                          percentage(mix.random, mix.total))
        lines.append(mixes.render())

        for semantics in (Semantics.SESSION, Semantics.COMMIT):
            cs = self.conflicts(semantics)
            lines.append(f"Conflicts under {semantics.name.lower()} "
                         f"semantics: {len(cs)}"
                         + (f" [{', '.join(k for k, v in cs.flags.items() if v)}]"
                            if cs else ""))
            for path, items in sorted(cs.by_path().items()):
                kinds = sorted({c.label for c in items})
                lines.append(f"  {path}: {len(items)} "
                             f"({', '.join(kinds)})")
        mc = self.metadata_conflicts
        lines.append(f"Metadata produce/consume dependencies: {len(mc)} "
                     f"({len(mc.cross_process)} cross-process)")
        verdict = self.weakest_sufficient_semantics()
        lines.append(f"Weakest sufficient semantics (assuming same-process "
                     f"ordering): {verdict.title}")
        obj = self.object_store_compatible()
        lines.append(f"Object-store compatible (whole-object PUT/GET): "
                     f"{'yes' if obj else 'no'}")
        fs_names = ", ".join(f.name for f in self.compatible_filesystems())
        lines.append(f"Compatible file systems: {fs_names}")
        return "\n".join(lines)


def analyze(trace: Trace) -> RunReport:
    """Run the paper's full analysis pipeline on one trace."""
    trace.validate()
    return RunReport(trace)
