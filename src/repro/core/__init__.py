"""The paper's core contribution: trace-driven consistency-semantics analysis.

Pipeline (one call: :func:`repro.core.report.analyze`):

1. :mod:`~repro.core.offsets` — reconstruct byte offsets for every POSIX
   data operation from open flags, seeks, and running offsets (§5.1);
2. :mod:`~repro.core.overlaps` — detect overlapping extents with the
   sort-and-sweep Algorithm 1;
3. :mod:`~repro.core.conflicts` — classify RAW/WAW × same/different
   process potential conflicts under commit and session semantics (§5.2);
4. :mod:`~repro.core.patterns` / :mod:`~repro.core.highlevel` — fine- and
   high-level access-pattern characterization (Table 3, Figures 1–2);
5. :mod:`~repro.core.metadata` — metadata-operation usage by issuing
   layer (Figure 3);
6. :mod:`~repro.core.semantics` — the consistency-model lattice and PFS
   registry (Table 1), plus the sufficiency decision;
7. :mod:`~repro.core.happens_before` — rebuild the partial order from MPI
   events and validate race-freedom (§5.2's methodology check).
"""

from repro.core.records import AccessRecord, AccessTable
from repro.core.offsets import reconstruct_offsets
from repro.core.overlaps import (
    find_overlaps,
    find_overlaps_bruteforce,
    overlap_rank_matrix,
)
from repro.core.conflicts import (
    Conflict,
    ConflictKind,
    ConflictScope,
    ConflictSet,
    count_conflicts,
    detect_conflicts,
)
from repro.core.semantics import (
    Semantics,
    FileSystemInfo,
    PFS_REGISTRY,
    weakest_sufficient_semantics,
    compatible_filesystems,
)
from repro.core.patterns import (
    AccessPattern,
    classify_gap_sequence,
    transition_mix,
    local_pattern_mix,
    global_pattern_mix,
)
from repro.core.highlevel import SharingPattern, classify_sharing
from repro.core.metadata import metadata_usage, LayerGroup
from repro.core.metadata_conflicts import (
    MetadataConflict,
    MetadataConflictKind,
    MetadataConflictSet,
    detect_metadata_conflicts,
)
from repro.core.advisor import (
    FixKind,
    FixSuggestion,
    advice_text,
    suggest_fixes,
)
from repro.core.happens_before import HappensBefore, validate_race_freedom
from repro.core.timeline import conflict_timelines, file_timeline
from repro.core.report import RunReport, analyze

__all__ = [
    "AccessRecord", "AccessTable", "reconstruct_offsets",
    "find_overlaps", "find_overlaps_bruteforce", "overlap_rank_matrix",
    "Conflict", "ConflictKind", "ConflictScope", "ConflictSet",
    "detect_conflicts", "count_conflicts",
    "Semantics", "FileSystemInfo", "PFS_REGISTRY",
    "weakest_sufficient_semantics", "compatible_filesystems",
    "AccessPattern", "classify_gap_sequence", "transition_mix",
    "local_pattern_mix", "global_pattern_mix",
    "SharingPattern", "classify_sharing",
    "metadata_usage", "LayerGroup",
    "MetadataConflict", "MetadataConflictKind", "MetadataConflictSet",
    "detect_metadata_conflicts",
    "FixKind", "FixSuggestion", "advice_text", "suggest_fixes",
    "HappensBefore", "validate_race_freedom",
    "RunReport", "analyze",
    "conflict_timelines", "file_timeline",
]
