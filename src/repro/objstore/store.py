"""A deterministic object-store namespace model.

The PFS layer models the *byte* behaviour of the fifth semantics class
(:attr:`repro.core.semantics.Semantics.OBJECT`) inside
:class:`repro.pfs.storage.FileStore`; this module models the *bucket*
behaviour the conflict detector cannot see from byte extents alone:

* **immutable whole-object PUT** — a put replaces the object; there is
  no partial overwrite, and a version's bytes never change after its
  acknowledgement;
* **read-after-write** — a GET at time ``t`` returns the version with
  the latest put time ``<= t`` (acked puts are never reordered);
* **list-after-write lag** — a key appears in listings only
  ``list_lag`` after its put was acknowledged, the window in which
  "write then readdir" idioms silently miss fresh data;
* **no atomic rename** — rename is copy-then-delete, two separately
  visible namespace events with a both-exist window in between.

Everything is driven by explicit virtual timestamps so behaviour is a
pure function of the call sequence — the property tests rely on that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PFSError


@dataclass(frozen=True)
class ObjectVersion:
    """One immutable acknowledged PUT."""

    key: str
    data: bytes
    writer: int
    #: when the put was acknowledged (read-after-write visibility)
    t_put: float
    #: when the key surfaces in listings (``t_put + list_lag``)
    t_listed: float

    @property
    def size(self) -> int:
        return len(self.data)


@dataclass(frozen=True)
class Tombstone:
    """A delete event: the key stops resolving at ``t``."""

    key: str
    t: float


@dataclass
class ObjectStore:
    """One bucket: keys -> immutable version chains.

    ``list_lag`` is the listing-visibility delay; reads (GET/HEAD) are
    read-after-write regardless of it.  Timestamps are caller-supplied
    virtual time; per key they must be non-decreasing (the simulator's
    clock guarantees this) and a put at the exact time of another put
    to the same key is rejected rather than ordered arbitrarily.
    """

    list_lag: float = 0.0
    _versions: dict[str, list[ObjectVersion]] = field(default_factory=dict)
    _deletes: dict[str, list[Tombstone]] = field(default_factory=dict)

    # -- write path ---------------------------------------------------------

    def put(self, key: str, data: bytes, *, writer: int,
            t: float) -> ObjectVersion:
        """Acknowledge a whole-object PUT of ``key`` at time ``t``."""
        chain = self._versions.setdefault(key, [])
        if chain:
            last = chain[-1]
            if t < last.t_put:
                raise PFSError(
                    f"put({key!r}) at t={t} precedes an already "
                    f"acknowledged put at t={last.t_put}")
            if t == last.t_put:
                raise PFSError(
                    f"two puts of {key!r} acknowledged at the same "
                    f"instant t={t}: ordering would be arbitrary")
        version = ObjectVersion(key=key, data=bytes(data), writer=writer,
                                t_put=t, t_listed=t + self.list_lag)
        chain.append(version)
        return version

    def delete(self, key: str, *, t: float) -> None:
        self._deletes.setdefault(key, []).append(Tombstone(key=key, t=t))

    def rename(self, src: str, dst: str, *, writer: int, t_copy: float,
               t_delete: float) -> ObjectVersion:
        """Copy-then-delete — the only rename an object store offers.

        Between ``t_copy`` and ``t_delete`` both keys resolve; a crash
        in the window leaves both behind.  Callers that treat rename as
        an atomic commit step carry exactly the hazard the lint rule
        flags.
        """
        if t_delete < t_copy:
            raise PFSError(f"rename({src!r}): delete at t={t_delete} "
                           f"precedes copy at t={t_copy}")
        current = self.get(src, t=t_copy)
        if current is None:
            raise PFSError(f"rename({src!r}): no such object at "
                           f"t={t_copy}")
        version = self.put(dst, current, writer=writer, t=t_copy)
        self.delete(src, t=t_delete)
        return version

    # -- read path ----------------------------------------------------------

    def _latest(self, key: str, t: float) -> ObjectVersion | None:
        """Latest acknowledged version of ``key`` at time ``t``, delete
        tombstones applied."""
        best: ObjectVersion | None = None
        for v in self._versions.get(key, ()):
            if v.t_put <= t:
                best = v          # chains are put-time ordered
        if best is None:
            return None
        for d in self._deletes.get(key, ()):
            if best.t_put <= d.t <= t:
                return None
        return best

    def get(self, key: str, *, t: float) -> bytes | None:
        """Read-after-write GET: the newest acked version, or ``None``."""
        v = self._latest(key, t)
        return None if v is None else v.data

    def head(self, key: str, *, t: float) -> ObjectVersion | None:
        return self._latest(key, t)

    def list(self, prefix: str = "", *, t: float) -> list[str]:
        """Keys visible to a listing at time ``t`` (lagged, sorted).

        A key is listed when some version has surfaced
        (``t_listed <= t``) and the newest *surfaced* version is not
        deleted — so a fresh put can be GET-able but unlisted, never
        the reverse.
        """
        out = []
        for key, chain in self._versions.items():
            if not key.startswith(prefix):
                continue
            surfaced = [v for v in chain if v.t_listed <= t]
            if not surfaced:
                continue
            newest = surfaced[-1]
            if any(newest.t_put <= d.t <= t
                   for d in self._deletes.get(key, ())):
                continue
            out.append(key)
        return sorted(out)

    def versions(self, key: str) -> tuple[ObjectVersion, ...]:
        """The full immutable version chain of ``key`` (oldest first)."""
        return tuple(self._versions.get(key, ()))
