"""Object-store semantics: the fifth consistency model.

The lattice position and registry rows live in
:mod:`repro.core.semantics` (``Semantics.OBJECT``, ``OBJECT_STORES``);
the PFS-layer byte behaviour (version-pinned reads, PUT-on-close,
superseded versions) lives in :mod:`repro.pfs.storage`; this package
holds the bucket-level namespace model — immutable puts,
list-after-write lag, copy+delete rename.
"""

from __future__ import annotations

from repro.objstore.store import ObjectStore, ObjectVersion, Tombstone

__all__ = ["ObjectStore", "ObjectVersion", "Tombstone"]
