"""Diagnostic model for the consistency-semantics linter.

A :class:`Diagnostic` is one finding of one rule: what went wrong, how
bad it is, which file/ranks/records are implicated, and (when the rule
can compute one) a fix-it hint in the style of :mod:`repro.core.advisor`.
Rules fold repeated findings of the same shape into a single diagnostic
with a ``count`` and a machine-readable ``data`` payload, so reports stay
readable on traces with thousands of conflicting pairs.

A :class:`LintReport` is the result of one linted run: the diagnostics of
every rule that executed, plus the identity of the trace.  Its
``exit_code`` encodes the CLI contract: non-zero iff any ERROR-severity
diagnostic was emitted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterator


class Severity(enum.IntEnum):
    """How bad a diagnostic is.

    * ``ERROR`` — the application can observe wrong data on a PFS of the
      rule's semantics class (cross-process hazards, true races);
    * ``WARNING`` — suspicious but survivable, e.g. hazards a PFS with
      same-process ordering resolves itself (§6.3), or hygiene issues;
    * ``INFO`` — advisory, e.g. commit operations that cost time but
      protect no reader.
    """

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one lint rule."""

    rule: str                      # rule name, e.g. "session-hazard"
    rule_id: str                   # stable id, e.g. "L002"
    severity: Severity
    message: str
    path: str | None = None        # file the finding is about
    kind: str = ""                 # sub-classification, e.g. "WAW-D"
    ranks: tuple[int, ...] = ()    # ranks implicated
    events: tuple[int, ...] = ()   # exemplar trace record ids
    time: float | None = None      # entry time of the first implicated op
    count: int = 1                 # findings folded into this diagnostic
    fixits: tuple[str, ...] = ()   # §4.1-style repair hints
    data: dict[str, Any] = field(default_factory=dict, compare=False)

    @property
    def location(self) -> str:
        """Compact ``path@time`` anchor for text output."""
        where = self.path or "<run>"
        if self.time is not None:
            where += f"@{self.time:.6f}"
        return where

    def sort_key(self) -> tuple:
        return (-int(self.severity), self.rule_id, self.path or "",
                self.kind, self.time if self.time is not None else -1.0)

    def to_dict(self) -> dict[str, Any]:
        """Stable, JSON-serializable form (machine-readable report)."""
        out: dict[str, Any] = {
            "rule": self.rule,
            "rule_id": self.rule_id,
            "severity": str(self.severity),
            "message": self.message,
            "path": self.path,
            "kind": self.kind,
            "ranks": list(self.ranks),
            "events": list(self.events),
            "time": self.time,
            "count": self.count,
            "fixits": list(self.fixits),
        }
        if self.data:
            out["data"] = self.data
        return out


@dataclass
class LintReport:
    """All diagnostics of one linted run."""

    label: str
    nranks: int
    diagnostics: list[Diagnostic] = field(default_factory=list)
    rules_run: tuple[str, ...] = ()

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

    # -- selection ------------------------------------------------------------

    def for_rule(self, rule: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.rule == rule or d.rule_id == rule]

    def at_least(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.at_least(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity == Severity.WARNING]

    def by_rule(self) -> dict[str, list[Diagnostic]]:
        out: dict[str, list[Diagnostic]] = {}
        for d in self.diagnostics:
            out.setdefault(d.rule, []).append(d)
        return out

    # -- verdicts -------------------------------------------------------------

    @property
    def clean(self) -> bool:
        return not self.diagnostics

    @property
    def max_severity(self) -> Severity | None:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    @property
    def exit_code(self) -> int:
        """CLI contract: non-zero iff any ERROR diagnostic."""
        return 1 if self.errors else 0

    def counts(self) -> dict[str, int]:
        out = {str(s): 0 for s in
               (Severity.ERROR, Severity.WARNING, Severity.INFO)}
        for d in self.diagnostics:
            out[str(d.severity)] += 1
        return out

    # -- normalization ----------------------------------------------------------

    def sorted(self) -> "LintReport":
        """Deterministic report order: severity desc, rule, file, time."""
        return LintReport(
            label=self.label, nranks=self.nranks,
            diagnostics=sorted(self.diagnostics,
                               key=Diagnostic.sort_key),
            rules_run=self.rules_run)

    def to_dict(self) -> dict[str, Any]:
        report = self.sorted()
        return {
            "label": report.label,
            "nranks": report.nranks,
            "rules_run": list(report.rules_run),
            "summary": report.counts(),
            "exit_code": report.exit_code,
            "diagnostics": [d.to_dict() for d in report.diagnostics],
        }
