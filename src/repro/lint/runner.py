"""Drive rule passes over traces: the linter's engine.

``lint_trace`` is the core entry point (trace in, report out);
``lint_variant``/``lint_all`` wrap it for registry applications, tracing
the app first.  The runner never touches :mod:`repro.pfs` — the whole
point of the linter is deciding semantics safety from the ordered
operation history alone (arXiv:2402.14105's formal-model result).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.apps.registry import RunVariant, all_variants
from repro.lint.context import LintContext
from repro.lint.diagnostics import LintReport
from repro.lint.registry import LintRule, resolve_rules
from repro.tracer.trace import Trace


def lint_trace(trace: Trace, rules: Sequence[LintRule | str] | None = None,
               *, label: str | None = None) -> LintReport:
    """Run rule passes over one trace and collect the diagnostics."""
    resolved: list[LintRule] = []
    for rule in (rules if rules is not None else [None]):
        if rule is None:
            resolved = resolve_rules(None)
            break
        if isinstance(rule, str):
            resolved.extend(resolve_rules([rule]))
        else:
            resolved.append(rule)
    ctx = LintContext(trace)
    report = LintReport(
        label=label if label is not None else ctx.label,
        nranks=trace.nranks,
        rules_run=tuple(r.name for r in resolved))
    for rule in resolved:
        report.diagnostics.extend(rule.check(ctx))
    return report.sorted()


def lint_columnar(source, rules: Sequence[LintRule | str] | None = None,
                  *, label: str | None = None) -> LintReport:
    """Lint a columnar trace or an on-disk ``.rtrc`` file.

    ``source`` is a :class:`~repro.tracer.columnar.ColumnarTrace` or a
    path to a ``.rtrc`` file.  The columnar form is rebuilt into record
    objects (lossless by construction, pinned by the round-trip
    property tests) and fed through :func:`lint_trace`, so the rule
    catalogue sees exactly the trace the file was written from.
    """
    from repro.tracer.columnar import ColumnarTrace, read_rtrc

    if not isinstance(source, ColumnarTrace):
        source = read_rtrc(source)
    return lint_trace(source.to_trace(), rules, label=label)


def lint_variant(variant: RunVariant, *, nranks: int = 8, seed: int = 7,
                 rules: Sequence[LintRule | str] | None = None,
                 **overrides: Any) -> LintReport:
    """Trace one registry configuration, then lint the trace."""
    trace = variant.run(nranks=nranks, seed=seed, **overrides)
    return lint_trace(trace, rules, label=variant.label)


def lint_all(*, nranks: int = 8, seed: int = 7,
             variants: Iterable[RunVariant] | None = None,
             rules: Sequence[LintRule | str] | None = None,
             ) -> list[LintReport]:
    """Lint every registered configuration (the Table 4 campaign)."""
    pool = list(variants) if variants is not None else all_variants()
    return [lint_variant(v, nranks=nranks, seed=seed, rules=rules)
            for v in pool]
