"""``repro.lint`` — static consistency-semantics linter over traces.

A pluggable static-analysis framework that decides, from an ordered
operation history alone (no PFS replay), which consistency hazards an
application carries: the fast path to the paper's Table 4 question
"which applications are unsafe under commit/session/eventual
semantics?", following the formal-model result of arXiv:2402.14105 and
the trace-level substrate argument of the Recorder line of work
(arXiv:2501.04654).

Layout:

* :mod:`~repro.lint.diagnostics` — severities, diagnostics, reports;
* :mod:`~repro.lint.registry` — the rule base class and discovery
  registry (``@register_rule``, mirroring :mod:`repro.apps.registry`);
* :mod:`~repro.lint.context` — lazily shared analysis artifacts
  (access tables, visibility index, happens-before clocks);
* :mod:`~repro.lint.rules` — the built-in rule catalogue L001–L010;
* :mod:`~repro.lint.reporters` — text and stable-JSON rendering;
* :mod:`~repro.lint.runner` — ``lint_trace`` / ``lint_variant`` /
  ``lint_all`` / ``lint_columnar`` drivers;
* :mod:`~repro.lint.crossval` — the zero-false-negative contract
  against the replay-based :mod:`repro.core.conflicts` pipeline.

CLI: ``python -m repro.study lint <app|--all> [--format json]``.
"""

from repro.lint.context import LintContext
from repro.lint.crossval import CrossValidation, crossvalidate_trace
from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.registry import (
    LintRule,
    all_rules,
    get_rule,
    register_rule,
    resolve_rules,
)
from repro.lint.reporters import render_json, render_text
from repro.lint.runner import (
    lint_all,
    lint_columnar,
    lint_trace,
    lint_variant,
)

__all__ = [
    "CrossValidation",
    "Diagnostic",
    "LintContext",
    "LintReport",
    "LintRule",
    "Severity",
    "all_rules",
    "crossvalidate_trace",
    "get_rule",
    "lint_all",
    "lint_columnar",
    "lint_trace",
    "lint_variant",
    "register_rule",
    "render_json",
    "render_text",
    "resolve_rules",
]
