"""Shared, lazily-computed analysis artifacts for lint rules.

Every rule pass receives one :class:`LintContext`.  Expensive artifacts
(offset reconstruction, per-file access tables, the visibility index,
the happens-before vector clocks, per-semantics conflict sets) are
computed once on first use and shared by all rules, so a full lint run
costs roughly one analysis pipeline regardless of how many rules run.

Conflict sets here are **uncapped** (``max_conflicts_per_file=None``):
the linter's contract is *zero false negatives* against the Table 4
replay pipeline, so it must never drop a pair that the capped report
path might still surface.
"""

from __future__ import annotations

from functools import cached_property

from repro.core.conflicts import (
    Conflict,
    ConflictScope,
    ConflictSet,
    VisibilityIndex,
    detect_conflicts,
)
from repro.core.happens_before import HappensBefore
from repro.core.metadata_conflicts import (
    MetadataConflictSet,
    detect_metadata_conflicts,
)
from repro.core.offsets import reconstruct_offsets
from repro.core.records import AccessRecord, AccessTable, group_by_path
from repro.core.semantics import Semantics
from repro.tracer.events import Layer, TraceRecord
from repro.tracer.trace import Trace


class LintContext:
    """One trace plus every shared analysis artifact, computed lazily."""

    def __init__(self, trace: Trace):
        self.trace = trace
        self._conflict_cache: dict[Semantics, ConflictSet] = {}

    # -- identity --------------------------------------------------------------

    @property
    def nranks(self) -> int:
        return self.trace.nranks

    @property
    def label(self) -> str:
        meta = self.trace.meta
        app = meta.get("application", meta.get("app", "run"))
        lib = meta.get("io_library")
        return f"{app}-{lib}" if lib else str(app)

    # -- pipeline artifacts -----------------------------------------------------

    @cached_property
    def posix_records(self) -> list[TraceRecord]:
        """POSIX-layer records in global timestamp order."""
        return self.trace.posix_records

    @cached_property
    def accesses(self) -> list[AccessRecord]:
        """Offset-resolved POSIX data accesses (§5.1), time-sorted."""
        out = reconstruct_offsets(self.trace.records)
        out.sort(key=lambda a: (a.tstart, a.rid))
        return out

    @cached_property
    def tables(self) -> dict[str, AccessTable]:
        return group_by_path(self.accesses)

    @cached_property
    def visibility(self) -> VisibilityIndex:
        return VisibilityIndex(self.trace)

    @cached_property
    def happens_before(self) -> HappensBefore:
        return HappensBefore(self.trace)

    @cached_property
    def metadata_conflicts(self) -> MetadataConflictSet:
        return detect_metadata_conflicts(self.trace)

    def conflicts(self, semantics: Semantics) -> ConflictSet:
        """Uncapped conflict set under one model (cached per model)."""
        cs = self._conflict_cache.get(semantics)
        if cs is None:
            cs = detect_conflicts(self.trace, self.tables, semantics,
                                  max_conflicts_per_file=None)
            self._conflict_cache[semantics] = cs
        return cs

    # -- happens-before helpers -------------------------------------------------

    def pair_ordered(self, first: AccessRecord,
                     second: AccessRecord) -> bool:
        """Is the (timestamp-ordered) pair ordered by synchronization?"""
        return self.happens_before.access_ordered(first, second)

    def pair_ordered_backward(self, first: AccessRecord,
                              second: AccessRecord) -> bool:
        """Does synchronization order the pair *against* its timestamps?"""
        return self.happens_before.access_ordered(second, first)


def conflict_pair_ids(conflict: Conflict) -> tuple[int, int]:
    """The (writer rid, second rid) key used in diagnostics and crossval."""
    return (conflict.first.rid, conflict.second.rid)


def group_label(conflict: Conflict) -> str:
    """The Table 4 cell a conflict belongs to, e.g. ``WAW-D``."""
    return conflict.label


def is_cross_process(conflict: Conflict) -> bool:
    return conflict.scope is ConflictScope.DIFFERENT
