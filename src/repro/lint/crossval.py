"""Cross-validation harness: the linter vs the replay-based pipeline.

The linter's correctness contract is *zero false negatives* against the
Table 4 verdicts of :mod:`repro.core.conflicts`: every commit- and
session-semantics conflict the replay-based pipeline reports must also
be flagged by the corresponding lint rule (L001/L002), at the level of
individual (writer rid, second rid) pairs.  False positives are allowed
in principle (a static analysis may over-approximate) but today the
hazard rules reuse the exact §5.2 conditions, so the comparison is
expected to be pair-exact — which this harness also verifies and
reports as informational "extras".

Used by the tier-1 cross-validation tests over all registry apps and
exposed for ad-hoc use::

    from repro.lint.crossval import crossvalidate_trace
    mismatches = crossvalidate_trace(trace)
    assert not mismatches
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.conflicts import detect_conflicts
from repro.core.offsets import reconstruct_offsets
from repro.core.records import group_by_path
from repro.core.semantics import Semantics
from repro.lint.diagnostics import LintReport
from repro.lint.runner import lint_trace
from repro.tracer.trace import Trace

#: which lint rule answers for which semantics model
HAZARD_RULE_OF = {
    Semantics.COMMIT: "commit-hazard",
    Semantics.SESSION: "session-hazard",
}


@dataclass
class CrossValidation:
    """Outcome of one trace's lint-vs-replay comparison."""

    label: str
    #: replay-pipeline pairs the linter missed (must stay empty)
    false_negatives: list[str] = field(default_factory=list)
    #: linter pairs the capped replay pipeline did not report
    extras: list[str] = field(default_factory=list)
    checked_pairs: int = 0

    @property
    def ok(self) -> bool:
        return not self.false_negatives

    def to_dict(self) -> dict:
        return {"label": self.label,
                "checked_pairs": self.checked_pairs,
                "false_negatives": list(self.false_negatives),
                "extras": list(self.extras),
                "ok": self.ok}


def lint_hazard_pairs(report: LintReport,
                      semantics: Semantics) -> set[tuple[int, int]]:
    """All (writer rid, second rid) pairs a hazard rule flagged."""
    rule = HAZARD_RULE_OF[semantics]
    out: set[tuple[int, int]] = set()
    for diag in report.for_rule(rule):
        for pair in diag.data.get("pairs", ()):
            out.add((int(pair[0]), int(pair[1])))
    return out


def crossvalidate_trace(trace: Trace, report: LintReport | None = None,
                        *, label: str | None = None,
                        max_conflicts_per_file: int | None = 10_000,
                        ) -> CrossValidation:
    """Compare one trace's lint verdicts against the §5.2 detector.

    ``max_conflicts_per_file`` mirrors the default cap used by the
    Table 4 report pipeline; the linter itself is uncapped, so the
    superset requirement must hold regardless of the cap.
    """
    if report is None:
        report = lint_trace(trace, label=label)
    accesses = reconstruct_offsets(trace.records)
    tables = group_by_path(accesses)
    result = CrossValidation(label=label or report.label)
    for semantics, rule in sorted(HAZARD_RULE_OF.items(),
                                  key=lambda kv: kv[0].value):
        oracle = detect_conflicts(
            trace, tables, semantics,
            max_conflicts_per_file=max_conflicts_per_file)
        flagged = lint_hazard_pairs(report, semantics)
        oracle_pairs = {(c.first.rid, c.second.rid) for c in oracle}
        result.checked_pairs += len(oracle_pairs)
        for pair in sorted(oracle_pairs - flagged):
            result.false_negatives.append(
                f"{result.label}: {semantics.name.lower()} conflict "
                f"pair rid{pair} reported by the replay pipeline but "
                f"not flagged by {rule}")
        for pair in sorted(flagged - oracle_pairs):
            result.extras.append(
                f"{result.label}: {rule} flagged pair rid{pair} beyond "
                f"the (capped) replay pipeline")
    return result


def crossvalidate_durability(trace: Trace,
                             report: LintReport | None = None, *,
                             label: str | None = None
                             ) -> CrossValidation:
    """Validate L010 (data-at-risk-on-crash) against fault-free replay.

    The dynamic oracle is :meth:`FileStore.unpublished_extents` after a
    full replay: a (rank, path) stream holds unpublished bytes at
    end-of-trace exactly when a crash there would lose data.  Under
    commit semantics both fsync and close publish, so the oracle must
    match L010's WARNING tier ("uncommitted"); under session semantics
    only close publishes, so it must match WARNING ∪ INFO ("unclosed").
    The comparison is exact in both directions at (rank, path)
    granularity.
    """
    from repro.pfs.config import PFSConfig
    from repro.pfs.replay import replay_trace

    if report is None:
        report = lint_trace(trace, label=label)
    result = CrossValidation(label=label or report.label)
    flagged: dict[str, set[tuple[int, str]]] = {"uncommitted": set(),
                                                "unclosed": set()}
    for diag in report.for_rule("data-at-risk-on-crash"):
        if diag.kind in flagged and diag.path is not None:
            flagged[diag.kind].add((diag.ranks[0], diag.path))
    oracles = (
        (Semantics.COMMIT, flagged["uncommitted"]),
        (Semantics.SESSION,
         flagged["uncommitted"] | flagged["unclosed"]),
    )
    for semantics, predicted in oracles:
        replay = replay_trace(trace, PFSConfig(semantics=semantics))
        sim = replay.simulator
        assert sim is not None
        unpublished = {(e.writer, path)
                       for path, store in sim.files.items()
                       for e in store.unpublished_extents()}
        result.checked_pairs += len(unpublished)
        name = semantics.name.lower()
        for rank, path in sorted(unpublished - predicted):
            result.false_negatives.append(
                f"{result.label}: rank {rank} leaves unpublished bytes "
                f"in {path} under {name} replay but L010 did not flag "
                f"the stream")
        for rank, path in sorted(predicted - unpublished):
            result.extras.append(
                f"{result.label}: L010 flagged rank {rank} on {path} "
                f"but {name} replay shows no unpublished bytes")
    return result


def crossvalidate_variant(variant, *, nranks: int = 8,
                          seed: int = 7) -> dict:
    """One configuration's full lint-vs-replay cross-validation cell.

    Traces and lints the variant once, runs both the hazard comparison
    (:func:`crossvalidate_trace`) and the durability comparison
    (:func:`crossvalidate_durability`) against it, and returns a plain
    JSON document — the independently schedulable (and cacheable) unit
    the ``study crossvalidate`` matrix fans out.
    """
    trace = variant.run(nranks=nranks, seed=seed)
    report = lint_trace(trace, label=variant.label)
    hazards = crossvalidate_trace(trace, report, label=variant.label)
    durability = crossvalidate_durability(trace, report,
                                          label=variant.label)
    return {
        "label": variant.label,
        "nranks": nranks,
        "seed": seed,
        "hazards": hazards.to_dict(),
        "durability": durability.to_dict(),
        "ok": hazards.ok and durability.ok,
    }
