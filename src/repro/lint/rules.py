"""Built-in lint rules: the consistency-semantics rule catalogue.

Each rule is one static pass over the trace (and, for the race rules,
the happens-before partial order).  The data-hazard rules reuse the §5.2
conflict conditions verbatim — that is what guarantees the linter's
verdicts are a *superset* of the replay-based Table 4 pipeline (zero
false negatives, pinned by the cross-validation tests).

Catalogue (see ``docs/linting.md`` for the long-form write-up):

========  ============================  ========================================
id        name                          finds
========  ============================  ========================================
L001      commit-hazard                 RAW/WAW pairs conflicting under commit
L002      session-hazard                RAW/WAW pairs conflicting under session
L003      unordered-race                cross-process hazards no synchronization
                                        orders (true races), + clock-skew pairs
L004      missing-commit-on-handoff     synchronized cross-process RAW handoffs
                                        with no commit making data visible
L005      dead-commit                   fsync-family calls that publish nothing
                                        or protect no subsequent reader
L006      fd-hygiene                    unmatched open/close, fd leaks
L007      read-before-any-write         reads of bytes no write ever produced
L008      metadata-visibility           cross-process namespace produce/consume
L009      eventual-hazard               potential conflicts eventual semantics
                                        never resolves
L010      data-at-risk-on-crash         last write to a file never followed by
                                        commit/close (lost on crash)
L011      rename-as-commit              rename used to publish freshly written
                                        data (non-atomic on object stores)
========  ============================  ========================================
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.advisor import suggest_fixes
from repro.core.conflicts import Conflict, ConflictKind, ConflictSet
from repro.core.metadata_conflicts import is_creating_open
from repro.core.semantics import Semantics
from repro.lint.context import (
    LintContext,
    conflict_pair_ids,
    is_cross_process,
)
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import LintRule, register_rule
from repro.tracer.events import (
    CLOSE_OPS,
    DATA_OPS,
    OPEN_OPS,
    TraceRecord,
)
from repro.util.intervals import Interval, IntervalSet

#: fsync-family only — close/fclose are matched by fd hygiene instead
_FSYNC_OPS = frozenset({"fsync", "fdatasync", "fflush"})


def _group_conflicts(conflicts: Iterable[Conflict]
                     ) -> dict[tuple[str, str], list[Conflict]]:
    """Bucket conflicts by (path, Table-4 cell label)."""
    out: dict[tuple[str, str], list[Conflict]] = {}
    for c in conflicts:
        out.setdefault((c.path, c.label), []).append(c)
    return out


def _hazard_diagnostics(rule: "LintRule", ctx: LintContext,
                        semantics: Semantics) -> Iterator[Diagnostic]:
    """Shared body of the commit/session hazard rules (L001/L002)."""
    cs = ctx.conflicts(semantics)
    for (path, label), group in sorted(_group_conflicts(cs).items()):
        cross = is_cross_process(group[0])
        severity = Severity.ERROR if cross else Severity.WARNING
        pairs = sorted(conflict_pair_ids(c) for c in group)
        ranks = tuple(sorted({r for c in group
                              for r in (c.first.rank, c.second.rank)}))
        fixes = suggest_fixes(ConflictSet(semantics, list(group)))
        first = min(group, key=lambda c: c.first.tstart)
        scope_txt = ("cross-process" if cross else "same-process")
        yield rule.diagnostic(
            severity,
            f"{len(group)} {label} {scope_txt} conflict(s) under "
            f"{semantics.name.lower()} semantics on {path}",
            path=path, kind=label, ranks=ranks,
            events=conflict_pair_ids(first), time=first.first.tstart,
            count=len(group),
            fixits=tuple(s.summary for s in fixes[:3]),
            data={"pairs": [list(p) for p in pairs],
                  "semantics": semantics.name.lower()})


@register_rule
class CommitHazardRule(LintRule):
    """RAW/WAW hazards that survive commit semantics (§5.2 condition 3)."""

    id = "L001"
    name = "commit-hazard"
    summary = ("overlapping write-first pairs with no commit operation "
               "between them (unsafe on commit-semantics PFSs)")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        return _hazard_diagnostics(self, ctx, Semantics.COMMIT)


@register_rule
class SessionHazardRule(LintRule):
    """RAW/WAW hazards that survive session semantics (§5.2 condition 4)."""

    id = "L002"
    name = "session-hazard"
    summary = ("overlapping write-first pairs with no close/re-open "
               "session boundary between them (unsafe on session-"
               "semantics PFSs)")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        return _hazard_diagnostics(self, ctx, Semantics.SESSION)


@register_rule
class UnorderedRaceRule(LintRule):
    """Cross-process hazards unordered by the recovered happens-before
    graph: true races (§5.2's validation, inverted into a detector)."""

    id = "L003"
    name = "unordered-race"
    summary = ("cross-process potential conflicts with no communication "
               "chain ordering the two accesses (true data races)")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        potential = ctx.conflicts(Semantics.EVENTUAL).cross_process_only
        if not potential:
            return
        races: dict[tuple[str, str], list[Conflict]] = {}
        skewed: dict[str, list[Conflict]] = {}
        seen: set[tuple[int, int]] = set()
        for c in potential:
            key = conflict_pair_ids(c)
            if key in seen:
                continue
            seen.add(key)
            forward = ctx.pair_ordered(c.first, c.second)
            backward = ctx.pair_ordered_backward(c.first, c.second)
            if not forward and not backward:
                races.setdefault((c.path, c.label), []).append(c)
            elif backward and not forward:
                skewed.setdefault(c.path, []).append(c)
        for (path, label), group in sorted(races.items()):
            first = min(group, key=lambda c: c.first.tstart)
            ranks = tuple(sorted({r for c in group
                                  for r in (c.first.rank, c.second.rank)}))
            yield self.diagnostic(
                Severity.ERROR,
                f"{len(group)} {label} conflicting pair(s) on {path} "
                f"are not ordered by any communication chain: the "
                f"outcome is timing-dependent on every relaxed PFS",
                path=path, kind=label, ranks=ranks,
                events=conflict_pair_ids(first), time=first.first.tstart,
                count=len(group),
                fixits=("synchronize the two accesses (barrier, "
                        "send/recv, or collective) before relying on "
                        "any consistency model",),
                data={"pairs": sorted(
                    list(conflict_pair_ids(c)) for c in group)})
        for path, group in sorted(skewed.items()):
            first = min(group, key=lambda c: c.first.tstart)
            yield self.diagnostic(
                Severity.WARNING,
                f"{len(group)} pair(s) on {path} are synchronized "
                f"opposite to their timestamp order: clock skew makes "
                f"the trace timeline untrustworthy here",
                path=path, kind="clock-skew",
                events=conflict_pair_ids(first), time=first.first.tstart,
                count=len(group),
                data={"pairs": sorted(
                    list(conflict_pair_ids(c)) for c in group)})


@register_rule
class MissingCommitOnHandoffRule(LintRule):
    """A synchronized cross-process RAW handoff with no commit: the app
    ordered writer -> reader, but nothing makes the bytes visible."""

    id = "L004"
    name = "missing-commit-on-handoff"
    summary = ("cross-process RAW pairs ordered by communication but "
               "with no commit operation publishing the written bytes")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        handoffs: dict[str, list[Conflict]] = {}
        for c in ctx.conflicts(Semantics.COMMIT):
            if c.kind is not ConflictKind.RAW or not is_cross_process(c):
                continue
            if ctx.pair_ordered(c.first, c.second):
                handoffs.setdefault(c.path, []).append(c)
        for path, group in sorted(handoffs.items()):
            first = min(group, key=lambda c: c.first.tstart)
            ranks = tuple(sorted({r for c in group
                                  for r in (c.first.rank, c.second.rank)}))
            yield self.diagnostic(
                Severity.ERROR,
                f"{len(group)} synchronized writer->reader handoff(s) "
                f"on {path} lack a commit operation: the reader can "
                f"see stale bytes despite correct synchronization",
                path=path, kind="RAW-D", ranks=ranks,
                events=conflict_pair_ids(first), time=first.first.tstart,
                count=len(group),
                fixits=(f"rank {first.first.rank}: fsync {path} after "
                        f"{first.first.func} @ t={first.first.tstart:.6f}"
                        f" (before the handoff to rank "
                        f"{first.second.rank})",),
                data={"pairs": sorted(
                    list(conflict_pair_ids(c)) for c in group)})


@register_rule
class DeadCommitRule(LintRule):
    """Commit operations that buy nothing: either nothing was written
    since the last commit (no-op) or nobody ever reads what they
    publish (unread).  Pure performance waste on any PFS."""

    id = "L005"
    name = "dead-commit"
    summary = ("fsync/fdatasync/fflush calls that publish no new bytes "
               "or protect no subsequent reader")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        # first read of each path after a given time, from the resolved
        # accesses (any rank)
        read_times: dict[str, list[float]] = {}
        dirty: dict[tuple[int, str], bool] = {}
        for acc in ctx.accesses:
            if not acc.is_write:
                read_times.setdefault(acc.path, []).append(acc.tstart)
        last_read: dict[str, float] = {
            p: max(ts) for p, ts in read_times.items()}
        noop: dict[tuple[int, str], list[TraceRecord]] = {}
        unread: dict[tuple[int, str], list[TraceRecord]] = {}
        for rec in ctx.posix_records:
            if rec.path is None:
                continue
            if rec.func in DATA_OPS and rec.op_class.value == "write":
                dirty[(rec.rank, rec.path)] = True
            elif rec.func in _FSYNC_OPS:
                key = (rec.rank, rec.path)
                if not dirty.get(key, False):
                    noop.setdefault(key, []).append(rec)
                elif last_read.get(rec.path, -1.0) <= rec.tstart:
                    unread.setdefault(key, []).append(rec)
                dirty[key] = False
        for (rank, path), recs in sorted(noop.items()):
            yield self.diagnostic(
                Severity.INFO,
                f"rank {rank} commits {path} {len(recs)} time(s) with "
                f"no new bytes written since the previous commit",
                path=path, kind="no-op", ranks=(rank,),
                events=(recs[0].rid,), time=recs[0].tstart,
                count=len(recs),
                fixits=(f"rank {rank}: drop the redundant "
                        f"{recs[0].func} call(s)",),
                data={"records": [r.rid for r in recs]})
        for (rank, path), recs in sorted(unread.items()):
            yield self.diagnostic(
                Severity.INFO,
                f"rank {rank} commits {path} {len(recs)} time(s) but "
                f"no rank ever reads the file afterwards (durability "
                f"aside, the commit protects no reader)",
                path=path, kind="unread", ranks=(rank,),
                events=(recs[0].rid,), time=recs[0].tstart,
                count=len(recs),
                data={"records": [r.rid for r in recs]})


@register_rule
class FdHygieneRule(LintRule):
    """Descriptor bookkeeping: every open must be closed, every close
    must match an open.  Leaked descriptors keep sessions open forever,
    which defeats session semantics and exhausts server state."""

    id = "L006"
    name = "fd-hygiene"
    summary = "unmatched open/close pairs and descriptors never closed"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        open_fds: dict[int, dict[int, TraceRecord]] = {}
        stray: dict[int, list[TraceRecord]] = {}
        for rec in ctx.posix_records:
            if rec.fd is None:
                continue
            table = open_fds.setdefault(rec.rank, {})
            if rec.func in OPEN_OPS:
                table[rec.fd] = rec
            elif rec.func == "dup":
                newfd = rec.args.get("newfd")
                if newfd is not None:
                    table[int(newfd)] = rec
            elif rec.func in CLOSE_OPS:
                if rec.fd in table:
                    del table[rec.fd]
                else:
                    stray.setdefault(rec.rank, []).append(rec)
        for rank, recs in sorted(stray.items()):
            yield self.diagnostic(
                Severity.WARNING,
                f"rank {rank} closes {len(recs)} descriptor(s) that "
                f"were never opened (double close or fd confusion)",
                path=recs[0].path, kind="stray-close", ranks=(rank,),
                events=(recs[0].rid,), time=recs[0].tstart,
                count=len(recs),
                data={"records": [r.rid for r in recs]})
        for rank, table in sorted(open_fds.items()):
            if not table:
                continue
            leaked = sorted(table.values(), key=lambda r: r.rid)
            paths = sorted({r.path for r in leaked if r.path})
            yield self.diagnostic(
                Severity.WARNING,
                f"rank {rank} leaks {len(leaked)} descriptor(s) never "
                f"closed before exit: {', '.join(paths[:4])}"
                + (" ..." if len(paths) > 4 else ""),
                path=leaked[0].path, kind="fd-leak", ranks=(rank,),
                events=tuple(r.rid for r in leaked[:8]),
                time=leaked[0].tstart, count=len(leaked),
                fixits=(f"rank {rank}: close the descriptor(s) opened "
                        f"at rid(s) "
                        f"{', '.join(str(r.rid) for r in leaked[:8])}",),
                data={"records": [r.rid for r in leaked],
                      "paths": paths})


@register_rule
class ReadBeforeAnyWriteRule(LintRule):
    """Reads of bytes that no write in the whole trace ever produced,
    on files the run itself created: consuming uninitialized data
    (typically holes left by ftruncate-style extension)."""

    id = "L007"
    name = "read-before-any-write"
    summary = ("reads of never-written byte ranges in files created "
               "by the traced run")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        created: set[str] = set()
        for rec in ctx.posix_records:
            if rec.path is not None and is_creating_open(rec):
                created.add(rec.path)
        if not created:
            return
        written: dict[str, IntervalSet] = {}
        for path in created:
            table = ctx.tables.get(path)
            if table is None:
                continue
            written[path] = IntervalSet(
                Interval(a.offset, a.stop) for a in table
                if a.is_write)
        bad: dict[str, list[tuple[int, int, int]]] = {}
        for acc in ctx.accesses:
            if acc.is_write or acc.path not in created:
                continue
            holes = IntervalSet([Interval(acc.offset, acc.stop)]).subtract(
                written.get(acc.path, IntervalSet()))
            if holes:
                bad.setdefault(acc.path, []).append(
                    (acc.rid, acc.rank, holes.total_bytes))
        for path, items in sorted(bad.items()):
            total = sum(n for _, _, n in items)
            ranks = tuple(sorted({r for _, r, _ in items}))
            yield self.diagnostic(
                Severity.WARNING,
                f"{len(items)} read(s) on {path} touch {total} byte(s) "
                f"no write ever produced (uninitialized data)",
                path=path, kind="uninitialized", ranks=ranks,
                events=(items[0][0],), count=len(items),
                data={"records": [rid for rid, _, _ in items]})


@register_rule
class MetadataVisibilityRule(LintRule):
    """Cross-process namespace produce/consume pairs: on a PFS with
    relaxed *metadata* consistency (GekkoFS/BatchFS lineage) the
    consumer may not see the entry its partner created."""

    id = "L008"
    name = "metadata-visibility"
    summary = ("cross-process namespace dependencies (create/use, "
               "mkdir/use, rename/use) that relaxed metadata "
               "consistency can break")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        cross = ctx.metadata_conflicts.cross_process
        grouped: dict[tuple[str, str], list] = {}
        for mc in cross:
            grouped.setdefault((mc.path, mc.kind.value), []).append(mc)
        for (path, kind), group in sorted(grouped.items()):
            first = min(group, key=lambda m: m.consumer.tstart)
            ranks = tuple(sorted(
                {m.producer.rank for m in group}
                | {m.consumer.rank for m in group}))
            yield self.diagnostic(
                Severity.WARNING,
                f"{len(group)} cross-process {kind} dependenc(ies) on "
                f"{path}: the consuming rank(s) rely on another rank's "
                f"namespace change being visible",
                path=path, kind=kind, ranks=ranks,
                events=(first.producer.rid, first.consumer.rid),
                time=first.consumer.tstart, count=len(group),
                fixits=("synchronize after the namespace change and, "
                        "on relaxed-metadata systems, flush or "
                        "re-resolve the directory entry",),
                data={"pairs": sorted(
                    [m.producer.rid, m.consumer.rid] for m in group)})


@register_rule
class EventualHazardRule(LintRule):
    """Potential conflicts that eventual consistency never resolves:
    the floor of the app's semantics requirement (§3.5's caution)."""

    id = "L009"
    name = "eventual-hazard"
    summary = ("potential conflicts with no visibility-forcing fix "
               "under eventual consistency (the app's semantics floor)")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        cs = ctx.conflicts(Semantics.EVENTUAL)
        by_path: dict[str, dict[str, int]] = {}
        first_time: dict[str, float] = {}
        for c in cs:
            cell = by_path.setdefault(c.path, {})
            cell[c.label] = cell.get(c.label, 0) + 1
            t = first_time.get(c.path)
            if t is None or c.first.tstart < t:
                first_time[c.path] = c.first.tstart
        for path, cells in sorted(by_path.items()):
            total = sum(cells.values())
            labels = ", ".join(f"{k}:{v}" for k, v in sorted(cells.items()))
            yield self.diagnostic(
                Severity.INFO,
                f"{total} potential conflict(s) on {path} ({labels}) "
                f"remain unresolved under eventual consistency; the "
                f"application requires a stronger model for this file",
                path=path, kind="floor", time=first_time[path],
                count=total, data={"cells": dict(sorted(cells.items()))})


@register_rule
class DataAtRiskOnCrashRule(LintRule):
    """Write streams left unpublished at exit: the file's last write is
    never followed by a commit or close, so a crash at any later point
    loses it under commit/session recovery (the §5 durability
    contracts; see ``docs/fault_model.md``).

    Two tiers: no commit *and* no close after the last write is a
    WARNING (at risk under both commit and session recovery); committed
    but never closed is an INFO (safe under commit recovery, still at
    risk under session recovery, where close is the only commit point).
    """

    id = "L010"
    name = "data-at-risk-on-crash"
    summary = ("files whose last write is never followed by a "
               "commit/close before end-of-trace (lost on crash)")

    #: per-(rank, path) stream states
    _CLEAN, _DIRTY, _COMMITTED = 0, 1, 2

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        # zero-length writes publish nothing and are no-ops on replay
        write_rids = {a.rid for a in ctx.accesses
                      if a.is_write and a.nbytes > 0}
        state: dict[tuple[int, str], int] = {}
        last_write: dict[tuple[int, str], TraceRecord] = {}
        writes_since: dict[tuple[int, str], int] = {}
        for rec in ctx.posix_records:
            if rec.path is None:
                continue
            key = (rec.rank, rec.path)
            if rec.rid in write_rids:
                if state.get(key, self._CLEAN) != self._DIRTY:
                    writes_since[key] = 0
                state[key] = self._DIRTY
                last_write[key] = rec
                writes_since[key] += 1
            elif rec.func in _FSYNC_OPS:
                if state.get(key, self._CLEAN) == self._DIRTY:
                    state[key] = self._COMMITTED
            elif rec.func in CLOSE_OPS:
                state[key] = self._CLEAN
        for key, st in sorted(state.items()):
            if st == self._CLEAN:
                continue
            rank, path = key
            rec = last_write[key]
            n = writes_since[key]
            if st == self._DIRTY:
                yield self.diagnostic(
                    Severity.WARNING,
                    f"rank {rank} leaves {n} write(s) to {path} neither "
                    f"committed nor closed at end-of-trace: a crash "
                    f"after the run loses them under commit and "
                    f"session recovery",
                    path=path, kind="uncommitted", ranks=(rank,),
                    events=(rec.rid,), time=rec.tstart, count=n,
                    fixits=(f"rank {rank}: fsync and close {path} "
                            f"after the last write (rid {rec.rid}) to "
                            f"make it durable",),
                    data={"last_write": rec.rid, "writes": n})
            else:
                yield self.diagnostic(
                    Severity.INFO,
                    f"rank {rank} commits its last write(s) to {path} "
                    f"but never closes it: durable under commit "
                    f"recovery, still lost under session recovery "
                    f"(close is the only publication point there)",
                    path=path, kind="unclosed", ranks=(rank,),
                    events=(rec.rid,), time=rec.tstart, count=n,
                    fixits=(f"rank {rank}: close {path} before exit",),
                    data={"last_write": rec.rid, "writes": n})


@register_rule
class RenameAsCommitRule(LintRule):
    """Rename used as the publication step of freshly written data: the
    write-temp-then-rename idiom.  Atomic on a POSIX namespace, but an
    object store has no rename — it is copy-then-delete, two separately
    visible events.  A crash in the window leaves both keys; a
    concurrent reader can observe neither or both.  ERROR when another
    rank consumes the destination afterwards (the swap's atomicity is
    load-bearing), WARNING otherwise."""

    id = "L011"
    name = "rename-as-commit"
    summary = ("rename publishing freshly written data — atomic on "
               "POSIX, copy+delete (non-atomic) on object stores")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        written = {path for path, table in ctx.tables.items()
                   if bool(table.is_write.any())}
        consumers: dict[str, list[TraceRecord]] = {}
        for rec in ctx.posix_records:
            if rec.path is not None and (rec.func in OPEN_OPS
                                         or rec.func in DATA_OPS):
                consumers.setdefault(rec.path, []).append(rec)
        for rec in ctx.posix_records:
            if rec.func != "rename" or rec.path is None:
                continue
            if rec.path not in written:
                continue
            dst = rec.args.get("to")
            cross = [r for r in consumers.get(dst, ())
                     if r.tstart > rec.tend and r.rank != rec.rank]
            severity = Severity.ERROR if cross else Severity.WARNING
            detail = (f"; rank(s) "
                      f"{sorted({r.rank for r in cross})} consume "
                      f"{dst} afterwards and depend on the swap being "
                      f"atomic" if cross else "")
            yield self.diagnostic(
                severity,
                f"rank {rec.rank} renames {rec.path} -> {dst} after "
                f"writing it: rename-as-commit is atomic on POSIX but "
                f"copy+delete on an object store — a crash in the "
                f"window leaves both keys visible{detail}",
                path=rec.path, kind="rename-commit", ranks=(rec.rank,),
                events=(rec.rid,), time=rec.tstart, count=1,
                fixits=("write the final object directly and publish "
                        "it with one whole-object PUT (the close), or "
                        "follow the copy with a manifest/marker object "
                        "readers check instead of the key itself",),
                data={"src": rec.path, "dst": dst,
                      "consumers": sorted(r.rid for r in cross)})
