"""Text and JSON renderers for lint reports.

Follows the :mod:`repro.core.report` house style: boxed ascii tables for
humans, and a stable (sorted, versioned) JSON document for machines.
The JSON schema is part of the CLI contract — ``python -m repro.study
lint --all --format json`` must stay diffable across runs of the same
seed, so every list is explicitly ordered before serialization.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.lint.diagnostics import LintReport, Severity
from repro.util.tables import AsciiTable

#: bumped when the JSON document shape changes incompatibly
JSON_SCHEMA_VERSION = 1


def render_text(report: LintReport, *, show_fixits: bool = True) -> str:
    """Human-readable lint report for one run."""
    report = report.sorted()
    counts = report.counts()
    lines = [f"=== lint report: {report.label} "
             f"({report.nranks} ranks) ==="]
    lines.append(
        f"{len(report)} diagnostic(s): "
        f"{counts['error']} error(s), {counts['warning']} warning(s), "
        f"{counts['info']} info "
        f"[rules: {', '.join(report.rules_run)}]")
    if report.clean:
        lines.append("clean: no diagnostics.")
        return "\n".join(lines)
    table = AsciiTable(
        ["severity", "rule", "kind", "count", "file", "message"],
        title="Diagnostics")
    for d in report:
        table.add_row(str(d.severity), d.rule, d.kind or "-", d.count,
                      d.path or "-", d.message)
    lines.append(table.render())
    if show_fixits:
        fixits = [(d, f) for d in report for f in d.fixits]
        if fixits:
            lines.append("Fix-it hints:")
            for d, f in fixits:
                lines.append(f"  [{d.rule_id} {d.rule}] {f}")
    return "\n".join(lines)


def report_to_dict(report: LintReport) -> dict[str, Any]:
    out = report.to_dict()
    out["schema_version"] = JSON_SCHEMA_VERSION
    return out


def render_json(report: LintReport) -> str:
    """Stable machine-readable report for one run."""
    return json.dumps(report_to_dict(report), indent=2, sort_keys=True)


def study_to_dict(reports: Iterable[LintReport], *,
                  nranks: int, seed: int) -> dict[str, Any]:
    """One JSON document covering a whole lint campaign (``--all``)."""
    runs = [report_to_dict(r) for r in reports]
    runs.sort(key=lambda r: r["label"])
    summary = {str(s): 0 for s in
               (Severity.ERROR, Severity.WARNING, Severity.INFO)}
    for run in runs:
        for key, n in run["summary"].items():
            summary[key] += n
    return {
        "schema_version": JSON_SCHEMA_VERSION,
        "nranks": nranks,
        "seed": seed,
        "summary": summary,
        "exit_code": 1 if any(run["exit_code"] for run in runs) else 0,
        "runs": runs,
    }


def render_study_json(reports: Iterable[LintReport], *,
                      nranks: int, seed: int) -> str:
    return json.dumps(study_to_dict(reports, nranks=nranks, seed=seed),
                      indent=2, sort_keys=True)


def render_study_text(reports: Iterable[LintReport]) -> str:
    """Campaign overview table plus each run's detail section."""
    reports = [r.sorted() for r in reports]
    table = AsciiTable(
        ["configuration", "errors", "warnings", "info", "verdict"],
        title="Lint campaign summary")
    for r in sorted(reports, key=lambda r: r.label):
        c = r.counts()
        verdict = ("FAIL" if c["error"] else
                   "warn" if c["warning"] else "clean")
        table.add_row(r.label, c["error"], c["warning"], c["info"],
                      verdict)
    sections = [table.render()]
    for r in sorted(reports, key=lambda r: r.label):
        if r.errors:
            sections.append(render_text(r))
    return "\n\n".join(sections)
