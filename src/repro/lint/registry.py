"""Lint-rule base class and discovery registry.

Mirrors :mod:`repro.apps.registry`: rules are independent classes that
register themselves under a stable id + name, and callers ask the
registry for "all rules" or a named subset.  Adding a rule is::

    @register_rule
    class MyRule(LintRule):
        id = "L042"
        name = "my-rule"
        summary = "one line shown by --list-rules"

        def check(self, ctx):
            yield self.diagnostic(Severity.WARNING, "...", path="/f")

Rules are stateless; :meth:`LintRule.check` receives a
:class:`~repro.lint.context.LintContext` holding the trace and every
shared (lazily computed) analysis artifact.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, Iterable

from repro.errors import LintError
from repro.lint.diagnostics import Diagnostic, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.context import LintContext


class LintRule(abc.ABC):
    """One static-analysis pass over a trace."""

    #: stable identifier, ``L0xx`` — never reused, never renumbered
    id: str = ""
    #: kebab-case name used by ``--rules`` and reports
    name: str = ""
    #: one-line description for ``--list-rules`` and docs
    summary: str = ""

    @abc.abstractmethod
    def check(self, ctx: "LintContext") -> Iterable[Diagnostic]:
        """Yield diagnostics for one trace."""

    def diagnostic(self, severity: Severity, message: str,
                   **kw: Any) -> Diagnostic:
        """Build a diagnostic pre-filled with this rule's identity."""
        return Diagnostic(rule=self.name, rule_id=self.id,
                          severity=severity, message=message, **kw)

    def __repr__(self) -> str:
        return f"<LintRule {self.id} {self.name}>"


_REGISTRY: dict[str, type[LintRule]] = {}


def register_rule(cls: type[LintRule]) -> type[LintRule]:
    """Class decorator: add a rule to the registry (keyed by id + name)."""
    if not cls.id or not cls.name:
        raise LintError(f"rule {cls.__name__} lacks an id or name")
    for key in (cls.id, cls.name):
        existing = _REGISTRY.get(key)
        if existing is not None and existing is not cls:
            raise LintError(
                f"duplicate lint rule key {key!r}: "
                f"{existing.__name__} vs {cls.__name__}")
    _REGISTRY[cls.id] = cls
    _REGISTRY[cls.name] = cls
    return cls


def _ensure_builtin_rules_loaded() -> None:
    # the import registers the built-in rule classes as a side effect
    import repro.lint.rules  # noqa: F401


def all_rules() -> list[LintRule]:
    """One instance of every registered rule, ordered by id."""
    _ensure_builtin_rules_loaded()
    classes = {cls for cls in _REGISTRY.values()}
    return [cls() for cls in sorted(classes, key=lambda c: c.id)]


def get_rule(key: str) -> LintRule:
    """Look up one rule by id (``L001``) or name (``commit-hazard``)."""
    _ensure_builtin_rules_loaded()
    try:
        return _REGISTRY[key]()
    except KeyError:
        known = ", ".join(sorted(
            {cls.name for cls in _REGISTRY.values()}))
        raise LintError(f"unknown lint rule {key!r}; known: {known}")


def resolve_rules(keys: Iterable[str] | None = None) -> list[LintRule]:
    """``None`` -> every rule; otherwise the named subset, in id order."""
    if keys is None:
        return all_rules()
    rules = [get_rule(k) for k in keys]
    seen: dict[str, LintRule] = {}
    for rule in rules:
        seen.setdefault(rule.id, rule)
    return [seen[i] for i in sorted(seen)]
