"""Bench: cluster failover latency and degraded-mode throughput.

Boots the same in-process cluster the chaos suite uses (3 workers,
rf 2, thread-backed servers), kills one worker, and measures what the
robustness tentpole promises — writes
``benchmarks/output/BENCH_cluster.json``, gated in CI by
``tools/bench_gate.py``:

* **failover_latency** — the first request routed at the dead node
  after the kill must still succeed, and quickly: the client sees the
  connection refused, refreshes membership, and reroutes to a live
  replica.  Recorded in seconds but deliberately *not* named ``*_s``:
  a sub-hundred-millisecond baseline would make the 1.5x absolute
  gate pure noise, so only the machine-independent ceiling applies.
* **degraded_ratio** — throughput with one of three workers dead may
  cost at most this multiple of the healthy pass over the same
  request mix (the survivors absorb the load; routing retries are
  cheap once the membership snapshot catches up).
* healthy/degraded pass wall times are recorded (``*_s``) for the
  absolute-timing comparison between comparable hosts.
"""

from __future__ import annotations

import asyncio
import json
import os
import platform
import time

from benchmarks.conftest import save_artifact
from repro.cluster.chaos import ClusterHarness
from repro.cluster.client import ClusterClient
from repro.cluster.ring import HashRing
from repro.obs.registry import MetricsRegistry
from repro.serve.handlers import request_key

WORKERS = 3
RF = 2
#: requests per throughput pass (healthy and degraded)
PASS_REQUESTS = 40
#: distinct sleep tokens the passes cycle through
TOKENS = 8
#: the node the bench kills
VICTIM = "w2"
#: first request at the dead node must reroute within this
FAILOVER_CEILING_S = 2.5
#: one dead worker may cost at most this multiple of healthy wall time
DEGRADED_RATIO_CEILING = 5.0


def _victim_token(node_ids, rf):
    """A sleep token whose shard is *primaried* on the victim, so the
    post-kill request provably exercises failover rather than landing
    on a live replica by luck."""
    ring = HashRing(node_ids)
    for i in range(10_000):
        token = f"victim{i}"
        key = request_key("sleep", {"seconds": 0.0, "token": token})
        if ring.replicas(key, rf)[0] == VICTIM:
            return token
    raise AssertionError(f"no token primaried on {VICTIM}")


async def _pass_seconds(client, n=PASS_REQUESTS):
    t0 = time.perf_counter()
    for i in range(n):
        doc = await client.request(
            "sleep", {"seconds": 0.0, "token": f"bench{i % TOKENS}"},
            deadline_s=30.0)
        assert doc["ok"] is True, doc
    return time.perf_counter() - t0


def test_cluster_contract(artifacts, tmp_path):
    harness = ClusterHarness(nworkers=WORKERS, rf=RF,
                             base_dir=tmp_path / "shards").start()
    registry = MetricsRegistry()
    measured: dict = {}

    async def drive():
        client = ClusterClient(manager_host="127.0.0.1",
                               manager_port=harness.manager_port,
                               seed=11, registry=registry)
        try:
            for i in range(TOKENS):  # warm the replica roots
                doc = await client.request(
                    "sleep", {"seconds": 0.0, "token": f"bench{i}"},
                    deadline_s=30.0)
                assert doc["ok"] is True, doc
            measured["healthy_pass_s"] = await _pass_seconds(client)

            token = _victim_token(harness.node_ids, harness.rf)
            doc = await client.request(
                "sleep", {"seconds": 0.0, "token": token},
                deadline_s=30.0)
            assert doc["ok"] is True, doc

            harness.kill_worker(VICTIM)
            t0 = time.perf_counter()
            doc = await client.request(
                "sleep", {"seconds": 0.0, "token": token},
                deadline_s=30.0)
            measured["failover_latency"] = time.perf_counter() - t0
            assert doc["ok"] is True, doc

            measured["degraded_pass_s"] = await _pass_seconds(client)
        finally:
            await client.close()

    try:
        asyncio.run(drive())
    finally:
        harness.stop()

    healthy_s = measured["healthy_pass_s"]
    degraded_s = measured["degraded_pass_s"]
    failover = measured["failover_latency"]
    degraded_ratio = degraded_s / healthy_s if healthy_s else 0.0

    assert failover <= FAILOVER_CEILING_S, \
        f"failover took {failover:.3f}s, ceiling " \
        f"{FAILOVER_CEILING_S}s"
    assert degraded_ratio <= DEGRADED_RATIO_CEILING, \
        f"degraded pass at {degraded_ratio:.2f}x healthy exceeds " \
        f"{DEGRADED_RATIO_CEILING}x"

    doc = {
        "bench": "cluster",
        "workers": WORKERS,
        "rf": RF,
        "pass_requests": PASS_REQUESTS,
        "tokens": TOKENS,
        "victim": VICTIM,
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.machine(),
        "python": platform.python_version(),
        "healthy_pass_s": round(healthy_s, 4),
        "healthy_rps": round(PASS_REQUESTS / healthy_s, 1)
        if healthy_s else 0.0,
        "degraded_pass_s": round(degraded_s, 4),
        "degraded_rps": round(PASS_REQUESTS / degraded_s, 1)
        if degraded_s else 0.0,
        "degraded_ratio": round(degraded_ratio, 4),
        "failover_latency": round(failover, 4),
        "client_requests":
            registry.counter("cluster.client.requests").value,
        "client_failovers":
            registry.counter("cluster.client.failovers").value,
        "contracts": {
            "ratio_ceilings": {
                "failover_latency": FAILOVER_CEILING_S,
                "degraded_ratio": DEGRADED_RATIO_CEILING,
            },
        },
    }
    save_artifact(artifacts, "BENCH_cluster.json",
                  json.dumps(doc, indent=2, sort_keys=True))
    save_artifact(artifacts, "BENCH_cluster.txt", "\n".join([
        f"cluster bench: {WORKERS} workers, rf {RF}, "
        f"{PASS_REQUESTS} requests/pass over {TOKENS} tokens",
        f"healthy pass: {doc['healthy_pass_s']}s "
        f"({doc['healthy_rps']} req/s)",
        f"kill {VICTIM}: first rerouted request in "
        f"{doc['failover_latency']}s "
        f"(ceiling {FAILOVER_CEILING_S}s)",
        f"degraded pass: {doc['degraded_pass_s']}s "
        f"({doc['degraded_rps']} req/s) — "
        f"{doc['degraded_ratio']}x healthy "
        f"(ceiling {DEGRADED_RATIO_CEILING}x)",
        f"client: requests={doc['client_requests']} "
        f"failovers={doc['client_failovers']}",
    ]))
