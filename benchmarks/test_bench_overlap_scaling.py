"""Performance bench: overlap detection (§5.1's complexity note).

The paper observes Algorithm 1 is quadratic in the worst case but linear
in practice (sorting aside).  We time the sweep on realistic disjoint-ish
workloads at several sizes and against the O(n^2) oracle at one size.
"""

import numpy as np
import pytest

from repro.core.overlaps import find_overlaps, find_overlaps_bruteforce
from repro.core.records import AccessRecord, AccessTable


def synthetic_table(n: int, overlap_fraction: float = 0.02,
                    seed: int = 5) -> AccessTable:
    """Mostly disjoint strided extents with a sprinkling of overlaps —
    the shape real checkpoint traces have."""
    rng = np.random.default_rng(seed)
    records = []
    for i in range(n):
        if rng.random() < overlap_fraction:
            start = int(rng.integers(0, n)) * 100
        else:
            start = i * 100
        length = int(rng.integers(1, 100))
        records.append(AccessRecord(
            rid=i, rank=int(rng.integers(0, 16)), path="/f",
            offset=start, stop=start + length,
            is_write=bool(rng.integers(0, 2)),
            tstart=float(i), tend=float(i) + 0.5))
    return AccessTable("/f", records)


@pytest.mark.parametrize("n", [1_000, 10_000, 50_000])
def test_bench_sweep_scaling(benchmark, n):
    table = synthetic_table(n)
    pairs = benchmark(find_overlaps, table)
    assert len(pairs) < n  # sparse-overlap workload stays near-linear


def test_bench_bruteforce_reference(benchmark):
    table = synthetic_table(1_000)
    expected = {tuple(sorted(p)) for p in
                find_overlaps(table).tolist()}
    pairs = benchmark(find_overlaps_bruteforce, table)
    assert {tuple(sorted(p)) for p in pairs.tolist()} == expected


def test_bench_worst_case_all_overlapping(benchmark):
    """Quadratic worst case: every extent overlaps every other."""
    n = 700
    records = [AccessRecord(rid=i, rank=0, path="/f", offset=0,
                            stop=1000, is_write=True, tstart=float(i),
                            tend=float(i) + 0.5) for i in range(n)]
    table = AccessTable("/f", records)
    pairs = benchmark(find_overlaps, table)
    assert len(pairs) == n * (n - 1) // 2
