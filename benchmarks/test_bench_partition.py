"""Bench: partitioned simulation scaling to thousands of ranks.

Runs a seeded synthetic checkpoint-style program — every rank creates
its own file under a shared directory and issues two 512-byte writes
separated by barriers — through ``repro.partition`` at
``REPRO_BENCH_PARTITION_RANKS`` ranks (default 1024, the paper-scale
study size) and at a quarter of that size, with the same partition
count.

Two machine-independent contracts ride in the emitted document, both
enforced by ``tools/bench_gate.py`` against the committed
``benchmarks/output/BENCH_partition.json``:

* ``rounds_over_ranks`` — coordinator rounds at full size divided by
  the rank count.  The round count is *deterministic* for a seeded
  program, so this gate never flaps on a loaded host.  The failure
  mode it guards against is the one-grant-per-round regression: if
  the create arbitration (or any other grant path) serializes ranks
  one per round, rounds grow linearly with ranks and the metric lands
  near 1.0; the healthy protocol needs a small constant number of
  rounds per barrier epoch (measured 6 rounds at 1024 ranks, 0.006).
  The ceiling of 0.05 rejects the regression with a wide margin.
* ``small_divergence`` — 0.0, ceiling 0.0: at ``IDENTITY_RANKS`` the
  merged partitioned trace must be byte-identical (canonical
  ``.rtrc``) to the single-process run, so the thing being timed is
  provably the same simulation.  Any divergence reports 1.0 and trips
  the ceiling.

Absolute ``*_s`` timings are gated between comparable hosts only, and
the full/quarter wall-clock ratio rides along as an informational
``scaling_4x`` metric (no ceiling: on oversubscribed CI hosts it is
too noisy to gate on).  The rounds contract is only asserted in-test
above ``RATIO_MIN_RANKS`` so tiny ad-hoc runs stay meaningful.
"""

from __future__ import annotations

import json
import os
import platform
import time

import pytest

from benchmarks.conftest import save_artifact
from repro.apps.base import AppConfig, run_application
from repro.obs import registry as obs
from repro.partition.runner import run_partitioned_application
from repro.tracer.columnar import ColumnarTrace

N_RANKS = int(os.environ.get("REPRO_BENCH_PARTITION_RANKS", "1024"))
PARTITIONS = int(os.environ.get("REPRO_BENCH_PARTITION_PARTS",
                                "8" if N_RANKS >= 2048 else "4"))
SEED = 11
ROUNDS = 2
#: coordinator rounds / ranks; one-grant-per-round regresses to ~1.0
ROUNDS_CEILING = 0.05
#: below this the per-rank round cost is not probed hard enough
RATIO_MIN_RANKS = 512
#: small enough that the serial engine runs it in a thread per rank
IDENTITY_RANKS = 64

O_CREAT_RDWR = 64 | 2


def _program(ctx, cfg):
    px, rank = ctx.posix, ctx.rank
    fd = px.open(f"/bench/out/rank{rank:05d}.dat", O_CREAT_RDWR)
    px.pwrite(fd, b"x" * 512, 0)
    ctx.comm.barrier()
    px.pwrite(fd, b"y" * 512, 512)
    px.close(fd)
    ctx.comm.barrier()


def _setup(fs, cfg):
    fs.makedirs("/bench/out")


def _config(nranks):
    return AppConfig(application="partition-bench", nranks=nranks,
                     seed=SEED, clock_skew_us=10.0)


def _run_partitioned(nranks, partitions):
    return run_partitioned_application(_config(nranks), _program,
                                       setup=_setup,
                                       partitions=partitions)


def _best_of(fn, rounds):
    best = None
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return result, best


def _rtrc_bytes(trace, path) -> bytes:
    ColumnarTrace.from_trace(trace).save(path)
    return path.read_bytes()


def test_bench_partitioned_small(benchmark):
    trace = benchmark.pedantic(_run_partitioned,
                               args=(IDENTITY_RANKS, 2),
                               rounds=3, iterations=1)
    assert len(trace.records) == 4 * IDENTITY_RANKS


def test_partition_scaling_contract(artifacts, tmp_path):
    """Time full and quarter size, assert identity + scaling, emit doc."""
    if N_RANKS < 4 * PARTITIONS:
        pytest.skip(f"{N_RANKS} ranks cannot split {PARTITIONS} ways "
                    f"at a quarter of the size")

    # the identity gate first: the partitioned engine must be timing
    # the same simulation the serial engine runs, byte for byte
    serial_small = _rtrc_bytes(
        run_application(_config(IDENTITY_RANKS), _program, setup=_setup),
        tmp_path / "serial.rtrc")
    with obs.collecting(trace=True) as reg:
        part_small = _rtrc_bytes(_run_partitioned(IDENTITY_RANKS, 4),
                                 tmp_path / "part.rtrc")
        small_snap = reg.snapshot()
    divergence = 0.0 if serial_small == part_small else 1.0
    assert divergence == 0.0, (
        f"partitioned .rtrc diverged from serial at {IDENTITY_RANKS} "
        f"ranks; the scaling numbers below would be meaningless")

    quarter_trace, quarter_s = _best_of(
        lambda: _run_partitioned(N_RANKS // 4, PARTITIONS), ROUNDS)
    full_trace, full_s = _best_of(
        lambda: _run_partitioned(N_RANKS, PARTITIONS), ROUNDS)
    assert len(full_trace.records) == 4 * N_RANKS
    assert len(quarter_trace.records) == 4 * (N_RANKS // 4)

    # one untimed full-size run under the collector: the round count
    # is deterministic, so it carries the machine-independent contract
    with obs.collecting(trace=True) as reg:
        _run_partitioned(N_RANKS, PARTITIONS)
        rounds_full = reg.snapshot()["partition.rounds"]["value"]
    rounds_over_ranks = rounds_full / N_RANKS

    scaling = full_s / quarter_s if quarter_s else float("inf")
    doc = {
        "bench": "partition",
        "ranks": N_RANKS,
        "partitions": PARTITIONS,
        "seed": SEED,
        "records": len(full_trace.records),
        "coordinator_rounds": rounds_full,
        "coordinator_rounds_small": small_snap["partition.rounds"]["value"],
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.machine(),
        "python": platform.python_version(),
        "partitioned_s": round(full_s, 4),
        "quarter_size_s": round(quarter_s, 4),
        "ranks_per_second": round(N_RANKS / full_s, 1) if full_s else None,
        "scaling_4x": round(scaling, 4),
        "rounds_over_ranks": round(rounds_over_ranks, 6),
        "small_divergence": divergence,
        "contracts": {
            "ratio_ceilings": {
                "rounds_over_ranks": ROUNDS_CEILING,
                "small_divergence": 0.0,
            },
        },
    }
    save_artifact(artifacts, "BENCH_partition.json",
                  json.dumps(doc, indent=2, sort_keys=True))
    save_artifact(artifacts, "BENCH_partition.txt", "\n".join([
        f"partitioned simulation: {N_RANKS} ranks / {PARTITIONS} "
        f"partitions, seed={SEED}",
        f"full size     {full_s:8.3f}s  ({doc['ranks_per_second']} ranks/s, "
        f"{doc['records']} records)",
        f"quarter size  {quarter_s:8.3f}s  (scaling_4x {scaling:.3f}, "
        f"informational)",
        f"coordinator rounds {rounds_full}  (rounds/ranks "
        f"{rounds_over_ranks:.4f}, ceiling {ROUNDS_CEILING})",
        f"byte-identity at {IDENTITY_RANKS} ranks: "
        f"{'ok' if divergence == 0.0 else 'DIVERGED'} "
        f"({doc['coordinator_rounds_small']} coordinator rounds)",
    ]))

    if N_RANKS >= RATIO_MIN_RANKS:
        assert rounds_over_ranks <= ROUNDS_CEILING, (
            f"{rounds_full} coordinator rounds at {N_RANKS} ranks "
            f"({rounds_over_ranks:.4f} per rank, ceiling "
            f"{ROUNDS_CEILING}): a grant path is serializing ranks "
            f"one round at a time")
