"""Bench: columnar trace core vs the per-record object pipeline.

Builds a seeded synthetic trace of ``REPRO_BENCH_TRACE_OPS`` data ops
(default 10^6) and times the full conflict-detection pipeline twice:

* **columnar** — ``reconstruct_tables_columnar`` +
  ``VisibilityIndex.from_columnar`` + the numpy pair classifiers, all
  over :class:`~repro.tracer.columnar.ColumnarTrace` arrays;
* **object** — the original per-record path: materialize
  ``TraceRecord`` objects, replay ``reconstruct_offsets``, group into
  tables, build the visibility index from the record list.

Both must produce *identical* conflict counts (the columnar path is an
optimization, not an approximation), and the columnar/object time ratio
is a machine-independent contract: ``columnar_over_object`` must stay
under ``RATIO_CEILING`` (0.1 == the ISSUE's >=10x speedup at 10^6 ops).
``tools/bench_gate.py`` enforces the ratio on every host and the
absolute ``*_s`` timings between comparable hosts, against the
committed ``benchmarks/output/BENCH_trace_core.json``.

The ratio contract is only asserted when the trace is at least
``RATIO_MIN_OPS`` ops — below that the object path's fixed costs do
not dominate and the ratio is noise (parity is still asserted).  The
``.rtrc`` save/load timings ride along as informational ``*_s``
metrics so a format-level regression (e.g. an accidental copy on load)
shows up in the same gate.
"""

from __future__ import annotations

import json
import os
import platform
import time

import pytest

from benchmarks.conftest import save_artifact
from repro.core import offsets
from repro.core.conflicts import (
    VisibilityIndex,
    count_conflicts,
    count_conflicts_columnar,
)
from repro.core.offsets import reconstruct_offsets
from repro.core.records import group_by_path
from repro.core.semantics import Semantics
from repro.tracer import read_rtrc
from repro.tracer.synth import synthetic_columnar_trace

N_OPS = int(os.environ.get("REPRO_BENCH_TRACE_OPS", "1000000"))
SEED = 42
SEMANTICS = Semantics.SESSION
ROUNDS_COLUMNAR = 3
ROUNDS_OBJECT = 2
#: columnar pipeline time / object pipeline time: the >=10x contract
RATIO_CEILING = 0.1
#: below this size the ratio is noise and only parity is asserted
RATIO_MIN_OPS = 500_000
#: the pytest-benchmark micro runs use a slice of the full trace size
N_MICRO = max(N_OPS // 10, 10_000)


@pytest.fixture(scope="module")
def ct():
    return synthetic_columnar_trace(N_OPS, seed=SEED)


@pytest.fixture(scope="module")
def tr(ct):
    # materializing 10^6 TraceRecord objects is the object pipeline's
    # input, not part of either timed region
    return ct.to_trace()


def _columnar_pipeline(ct):
    return count_conflicts_columnar(ct, SEMANTICS)


def _object_pipeline(tr):
    tables = group_by_path(reconstruct_offsets(tr.records))
    return count_conflicts(tr, tables, SEMANTICS)


def _best_of(fn, rounds):
    best = None
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return result, best


def test_bench_columnar_pipeline(benchmark):
    small = synthetic_columnar_trace(N_MICRO, seed=SEED)
    counts = benchmark.pedantic(_columnar_pipeline, args=(small,),
                                rounds=3, iterations=1)
    assert sum(counts.values()) > 0


def test_bench_rtrc_load(benchmark, tmp_path, ct):
    path = tmp_path / "bench.rtrc"
    ct.save(path)
    loaded = benchmark.pedantic(read_rtrc, args=(path,),
                                rounds=3, iterations=1)
    assert loaded.nrecords == ct.nrecords


def test_trace_core_contract(artifacts, tmp_path, ct, tr):
    """Time both pipelines, assert parity + ratio, emit the baseline."""
    # the measured columnar path must be the vectorized one — a silent
    # fallback to object replay would make the ratio meaningless
    try:
        offsets._reconstruct_vectorized(ct)
    except offsets._ColumnarFallback:
        pytest.fail("synthetic trace fell back to object replay; the "
                    "bench would time the object path against itself")

    col_counts, col_s = _best_of(lambda: _columnar_pipeline(ct),
                                 ROUNDS_COLUMNAR)
    obj_counts, obj_s = _best_of(lambda: _object_pipeline(tr),
                                 ROUNDS_OBJECT)

    # identical classification, class by class
    assert col_counts == obj_counts, (
        f"columnar {col_counts} != object {obj_counts}")

    # .rtrc round trip: write once, zero-copy load once
    path = tmp_path / "bench.rtrc"
    t0 = time.perf_counter()
    ct.save(path)
    save_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    loaded = read_rtrc(path)
    load_s = time.perf_counter() - t0
    assert loaded.columns_equal(ct)

    ratio = col_s / obj_s if obj_s else float("inf")
    doc = {
        "bench": "trace_core",
        "ops": N_OPS,
        "rows": ct.nrecords,
        "seed": SEED,
        "semantics": SEMANTICS.name.lower(),
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.machine(),
        "python": platform.python_version(),
        "columnar_s": round(col_s, 4),
        "object_s": round(obj_s, 4),
        "rtrc_save_s": round(save_s, 4),
        "rtrc_load_s": round(load_s, 4),
        "rtrc_bytes": path.stat().st_size,
        "columnar_over_object": round(ratio, 4),
        "speedup": round(1.0 / ratio, 2) if ratio else None,
        "counts": col_counts,
        "contracts": {
            "ratio_ceilings": {"columnar_over_object": RATIO_CEILING},
        },
    }
    save_artifact(artifacts, "BENCH_trace_core.json",
                  json.dumps(doc, indent=2, sort_keys=True))
    save_artifact(artifacts, "BENCH_trace_core.txt", "\n".join([
        f"synthetic trace: {N_OPS} data ops ({ct.nrecords} rows), "
        f"seed={SEED}, semantics={doc['semantics']}",
        f"columnar pipeline {col_s:8.3f}s",
        f"object pipeline   {obj_s:8.3f}s  "
        f"(columnar/object {ratio:.4f}, {doc['speedup']:.1f}x)",
        f"rtrc save {save_s:.3f}s  load {load_s:.3f}s  "
        f"({doc['rtrc_bytes']} bytes)",
        f"counts {json.dumps(col_counts, sort_keys=True)}",
    ]))

    if N_OPS >= RATIO_MIN_OPS:
        assert ratio <= RATIO_CEILING, (
            f"columnar pipeline cost {ratio:.4f}x the object pipeline "
            f"(ceiling {RATIO_CEILING} == {1 / RATIO_CEILING:.0f}x "
            f"speedup) at {N_OPS} ops")
