"""Bench: regenerate Table 1 (PFS consistency-semantics categorization).

Paper shape: four categories; GPFS/Lustre/GekkoFS/BeeGFS/BatchFS/OrangeFS
strong; BSCFS/UnifyFS/SymphonyFS/BurstFS commit; NFS/AFS/DDN IME/Gfarm/BB
session; PLFS/echofs/MarFS eventual.
"""

from benchmarks.conftest import save_artifact
from repro.core.semantics import Semantics, registry_by_semantics
from repro.study.tables import table1_text


def test_bench_table1(benchmark, artifacts):
    text = benchmark(table1_text)
    grouping = registry_by_semantics()
    assert len(grouping[Semantics.STRONG]) == 6
    assert len(grouping[Semantics.COMMIT]) == 4
    assert len(grouping[Semantics.SESSION]) == 4
    assert len(grouping[Semantics.EVENTUAL]) == 3
    assert "UnifyFS" in text and "Gfarm/BB" in text
    save_artifact(artifacts, "table1.txt", text)
