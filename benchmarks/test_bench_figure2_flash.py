"""Bench: regenerate Figure 2 (FLASH collective vs independent writes).

Paper shape at 64 ranks: collective mode routes checkpoint data through
six MPI-IO aggregators while ~30 processes write small HDF5 metadata at
the head of the file; the plot file's data is written by rank 0 only;
independent mode has every rank writing; a single rank's accesses are
mostly monotonic.  At bench scale (8 ranks) the aggregator count stays 6
and the metadata writers are the even ranks (half of all).
"""

import numpy as np

from benchmarks.conftest import save_artifact
from repro.study.figures import figure2_csv, figure2_series, figure2_text


def test_bench_figure2(benchmark, study8, artifacts):
    fbs = study8.find("FLASH-HDF5 fbs")
    nofbs = study8.find("FLASH-HDF5 nofbs")
    panels = {s.panel: s for s in benchmark(figure2_series, fbs, nofbs)}

    ckpt_fbs = panels["checkpoint-fbs"]
    assert ckpt_fbs.data_writer_count == 6          # the six aggregators
    assert ckpt_fbs.head_writer_count == study8.nranks // 2

    assert panels["plot-fbs"].data_writer_count <= 3  # rank-0 data
    assert panels["checkpoint-nofbs"].data_writer_count == study8.nranks

    # rank 0's data accesses are mostly monotonic (paper Fig 2f; the
    # paper's small-metadata exception applies here too)
    nofbs_ckpt = panels["checkpoint-nofbs"]
    biggest = max(nofbs_ckpt.sizes)
    r0 = [(t, o) for t, o, r, n in zip(nofbs_ckpt.times,
                                       nofbs_ckpt.offsets,
                                       nofbs_ckpt.ranks,
                                       nofbs_ckpt.sizes)
          if r == 0 and n * 8 >= biggest]
    offsets = np.array([o for _, o in sorted(r0)])
    forward = np.sum(np.diff(offsets) > 0)
    assert forward >= 0.9 * max(1, len(offsets) - 1)

    save_artifact(artifacts, "figure2.txt", figure2_text(fbs, nofbs))
    figure2_csv(fbs, nofbs, artifacts)
