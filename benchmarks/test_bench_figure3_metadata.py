"""Bench: regenerate Figure 3 (metadata operations by issuing layer).

Paper shape: every configuration uses only a small subset of the POSIX
metadata surface; rename/chown/utime are never used; I/O libraries
introduce extra operations (ParaDiS-HDF5 adds lstat/fstat/ftruncate over
ParaDiS-POSIX, LAMMPS with libraries adds getcwd/unlink).
"""

from benchmarks.conftest import save_artifact
from repro.core.metadata import unused_operations
from repro.study.figures import figure3_matrix, figure3_text


def test_bench_figure3(benchmark, study8, artifacts):
    cells = benchmark(figure3_matrix, study8)

    ops_by_run: dict[str, set[str]] = {}
    for (op, label), _marks in cells.items():
        ops_by_run.setdefault(label, set()).add(op)

    # small subsets everywhere
    assert all(len(ops) <= 10 for ops in ops_by_run.values())

    # library-introduced operations
    paradis_extra = ops_by_run["ParaDiS-HDF5"] - ops_by_run["ParaDiS-POSIX"]
    assert {"lstat", "fstat", "ftruncate"} <= paradis_extra
    lammps_extra = ops_by_run["LAMMPS-ADIOS"] - ops_by_run["LAMMPS-POSIX"]
    assert {"getcwd", "unlink"} <= lammps_extra

    # HDF5-issued ftruncate attribution
    assert cells[("ftruncate", "ParaDiS-HDF5")] == "H"

    # never-used operations (paper: rename, chown, utime, ...)
    for run in study8:
        unused = set(unused_operations(run.report.metadata))
        assert {"rename", "chown", "utime", "link", "mkfifo"} <= unused

    save_artifact(artifacts, "figure3.txt", figure3_text(study8))
