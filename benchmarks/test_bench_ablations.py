"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation disables one mechanism and shows the result moves away
from the paper's shape — evidence the mechanism is load-bearing:

1. metadata-exception filter off -> Table 3 classification degrades;
2. H5Fflush removed (the paper's fix) -> FLASH conflicts vanish;
3. collective metadata (the other fix) -> cross-process conflicts vanish;
4. timestamp alignment matters once skew approaches operation gaps.
"""

import repro
from benchmarks.conftest import save_artifact
from repro.core.patterns import AccessPattern, classify_file
from repro.core.semantics import Semantics


def test_bench_ablation_metadata_filter(benchmark, study8, artifacts):
    """Without the small-metadata exception, HDF5 header traffic drags
    per-rank sequences toward 'random' (the paper's caveat in §6.2)."""
    run = study8.find("FLASH-HDF5 fbs")
    path = next(p for p in run.report.tables
                if "/flash/ckpt/" in p)
    records = run.report.tables[path].records

    def classify_both():
        with_filter = classify_file(records)
        without = classify_file(records, prefiltered=True)
        return with_filter, without

    with_filter, without = benchmark(classify_both)
    assert with_filter is AccessPattern.STRIDED_CYCLIC
    assert without in (AccessPattern.RANDOM, AccessPattern.MONOTONIC)
    save_artifact(artifacts, "ablation_metadata_filter.txt",
                  f"with filter: {with_filter}\nwithout: {without}")


def test_bench_ablation_flash_fix_drop_flush(benchmark, artifacts):
    """The paper's one-line fix: removing H5Fflush makes FLASH safe on
    session-semantics file systems."""
    def run():
        trace = repro.run("FLASH", io_library="HDF5", nranks=8,
                          options={"flush_between_datasets": False})
        return repro.analyze(trace)

    report = benchmark.pedantic(run, rounds=2, iterations=1)
    session = report.conflicts(Semantics.SESSION)
    assert not session, "fixed FLASH must be conflict-free"
    assert report.weakest_sufficient_semantics() is Semantics.EVENTUAL
    save_artifact(artifacts, "ablation_flash_noflush.txt",
                  f"conflicts: {len(session)}; weakest sufficient: "
                  f"{report.weakest_sufficient_semantics().title}")


def test_bench_ablation_flash_fix_collective_metadata(benchmark, artifacts):
    """The alternative fix: rank-0-only metadata keeps the flush but
    removes every cross-process conflict."""
    def run():
        trace = repro.run("FLASH", io_library="HDF5", nranks=8,
                          options={"collective_metadata": True})
        return repro.analyze(trace)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    session = report.conflicts(Semantics.SESSION)
    assert not session.cross_process_only
    save_artifact(artifacts, "ablation_flash_collective_md.txt",
                  f"session flags: {session.flags}")


def test_bench_ablation_clock_skew_tolerance(benchmark, artifacts):
    """§5.2's argument: skews (tens of us) are far below the gaps
    between synchronized conflicting operations (ms), so timestamp
    ordering is safe.  Small skews leave results identical."""
    def sweep():
        out = {}
        for skew in (0.0, 15.0):
            trace = repro.run("FLASH", io_library="HDF5", nranks=8,
                              seed=7, clock_skew_us=skew)
            out[skew] = repro.analyze(trace).conflicts(
                Semantics.SESSION).flags
        return out

    flags = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert flags[0.0] == flags[15.0]
    save_artifact(artifacts, "ablation_clock_skew.txt", repr(flags))
