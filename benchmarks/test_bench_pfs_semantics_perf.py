"""Bench: the motivation claim (§1/§3.1) — strong semantics costs.

A synthetic N-1 checkpoint drives the PFS simulator back-to-back (no
compute gaps).  Under strong semantics every write charges a distributed
lock round trip through the single metadata server; the MDS serializes
and the gap to the relaxed models widens with client count.
"""

import pytest

from benchmarks.conftest import save_artifact
from repro.core.semantics import Semantics
from repro.pfs.client import PFSimulator
from repro.pfs.config import PFSConfig
from repro.util.tables import AsciiTable


def n_to_1_checkpoint(sim: PFSimulator, nclients: int,
                      writes_per_client: int = 32,
                      block: int = 4096) -> float:
    clients = [sim.client(i) for i in range(nclients)]
    for c in clients:
        c.open("/ckpt")
    for step in range(writes_per_client):
        for c in clients:
            offset = (step * nclients + c.client_id) * block
            c.write("/ckpt", offset, b"d" * block)
    for c in clients:
        c.commit("/ckpt")
        c.close("/ckpt")
    return sim.stats.makespan


SEMANTICS = (Semantics.STRONG, Semantics.COMMIT, Semantics.SESSION,
             Semantics.EVENTUAL)


@pytest.mark.parametrize("semantics", SEMANTICS,
                         ids=[s.name.lower() for s in SEMANTICS])
def test_bench_n1_checkpoint(benchmark, semantics):
    def run():
        sim = PFSimulator(PFSConfig(semantics=semantics))
        return n_to_1_checkpoint(sim, nclients=16)

    makespan = benchmark(run)
    assert makespan > 0


def test_bench_semantics_gap_grows_with_scale(benchmark, artifacts):
    """The headline shape: strong/relaxed gap grows with client count."""
    table = AsciiTable(["clients", "strong (ms)", "commit (ms)",
                        "speedup"],
                       title="N-1 checkpoint makespan by PFS semantics")
    def sweep():
        rows = []
        for nclients in (4, 16, 64):
            times = {}
            for semantics in (Semantics.STRONG, Semantics.COMMIT):
                sim = PFSimulator(PFSConfig(semantics=semantics))
                times[semantics] = n_to_1_checkpoint(sim, nclients)
            rows.append((nclients, times))
        return rows

    speedups = []
    for nclients, times in benchmark.pedantic(sweep, rounds=1,
                                              iterations=1):
        speedup = times[Semantics.STRONG] / times[Semantics.COMMIT]
        speedups.append(speedup)
        table.add_row(nclients, f"{times[Semantics.STRONG] * 1e3:.2f}",
                      f"{times[Semantics.COMMIT] * 1e3:.2f}",
                      f"{speedup:.2f}x")
    assert all(s > 1.0 for s in speedups), "relaxed must win"
    assert speedups[-1] > speedups[0], "gap must widen with clients"
    save_artifact(artifacts, "pfs_semantics_perf.txt", table.render())


def test_bench_mds_is_the_bottleneck(benchmark):
    """Under strong semantics at scale, the MDS queue dominates."""
    sim = PFSimulator(PFSConfig(semantics=Semantics.STRONG))
    makespan = benchmark.pedantic(
        lambda: n_to_1_checkpoint(sim, nclients=64),
        rounds=1, iterations=1)
    mds_util = sim.mds.queue.utilization(makespan)
    ost_util = max(o.queue.utilization(makespan) for o in sim.osts)
    assert mds_util > 0.9
    assert mds_util > ost_util
