"""Bench: the WAL absorb/flush path and its crash audit.

Runs the Ckpt-IO ``wal`` proxy at bench scale (``REPRO_BENCH_WAL_STEPS``
checkpoint records per rank, default 200), then times the three stages
the acked-durable story rides on:

* **absorb** — simulating the run itself: WAL appends acking records,
  virtual-time flush timers, segment PUTs;
* **replay** — the chaos-style replay of that trace under an OST crash
  with the WAL directory mapped to strong semantics (the healthy
  deployment the chaos harness models);
* **audit** — :func:`repro.faults.walcheck.audit_wal` settling every
  file and balancing the acked-durable ledger.

The machine-independent contract is ``audit_over_replay``: the audit is
one linear pass over reconstructed extents plus a settle per file, and
must stay well under the replay it rides behind — an audit that costs
as much as the replay would double the chaos matrix's bill.
``tools/bench_gate.py`` enforces the ratio everywhere and the absolute
``*_s`` timings between comparable hosts against the committed
``benchmarks/output/BENCH_wal.json``.  The audit must also report zero
lost records here: this is the healthy path the acceptance criterion
pins.
"""

from __future__ import annotations

import json
import os
import platform
import time

import pytest

from benchmarks.conftest import save_artifact
from repro.apps.registry import find_variant
from repro.core.semantics import Semantics
from repro.faults import CrashEvent, FaultPlan, audit_wal
from repro.pfs.config import PFSConfig
from repro.pfs.replay import replay_trace

STEPS = int(os.environ.get("REPRO_BENCH_WAL_STEPS", "200"))
NRANKS = 8
SEED = 42
FLUSH_EVERY = 4
STRIPE = 1 << 16
ROUNDS = 3
#: audit time / replay time: one linear pass vs a full replay
RATIO_CEILING = 0.5


def wal_variant():
    return find_variant("Ckpt-IO", "POSIX", "wal")


def run_wal():
    return wal_variant().run(nranks=NRANKS, seed=SEED, steps=STEPS,
                             flush_every=FLUSH_EVERY)


def crash_config(trace):
    wal_dir = trace.meta["options"]["wal_dir"]
    return PFSConfig(
        semantics=Semantics.SESSION, stripe_size=STRIPE,
        semantics_overrides={wal_dir + "/": Semantics.STRONG})


def crash_plan():
    # land the crash mid-stream so recovery and the audit both work
    return FaultPlan(name="ost-crash", seed=SEED,
                     crashes=(CrashEvent(target="ost:0",
                                         at_op=NRANKS * STEPS),))


def _best_of(fn, rounds):
    best = None
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return result, best


@pytest.fixture(scope="module")
def trace():
    return run_wal()


def test_bench_wal_absorb(benchmark):
    small_steps = max(STEPS // 10, 20)
    tr = benchmark.pedantic(
        lambda: wal_variant().run(nranks=NRANKS, seed=SEED,
                                  steps=small_steps,
                                  flush_every=FLUSH_EVERY),
        rounds=3, iterations=1)
    assert tr.nranks == NRANKS


def test_bench_wal_audit(benchmark, trace):
    config = crash_config(trace)
    result = replay_trace(trace, config, plan=crash_plan())
    audit = benchmark.pedantic(
        audit_wal, args=(trace, result),
        kwargs={"settle_order": config.settle_order},
        rounds=3, iterations=1)
    assert audit.ok


def test_wal_contract(artifacts, trace):
    """Time absorb/replay/audit, assert the ratio + zero-loss gate."""
    _, absorb_s = _best_of(run_wal, ROUNDS)

    config = crash_config(trace)
    plan = crash_plan()
    result, replay_s = _best_of(
        lambda: replay_trace(trace, config, plan=plan), ROUNDS)
    audit, audit_s = _best_of(
        lambda: audit_wal(trace, result,
                          settle_order=config.settle_order), ROUNDS)

    # the healthy deployment loses nothing, ledger balanced
    assert audit is not None and audit.ok
    assert audit.acked_records == NRANKS * STEPS
    assert audit.survived_in_wal + audit.covered_by_segment \
        == audit.acked_records

    ratio = audit_s / replay_s if replay_s else float("inf")
    doc = {
        "bench": "wal",
        "steps": STEPS,
        "nranks": NRANKS,
        "seed": SEED,
        "records": len(trace.records),
        "acked_records": audit.acked_records,
        "flushed_segments": audit.flushed_segments,
        "covered_by_segment": audit.covered_by_segment,
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.machine(),
        "python": platform.python_version(),
        "absorb_s": round(absorb_s, 4),
        "replay_s": round(replay_s, 4),
        "audit_s": round(audit_s, 4),
        "audit_over_replay": round(ratio, 4),
        "lost": len(audit.lost),
        "contracts": {
            "ratio_ceilings": {"audit_over_replay": RATIO_CEILING},
        },
    }
    save_artifact(artifacts, "BENCH_wal.json",
                  json.dumps(doc, indent=2, sort_keys=True))
    save_artifact(artifacts, "BENCH_wal.txt", "\n".join([
        f"wal proxy: {NRANKS} ranks x {STEPS} records, "
        f"flush_every={FLUSH_EVERY}, seed={SEED}",
        f"absorb {absorb_s:8.3f}s  ({len(trace.records)} trace records)",
        f"replay {replay_s:8.3f}s  (ost-crash, strong WAL override)",
        f"audit  {audit_s:8.3f}s  (audit/replay {ratio:.4f})",
        f"ledger: {audit.acked_records} acked = "
        f"{audit.survived_in_wal} in WAL + "
        f"{audit.covered_by_segment} in segments + {len(audit.lost)} "
        f"lost",
    ]))

    assert ratio <= RATIO_CEILING, (
        f"audit cost {ratio:.4f}x the replay it rides behind "
        f"(ceiling {RATIO_CEILING})")
