"""Bench: what fault injection costs the replay pipeline.

Replays one FLASH trace three ways — no injector at all, an injector
carrying an empty plan (the plumbing alone), and the full default chaos
matrix plan set — and reports the overhead.  The point is to keep the
fault machinery effectively free on the fault-free path: the injector
hooks sit on every client operation, so a regression here taxes every
replay in the study.
"""

import json

import pytest

from benchmarks.conftest import save_artifact
from repro.apps.registry import find_variant
from repro.core.semantics import Semantics
from repro.faults import FaultInjector, FaultPlan
from repro.pfs.chaos import default_fault_plans, run_chaos
from repro.pfs.config import PFSConfig
from repro.pfs.replay import replay_trace
from repro.util.tables import AsciiTable

NRANKS = 2
SEED = 7


@pytest.fixture(scope="module")
def flash_trace():
    return find_variant("FLASH", "HDF5", "fbs").run(nranks=NRANKS,
                                                    seed=SEED)


def _config():
    return PFSConfig(semantics=Semantics.COMMIT)


def test_bench_replay_without_injector(benchmark, flash_trace):
    result = benchmark(lambda: replay_trace(flash_trace, _config()))
    assert not result.failed_ops


def test_bench_replay_with_empty_plan(benchmark, flash_trace):
    """The injector plumbing alone (no faults ever fire)."""
    plan = FaultPlan(name="fault-free", seed=SEED)

    def run():
        return replay_trace(flash_trace, _config(), plan=plan)

    result = benchmark(run)
    assert not result.failed_ops and not result.violations


def test_bench_replay_under_ost_crash_plan(benchmark, flash_trace):
    plan = default_fault_plans(SEED)[1]  # ost-crash
    assert plan.name == "ost-crash"

    def run():
        return replay_trace(flash_trace, _config(), plan=plan)

    result = benchmark(run)
    assert result.contract_ok


def test_bench_chaos_matrix(benchmark, artifacts):
    """One full chaos matrix for one app, plus the overhead artifact."""
    variant = find_variant("FLASH", "HDF5", "fbs")

    def run():
        return run_chaos([variant], nranks=NRANKS, seed=SEED)

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    assert report.ok

    import timeit
    trace = variant.run(nranks=NRANKS, seed=SEED)
    plans = {"none": None,
             "empty-plan": FaultPlan(name="fault-free", seed=SEED)}
    plans.update((p.name, p) for p in default_fault_plans(SEED)[1:])
    rows = {}
    for name, plan in plans.items():
        timer = timeit.Timer(
            lambda p=plan: replay_trace(trace, _config(), plan=p))
        rows[name] = min(timer.repeat(repeat=5, number=3)) / 3

    base = rows["none"]
    table = AsciiTable(
        ["injector", "replay (ms)", "overhead"],
        title=f"FLASH/HDF5 fbs replay under fault injection "
              f"(nranks={NRANKS})")
    for name, secs in rows.items():
        table.add_row(name, f"{secs * 1e3:.2f}",
                      f"{secs / base:.2f}x")
    save_artifact(artifacts, "chaos_overhead.txt", table.render())
    save_artifact(
        artifacts, "chaos_overhead.json",
        json.dumps({n: s for n, s in rows.items()}, sort_keys=True,
                   indent=2))
    # the plumbing must stay cheap: an idle injector may not triple
    # the fault-free replay
    assert rows["empty-plan"] <= base * 3 + 5e-3
