"""Bench: the analysis service's cache, coalescing, and throughput.

Measures the serve-path contracts against a live server on localhost
and writes ``benchmarks/output/BENCH_serve.json``, gated in CI by
``tools/bench_gate.py``:

* **warm_fraction** — a warm read-through pass over K distinct cells
  must cost a small fraction of the cold pass (a hit is one RPC plus a
  JSON read; a miss runs the analysis in a worker process);
* **coalesce_fraction** — N concurrent duplicates of one slow request
  must cost a small fraction of N serial executions: they share one
  computation (measured with the debug ``sleep`` endpoint, whose
  latency is known exactly, so the ratio is machine-independent);
* the seeded load generator's throughput over a warm store is
  recorded (``loadtest_s``, ``loadtest_rps``) for the absolute-timing
  comparison between comparable hosts.
"""

from __future__ import annotations

import asyncio
import json
import os
import platform
import time

from benchmarks.conftest import save_artifact
from repro.serve.client import ServeClient, request_sync
from repro.serve.loadgen import LoadSpec, run_load_sync
from repro.serve.server import ServeConfig, start_background
from repro.study.cache import ResultCache

NRANKS = 2
SEED = 7
#: distinct cells per cold/warm pass
CELLS = 8
#: concurrent duplicates sharing one sleep computation
DUPLICATES = 8
SLEEP_S = 0.3
#: warm pass must cost under this fraction of the cold pass
WARM_FRACTION_CEILING = 0.5
#: N coalesced duplicates must cost under this fraction of N serial
#: executions (perfect coalescing approaches 1/N)
COALESCE_FRACTION_CEILING = 0.5


def _cell_params(n=CELLS):
    from repro.apps.registry import all_variants

    return [{"app": v.label, "nranks": NRANKS, "seed": SEED}
            for v in all_variants()[:n]]


def _pass_seconds(handle, cells):
    t0 = time.perf_counter()
    for params in cells:
        doc = request_sync(handle.host, handle.port, "cell",
                           dict(params), deadline_s=300)
        assert doc["ok"] is True, doc
    return time.perf_counter() - t0


def _coalesce_batch_seconds(handle):
    async def burst():
        clients = [ServeClient(host=handle.host, port=handle.port,
                               seed=i) for i in range(DUPLICATES)]
        try:
            t0 = time.perf_counter()
            responses = await asyncio.gather(*(
                c.request("sleep",
                          {"seconds": SLEEP_S, "token": "bench"},
                          deadline_s=60)
                for c in clients))
            dt = time.perf_counter() - t0
        finally:
            for c in clients:
                await c.close()
        assert all(r["ok"] for r in responses)
        assert sum(r["coalesced"] for r in responses) \
            == DUPLICATES - 1
        return dt

    return asyncio.run(burst())


def test_serve_contract(artifacts, tmp_path):
    cells = _cell_params()
    handle = start_background(
        ServeConfig(workers=2, queue_limit=2 * DUPLICATES,
                    drain_s=10.0, debug=True),
        cache=ResultCache(root=tmp_path / "cache"))
    try:
        cold_s = _pass_seconds(handle, cells)
        warm_s = _pass_seconds(handle, cells)
        warm_fraction = warm_s / cold_s if cold_s else 0.0

        # coalescing: disabled-cache duplicates still share one run
        # (cache the sleep would otherwise answer the repeats)
        coalesce_batch_s = _coalesce_batch_seconds(handle)
        coalesce_fraction = coalesce_batch_s / (DUPLICATES * SLEEP_S)

        spec = LoadSpec(clients=4, requests_per_client=25, seed=SEED,
                        nranks=NRANKS)
        report = run_load_sync(handle.host, handle.port, spec)
        assert report["ok"] is True

        metrics = request_sync(handle.host, handle.port,
                               "metrics")["result"]["metrics"]
    finally:
        handle.stop()

    assert warm_fraction <= WARM_FRACTION_CEILING, \
        f"warm pass at {warm_fraction:.2f} of cold exceeds " \
        f"{WARM_FRACTION_CEILING}"
    assert coalesce_fraction <= COALESCE_FRACTION_CEILING, \
        f"{DUPLICATES} duplicates cost {coalesce_fraction:.2f} of " \
        f"serial; coalescing is not sharing work"

    doc = {
        "bench": "serve",
        "cells": len(cells),
        "nranks": NRANKS,
        "seed": SEED,
        "duplicates": DUPLICATES,
        "sleep_s": SLEEP_S,
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.machine(),
        "python": platform.python_version(),
        "cold_serve_s": round(cold_s, 4),
        "warm_serve_s": round(warm_s, 4),
        "warm_fraction": round(warm_fraction, 4),
        "coalesce_batch_s": round(coalesce_batch_s, 4),
        "coalesce_fraction": round(coalesce_fraction, 4),
        "loadtest_s": report["timing"]["wall_s"],
        "loadtest_rps": report["timing"]["rps"],
        "loadtest_requests": report["schedule"]["requests"],
        "server_computations":
            metrics["server.computations"]["value"],
        "server_cache_hits": metrics["server.cache.hits"]["value"],
        "server_coalesced": metrics["server.coalesced"]["value"],
        "contracts": {
            "ratio_ceilings": {
                "warm_fraction": WARM_FRACTION_CEILING,
                "coalesce_fraction": COALESCE_FRACTION_CEILING,
            },
        },
    }
    save_artifact(artifacts, "BENCH_serve.json",
                  json.dumps(doc, indent=2, sort_keys=True))
    save_artifact(artifacts, "BENCH_serve.txt", "\n".join([
        f"serve bench: {len(cells)} cells at {NRANKS} ranks, "
        f"seed {SEED}",
        f"cold pass: {doc['cold_serve_s']}s   "
        f"warm pass: {doc['warm_serve_s']}s   "
        f"warm fraction: {doc['warm_fraction']} "
        f"(ceiling {WARM_FRACTION_CEILING})",
        f"coalescing: {DUPLICATES} duplicates of a {SLEEP_S}s task "
        f"in {doc['coalesce_batch_s']}s — "
        f"{doc['coalesce_fraction']} of serial "
        f"(ceiling {COALESCE_FRACTION_CEILING})",
        f"loadgen: {doc['loadtest_requests']} requests in "
        f"{doc['loadtest_s']}s ({doc['loadtest_rps']} req/s)",
        f"server: computations={doc['server_computations']} "
        f"cache_hits={doc['server_cache_hits']} "
        f"coalesced={doc['server_coalesced']}",
    ]))
