"""Performance bench: static lint vs full PFS replay.

The linter's pitch is answering the Table 4 question ("is this app safe
under commit/session semantics?") without executing the workload on a
simulated PFS.  This bench times both answers on the study's largest
traces and writes the comparison to ``benchmarks/output/
lint_scaling.txt``.  Assertions stick to *shape* (both sides agree on
the verdict; the linter flags every replay hazard) — wall-clock ratios
vary by machine and are reported, not asserted.
"""

import time

from benchmarks.conftest import save_artifact

from repro.core.semantics import Semantics
from repro.lint import lint_trace
from repro.lint.crossval import HAZARD_RULE_OF, crossvalidate_trace
from repro.pfs.config import PFSConfig
from repro.pfs.replay import replay_trace

#: the traces worth timing: most records / the conflict-heavy flagship
BENCH_LABELS = ("FLASH-HDF5 fbs", "FLASH-HDF5 nofbs", "LBANN-POSIX")


def _largest_runs(study8, k=3):
    runs = sorted(study8, key=lambda r: -len(r.trace.records))
    picked = {r.label: r for r in runs[:k]}
    for label in BENCH_LABELS:
        try:
            picked[label] = study8.find(label)
        except KeyError:
            pass
    return sorted(picked.values(), key=lambda r: -len(r.trace.records))


def test_bench_lint_flash(benchmark, study8):
    run = study8.find("FLASH-HDF5 fbs")
    report = benchmark(lint_trace, run.trace)
    assert report.for_rule("session-hazard")


def test_bench_replay_flash(benchmark, study8):
    run = study8.find("FLASH-HDF5 fbs")
    result = benchmark(
        replay_trace, run.trace,
        PFSConfig(semantics=Semantics.SESSION))
    assert result is not None


def test_bench_lint_vs_replay_artifact(study8, artifacts):
    """Time both pipelines over the biggest traces; render the table."""
    lines = [
        "lint vs replay: wall time to a semantics verdict",
        "(one process, shared per-trace artifacts cold each time)",
        "",
        f"{'configuration':28s} {'records':>8s} {'lint[s]':>9s} "
        f"{'replay[s]':>10s} {'ratio':>7s}  verdict",
    ]
    for run in _largest_runs(study8):
        t0 = time.perf_counter()
        report = lint_trace(run.trace, label=run.label)
        t_lint = time.perf_counter() - t0

        t0 = time.perf_counter()
        for semantics in (Semantics.COMMIT, Semantics.SESSION):
            replay_trace(run.trace, PFSConfig(semantics=semantics))
        t_replay = time.perf_counter() - t0

        # the two pipelines must agree on the hazard verdict, and the
        # lint pairs must cover the replay-side conflict pairs
        xval = crossvalidate_trace(run.trace, report, label=run.label)
        assert xval.ok, xval.false_negatives[:5]
        hazardous = any(report.for_rule(rule)
                        for rule in HAZARD_RULE_OF.values())
        verdict = "hazardous" if hazardous else "clean"
        ratio = t_replay / t_lint if t_lint > 0 else float("inf")
        lines.append(
            f"{run.label:28s} {len(run.trace.records):8d} "
            f"{t_lint:9.3f} {t_replay:10.3f} {ratio:6.1f}x  {verdict}")
    lines += [
        "",
        "replay column = one COMMIT + one SESSION execution (the two",
        "models Table 4 distinguishes); lint answers both from one pass.",
    ]
    text = "\n".join(lines)
    save_artifact(artifacts, "lint_scaling.txt", text)
    assert "FLASH-HDF5 fbs" in text
