"""Bench: the parallel cached study runner vs the serial baseline.

Times the full ``study all`` matrix (28 configurations, 4 ranks) three
ways — serial, pooled, and cache-served — and writes the measured
contract to ``benchmarks/output/BENCH_parallel_runner.json``, the
baseline CI's ``bench-regression`` job gates against.

Two contracts are asserted here, not just recorded:

* a warm cache must serve the whole matrix in <10% of the cold time
  (this holds on any machine — a cache hit is a JSON read);
* with 4+ CPUs, ``jobs=4`` must beat serial by >=2x.  Single- and
  dual-core machines cannot demonstrate that, so the speedup assertion
  is gated on ``os.cpu_count()`` while the measurement is still taken
  and written to the artifact for inspection.
"""

from __future__ import annotations

import json
import os
import platform
import time

import pytest

from benchmarks.conftest import save_artifact
from repro.study.cache import ResultCache
from repro.study.runner import matrix_json, study_cells

NRANKS = 4
SEED = 7
JOBS = 4
#: warm-cache reruns must cost under this fraction of a cold run
WARM_FRACTION_CEILING = 0.10
#: required pooled speedup — only enforceable with enough cores
SPEEDUP_FLOOR = 2.0
MIN_CPUS_FOR_SPEEDUP = 4


def _serial(cache=None):
    return study_cells(nranks=NRANKS, seed=SEED, jobs=1, cache=cache)


def _parallel(cache=None):
    return study_cells(nranks=NRANKS, seed=SEED, jobs=JOBS, cache=cache)


def test_bench_study_matrix_serial(benchmark):
    run = benchmark.pedantic(_serial, rounds=3, iterations=1)
    assert run.computed == len(run.outcomes) >= 25


def test_bench_study_matrix_parallel(benchmark):
    run = benchmark.pedantic(_parallel, rounds=3, iterations=1)
    assert run.computed == len(run.outcomes) >= 25


def test_bench_study_matrix_warm_cache(benchmark, tmp_path):
    _serial(cache=ResultCache(root=tmp_path))  # prime

    def warm():
        return _serial(cache=ResultCache(root=tmp_path))

    run = benchmark.pedantic(warm, rounds=3, iterations=1)
    assert run.cached == len(run.outcomes) >= 25


def _best_of(fn, rounds=3):
    best = None
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return result, best


def test_parallel_runner_contract(artifacts, tmp_path):
    """Measure the three modes, assert the contracts, emit the baseline."""
    serial_run, serial_s = _best_of(_serial)
    parallel_run, parallel_s = _best_of(_parallel)

    # determinism: pooled output must be byte-identical to serial
    assert matrix_json(parallel_run.payloads, nranks=NRANKS,
                       seed=SEED) == \
        matrix_json(serial_run.payloads, nranks=NRANKS, seed=SEED)

    cold_run, cold_cache_s = _best_of(
        lambda: _serial(cache=ResultCache(root=tmp_path / "cache")),
        rounds=1)
    assert cold_run.computed == len(cold_run.outcomes)
    warm_run, warm_cache_s = _best_of(
        lambda: _serial(cache=ResultCache(root=tmp_path / "cache")))
    assert warm_run.cached == len(warm_run.outcomes)
    assert matrix_json(warm_run.payloads, nranks=NRANKS, seed=SEED) == \
        matrix_json(serial_run.payloads, nranks=NRANKS, seed=SEED)

    speedup = serial_s / parallel_s if parallel_s else float("inf")
    warm_fraction = warm_cache_s / cold_cache_s if cold_cache_s \
        else 0.0
    cpus = os.cpu_count() or 1
    doc = {
        "bench": "parallel_runner",
        "cells": len(serial_run.outcomes),
        "nranks": NRANKS,
        "seed": SEED,
        "jobs": JOBS,
        "cpu_count": cpus,
        "platform": platform.machine(),
        "python": platform.python_version(),
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(speedup, 3),
        "cold_cache_s": round(cold_cache_s, 4),
        "warm_cache_s": round(warm_cache_s, 4),
        "warm_fraction": round(warm_fraction, 4),
        "contracts": {
            "warm_fraction_ceiling": WARM_FRACTION_CEILING,
            "speedup_floor": SPEEDUP_FLOOR,
            "speedup_enforced": cpus >= MIN_CPUS_FOR_SPEEDUP,
        },
    }
    save_artifact(artifacts, "BENCH_parallel_runner.json",
                  json.dumps(doc, indent=2, sort_keys=True))
    save_artifact(artifacts, "BENCH_parallel_runner.txt", "\n".join([
        f"study all matrix: {doc['cells']} cells, nranks={NRANKS}",
        f"serial      {serial_s:8.3f}s",
        f"jobs={JOBS}      {parallel_s:8.3f}s  (speedup {speedup:.2f}x,"
        f" {cpus} cpus)",
        f"cold cache  {cold_cache_s:8.3f}s",
        f"warm cache  {warm_cache_s:8.3f}s  "
        f"(fraction {warm_fraction:.3f})",
    ]))

    assert warm_fraction <= WARM_FRACTION_CEILING, (
        f"warm cache rerun took {warm_fraction:.1%} of cold "
        f"({warm_cache_s:.3f}s vs {cold_cache_s:.3f}s)")
    if cpus >= MIN_CPUS_FOR_SPEEDUP:
        assert speedup >= SPEEDUP_FLOOR, (
            f"jobs={JOBS} speedup {speedup:.2f}x < "
            f"{SPEEDUP_FLOOR}x on a {cpus}-cpu host")
