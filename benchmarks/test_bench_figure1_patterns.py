"""Bench: regenerate Figure 1 (local/global fine-grained access mixes).

Paper shape: random accesses are rare from the per-process view; the
global view is notably more random for FLASH-nofbs and LBANN; POSIX-only
writers (LAMMPS-POSIX, GTC, Nek5000, HACC-IO) are fully consecutive both
ways.
"""

from benchmarks.conftest import save_artifact
from repro.study.figures import figure1_rows, figure1_text


def test_bench_figure1(benchmark, study8, artifacts):
    rows = benchmark(figure1_rows, study8)
    by_key = {(r.label, r.view): r for r in rows}

    # POSIX streamers: fully consecutive in both views
    for label in ("LAMMPS-POSIX", "GTC-POSIX", "Nek5000-POSIX",
                  "HACC-IO-POSIX"):
        for view in ("local", "global"):
            assert by_key[(label, view)].consecutive == 1.0, (label, view)

    # LBANN: perfectly consecutive locally, mostly random globally
    assert by_key[("LBANN-POSIX", "local")].consecutive == 1.0
    assert by_key[("LBANN-POSIX", "global")].random > 0.5

    # FLASH-nofbs: global view much more random than LAMMPS-POSIX's
    assert by_key[("FLASH-HDF5 nofbs", "global")].random > 0.15

    # local randomness stays the exception across the board (paper §6.2)
    local_random = [r.random for r in rows if r.view == "local"]
    assert sum(1 for x in local_random if x < 0.5) >= 22

    save_artifact(artifacts, "figure1.txt", figure1_text(study8))
