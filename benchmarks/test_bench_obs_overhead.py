"""Bench: what does the observability layer cost?

Times a 3-configuration ``study all`` slice twice — metrics off (the
default path every study/CI run takes) and metrics on (``--metrics``,
which also replays each trace through the PFS timing model) — and
writes the measured contract to
``benchmarks/output/BENCH_obs_overhead.json`` for CI's
``bench-regression`` job.

Two gates guard the two risks:

* **metrics-off must stay free.**  The off path differs from the
  pre-obs code only by captured null-instrument calls; its absolute
  ``off_s`` is compared against the committed baseline by
  ``tools/bench_gate.py --tolerance 1.05`` (the ISSUE's 5% band),
  host-guarded by ``cpu_count`` like every absolute timing.  The
  committed baseline's ``pre_pr_off_s`` records the same slice timed
  on the pre-obs tree on the recording host, so the baseline itself
  demonstrates the off path did not regress when the layer landed.
* **metrics-on must stay bounded.**  The on/off ratio is a
  machine-independent contract (``ratio_ceilings``) enforced on every
  host: instruments plus the per-cell PFS probe may cost at most
  ``ON_OFF_CEILING``x the plain run.
"""

from __future__ import annotations

import json
import os
import platform
import time

from benchmarks.conftest import save_artifact
from repro.apps.registry import find_variant
from repro.obs import registry as obs
from repro.study.cache import ResultCache
from repro.study.runner import matrix_json, study_cells

NRANKS = 4
SEED = 7
ROUNDS = 5
#: metrics-on (instruments + per-cell PFS replay probe) vs metrics-off
ON_OFF_CEILING = 3.0
#: the same slice timed on the pre-obs tree (recording-host provenance,
#: best of 5): the committed ``off_s`` baseline must sit within 5% of it
PRE_PR_OFF_S = 0.1802


def _slice_variants():
    return [find_variant("FLASH", "HDF5"),
            find_variant("LAMMPS", "ADIOS"),
            find_variant("pF3D-IO", "POSIX")]


def _run_slice():
    return study_cells(nranks=NRANKS, seed=SEED,
                       variants=_slice_variants(), jobs=1,
                       cache=ResultCache.disabled())


def _best_of(fn, rounds=ROUNDS):
    best = None
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return result, best


def test_bench_metrics_off(benchmark):
    run = benchmark.pedantic(_run_slice, rounds=3, iterations=1)
    assert run.computed == len(run.outcomes) == 3


def test_bench_metrics_on(benchmark):
    def observed():
        with obs.collecting(trace=True):
            return _run_slice()

    run = benchmark.pedantic(observed, rounds=3, iterations=1)
    assert run.computed == len(run.outcomes) == 3


def test_obs_overhead_contract(artifacts):
    """Measure off vs on, assert the ratio contract, emit the baseline."""
    off_run, off_s = _best_of(_run_slice)

    def observed():
        with obs.collecting(trace=True) as reg:
            run = _run_slice()
            observed.snapshot = reg.snapshot()
        return run

    on_run, on_s = _best_of(observed)
    snapshot = observed.snapshot

    # the observed run must not change a byte of the report
    assert matrix_json(on_run.payloads, nranks=NRANKS, seed=SEED) == \
        matrix_json(off_run.payloads, nranks=NRANKS, seed=SEED)
    # and it must actually observe every layer of the stack
    layers = {name.split(".")[0] for name in snapshot}
    assert {"sim", "pfs", "posix", "study"} <= layers

    ratio = on_s / off_s if off_s else float("inf")
    doc = {
        "bench": "obs_overhead",
        "cells": len(off_run.outcomes),
        "nranks": NRANKS,
        "seed": SEED,
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.machine(),
        "python": platform.python_version(),
        "off_s": round(off_s, 4),
        "on_s": round(on_s, 4),
        "on_off_ratio": round(ratio, 3),
        "metrics_collected": len(snapshot),
        "pre_pr_off_s": PRE_PR_OFF_S,
        "contracts": {
            "ratio_ceilings": {"on_off_ratio": ON_OFF_CEILING},
        },
    }
    save_artifact(artifacts, "BENCH_obs_overhead.json",
                  json.dumps(doc, indent=2, sort_keys=True))
    save_artifact(artifacts, "BENCH_obs_overhead.txt", "\n".join([
        f"study all slice: {doc['cells']} cells, nranks={NRANKS}",
        f"metrics off {off_s:8.3f}s",
        f"metrics on  {on_s:8.3f}s  (ratio {ratio:.2f}x, "
        f"{doc['metrics_collected']} instruments)",
    ]))

    assert ratio <= ON_OFF_CEILING, (
        f"metrics-on run cost {ratio:.2f}x the metrics-off run "
        f"(ceiling {ON_OFF_CEILING}x)")
