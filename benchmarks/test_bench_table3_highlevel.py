"""Bench: regenerate Table 3 (high-level access patterns) from traces.

Paper shape (cells must contain the paper's members):

* N-N consecutive: ENZO, pF3D-IO, HACC-IO, NWChem
* N-M strided: MACSio
* N-1 consecutive: LBANN, VASP; N-1 strided: Chombo, FLASH-nofbs,
  ParaDiS (both), MILC-QCD Parallel
* M-M consecutive: GAMESS, LAMMPS-ADIOS
* M-1 strided: LAMMPS-MPIIO; M-1 strided cyclic: FLASH-fbs, VPIC-IO
* 1-1 consecutive: GTC, Nek5000, QMCPACK, MILC-QCD Serial,
  LAMMPS-{HDF5, NetCDF, POSIX}
"""

from benchmarks.conftest import save_artifact
from repro.study.tables import table3_cells, table3_text

EXPECTED = {
    ("N-N", "consecutive"): {"ENZO-HDF5", "pF3D-IO-POSIX",
                             "HACC-IO-MPI-IO", "HACC-IO-POSIX",
                             "NWChem-POSIX"},
    ("N-M", "strided"): {"MACSio-Silo"},
    ("N-1", "consecutive"): {"LBANN-POSIX", "VASP-POSIX"},
    ("N-1", "strided"): {"Chombo-HDF5", "FLASH-HDF5 nofbs",
                         "ParaDiS-HDF5", "ParaDiS-POSIX",
                         "MILC-QCD-POSIX Parallel"},
    ("M-M", "consecutive"): {"GAMESS-POSIX", "LAMMPS-ADIOS"},
    ("M-1", "strided"): {"LAMMPS-MPI-IO"},
    ("M-1", "strided cyclic"): {"FLASH-HDF5 fbs", "VPIC-IO-HDF5"},
    ("1-1", "consecutive"): {"GTC-POSIX", "Nek5000-POSIX", "QMCPACK-HDF5",
                             "MILC-QCD-POSIX Serial", "LAMMPS-HDF5",
                             "LAMMPS-NetCDF", "LAMMPS-POSIX"},
}


def test_bench_table3(benchmark, study8, artifacts):
    cells = benchmark(table3_cells, study8)
    for key, members in EXPECTED.items():
        assert members <= set(cells.get(key, [])), key
    save_artifact(artifacts, "table3.txt", table3_text(study8))
