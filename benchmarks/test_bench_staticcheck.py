"""Performance bench: static prediction cost vs rank count.

The static checker's pitch is the "any nprocs" claim: its cost is a
function of the *plan's structure* (statement instances), not the rank
count, because all-rank families stay symbolic.  This bench times the
FLASH plan build + evaluation from 4 to 4096 ranks and compares one
static verdict against one dynamic trace + detection at simulator scale.
Assertions stick to shape (the Table-4 verdict is rank-independent and
matches the dynamic side); wall-clock ratios are reported, not asserted.
"""

import time

from benchmarks.conftest import save_artifact

from repro.apps.registry import APPLICATIONS
from repro.staticcheck.engine import evaluate
from repro.staticcheck.soundness import staticcheck_variant

RANK_SWEEP = (4, 64, 1024, 4096)


def _flash():
    return next(v for spec in APPLICATIONS for v in spec.variants
                if v.label == "FLASH-HDF5 fbs")


def test_bench_flash_static_evaluate(benchmark):
    variant = _flash()
    plan = variant.io_plan(nranks=1024, seed=7)
    pred = benchmark(evaluate, plan)
    assert not any(pred.flags("commit").values())
    assert pred.flags("session")["WAW-D"]


def test_bench_static_rank_scaling_artifact(artifacts):
    """Static cost across the rank sweep + one dynamic reference."""
    variant = _flash()
    lines = [
        "static conflict prediction: cost vs rank count (FLASH-HDF5 fbs)",
        "(plan build + abstract evaluation; dynamic = trace + detect)",
        "",
        f"{'nranks':>8s} {'groups':>7s} {'pairs':>7s} {'static[s]':>10s}",
    ]
    groups = set()
    for nranks in RANK_SWEEP:
        t0 = time.perf_counter()
        pred = evaluate(variant.io_plan(nranks=nranks, seed=7))
        t_static = time.perf_counter() - t0
        # the verdict is rank-count-invariant, as is the group count
        assert not any(pred.flags("commit").values())
        assert pred.flags("session")["WAW-S"]
        assert pred.flags("session")["WAW-D"]
        groups.add(pred.groups)
        lines.append(f"{nranks:>8d} {pred.groups:>7d} "
                     f"{pred.pairs_checked:>7d} {t_static:>10.3f}")
    assert len(groups) == 1

    t0 = time.perf_counter()
    cell = staticcheck_variant(variant, nranks=8, seed=7)
    t_dynamic = time.perf_counter() - t0
    assert cell["sound"] and cell["precision"] == 1.0
    lines += [
        "",
        f"dynamic cross-validation at 8 ranks: {t_dynamic:.3f}s "
        f"(sound, precision {cell['precision']:.4f})",
    ]
    save_artifact(artifacts, "staticcheck_scaling.txt", "\n".join(lines))
