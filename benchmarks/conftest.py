"""Shared fixtures for the benchmark harness.

Every table/figure bench renders its artifact into ``benchmarks/output/``
(so the regenerated evaluation is inspectable after a run) and asserts
the paper's shape before timing the computation.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.study.runner import StudyResults, run_study

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def study8() -> StudyResults:
    """The full 28-configuration campaign at 8 ranks (shared)."""
    return run_study(nranks=8, seed=7)


@pytest.fixture(scope="session")
def artifacts() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def save_artifact(directory: Path, name: str, text: str) -> None:
    (directory / name).write_text(text + "\n")
