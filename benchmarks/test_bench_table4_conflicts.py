"""Bench: regenerate Table 4 (conflicts under session semantics).

Paper shape:

* FLASH: WAW-S and WAW-D (the only cross-process conflict in the study);
  both disappear under commit semantics.
* ENZO RAW-S; NWChem WAW-S + RAW-S; pF3D-IO RAW-S; MACSio WAW-S;
  GAMESS WAW-S; LAMMPS-ADIOS WAW-S; LAMMPS-NetCDF WAW-S — unchanged
  under commit semantics.
* Everything else clean, so 16 of 17 applications tolerate session
  semantics (FLASH needs commit).
"""

from benchmarks.conftest import save_artifact
from repro.core.semantics import Semantics
from repro.study.tables import table4_rows, table4_text

EXPECTED_SESSION = {
    "FLASH-HDF5 fbs": {"WAW-S", "WAW-D"},
    "FLASH-HDF5 nofbs": {"WAW-S", "WAW-D"},
    "ENZO-HDF5": {"RAW-S"},
    "NWChem-POSIX": {"WAW-S", "RAW-S"},
    "pF3D-IO-POSIX": {"RAW-S"},
    "MACSio-Silo": {"WAW-S"},
    "GAMESS-POSIX": {"WAW-S"},
    "LAMMPS-ADIOS": {"WAW-S"},
    "LAMMPS-NetCDF": {"WAW-S"},
}


def test_bench_table4(benchmark, study8, artifacts):
    rows = benchmark(table4_rows, study8)
    by_label = {r["label"]: r for r in rows}
    for label, row in by_label.items():
        session = {k for k, v in row["session"].items() if v}
        assert session == EXPECTED_SESSION.get(label, set()), label
        commit = {k for k, v in row["commit"].items() if v}
        if label.startswith("FLASH"):
            assert not commit, "FLASH must be commit-clean"
        else:
            assert commit == session, label
    save_artifact(artifacts, "table4.txt", table4_text(study8))


def test_bench_headline_16_of_17(benchmark, study8, artifacts):
    def compute():
        return {run.variant.application for run in study8
                if run.report.conflicts(
                    Semantics.SESSION).cross_process_only}

    apps_needing_more_than_session = benchmark.pedantic(
        compute, rounds=1, iterations=1)
    assert apps_needing_more_than_session == {"FLASH"}
    verdicts = "\n".join(
        f"{run.label:28s} -> "
        f"{run.report.weakest_sufficient_semantics().title}"
        for run in study8)
    save_artifact(artifacts, "verdicts.txt", verdicts)
