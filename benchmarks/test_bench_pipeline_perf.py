"""Performance benches for the analysis pipeline itself.

These time the stages a user pays for on every trace: offset
reconstruction, conflict detection across both semantics, and the
end-to-end analyze() call on the densest application trace.
"""

import pytest

from repro.core.conflicts import detect_conflicts
from repro.core.offsets import reconstruct_offsets
from repro.core.records import group_by_path
from repro.core.report import analyze
from repro.core.semantics import Semantics


@pytest.fixture(scope="module")
def flash_trace(study8):
    return study8.find("FLASH-HDF5 fbs").trace


def test_bench_offset_reconstruction(benchmark, flash_trace):
    accs = benchmark(reconstruct_offsets, flash_trace.records)
    assert len(accs) > 100


def test_bench_conflict_detection_session(benchmark, flash_trace):
    tables = group_by_path(reconstruct_offsets(flash_trace.records))

    def run():
        return detect_conflicts(flash_trace, tables, Semantics.SESSION)

    cs = benchmark(run)
    assert cs.flags["WAW-D"]


def test_bench_full_analysis(benchmark, flash_trace):
    def run():
        report = analyze(flash_trace)
        report.conflicts(Semantics.SESSION)
        report.conflicts(Semantics.COMMIT)
        _ = report.sharing, report.local_mix, report.global_mix
        return report

    report = benchmark(run)
    assert report.weakest_sufficient_semantics() is Semantics.COMMIT


def test_bench_tracing_overhead(benchmark):
    """Cost of running one mid-size proxy end-to-end under tracing."""
    from repro.apps.registry import find_variant

    variant = find_variant("NWChem", "POSIX")
    trace = benchmark.pedantic(
        lambda: variant.run(nranks=4), rounds=3, iterations=1)
    assert len(trace.records) > 100


def test_bench_conflict_engine_python_oracle(benchmark, flash_trace):
    """The per-pair binary-search oracle, for comparison with the
    vectorized default measured above."""
    tables = group_by_path(reconstruct_offsets(flash_trace.records))

    def run():
        return detect_conflicts(flash_trace, tables, Semantics.SESSION,
                                engine="python")

    cs = benchmark(run)
    assert cs.flags["WAW-D"]


def test_bench_conflict_counting_fast_path(benchmark, flash_trace):
    """Count-only analysis (pure numpy, no pair objects) — the path to
    use on very large traces."""
    from repro.core.conflicts import count_conflicts

    tables = group_by_path(reconstruct_offsets(flash_trace.records))
    counts = benchmark(count_conflicts, flash_trace, tables,
                       Semantics.SESSION)
    assert counts["WAW-D"] > 0


def test_bench_full_study(benchmark):
    """The whole §6 campaign: trace + analyze all 28 configurations."""
    from repro.core.semantics import Semantics as _S
    from repro.study.runner import run_study

    def campaign():
        results = run_study(nranks=8, seed=7)
        for run in results:
            run.report.conflicts(_S.SESSION)
        return results

    results = benchmark.pedantic(campaign, rounds=1, iterations=1)
    assert len(results) == 28
