"""Benches for the implemented paper extensions (§2.3 / §3.2 / §7).

* Tunable consistency ("hints"): a hybrid configuration that keeps
  commit semantics only under FLASH's output tree and session semantics
  elsewhere is as correct as full strong consistency and nearly as fast
  as full relaxed.
* UnifyFS lamination: one namespace operation publishes an entire
  checkpoint.
* Metadata-conflict analysis (the paper's future work) across the
  whole study.
"""

import repro
from benchmarks.conftest import save_artifact
from repro.core.semantics import Semantics
from repro.pfs.client import PFSimulator
from repro.pfs.config import PFSConfig
from repro.pfs.replay import replay_trace
from repro.util.tables import AsciiTable


def test_bench_tunable_semantics(benchmark, artifacts):
    trace = repro.run("FLASH", io_library="HDF5", nranks=8,
                      options={"steps": 100})

    def replay_hybrid():
        return replay_trace(trace, PFSConfig(
            semantics=Semantics.SESSION, settle_order="client",
            semantics_overrides={"/flash": Semantics.COMMIT}))

    hybrid = benchmark(replay_hybrid)
    strong = replay_trace(trace, PFSConfig(semantics=Semantics.STRONG))
    relaxed = replay_trace(trace, PFSConfig(
        semantics=Semantics.SESSION, settle_order="client"))

    assert relaxed.corrupted_files           # relaxed-everywhere breaks
    assert hybrid.clean and strong.clean     # hybrid = strong correctness
    assert hybrid.makespan < strong.makespan  # at relaxed-ish cost

    table = AsciiTable(["config", "makespan (ms)", "corrupted files",
                        "MDS lock reqs"],
                       title="Tunable semantics: FLASH replay")
    for name, res in (("strong everywhere", strong),
                      ("session everywhere", relaxed),
                      ("hybrid (commit under /flash)", hybrid)):
        table.add_row(name, f"{res.makespan * 1e3:.2f}",
                      len(res.corrupted_files),
                      res.simulator.mds.lock_requests)
    save_artifact(artifacts, "tunable_semantics.txt", table.render())


def test_bench_lamination(benchmark):
    """Lamination publishes an N-1 checkpoint in one operation."""
    def run():
        sim = PFSimulator(PFSConfig(semantics=Semantics.COMMIT))
        clients = [sim.client(i) for i in range(16)]
        for c in clients:
            c.open("/ckpt")
            c.write("/ckpt", c.client_id * 4096, b"d" * 4096)
        clients[0].laminate("/ckpt")
        reader = sim.client(99)
        reader.advance_to(max(c.now for c in clients))
        out = reader.read("/ckpt", 0, 16 * 4096)
        return out

    out = benchmark(run)
    assert not out.is_stale


def test_bench_metadata_conflicts(benchmark, study8, artifacts):
    """The §7 extension, across the study: shared-output applications
    carry cross-process namespace dependencies that relaxed-metadata
    systems (GekkoFS/BatchFS) must synchronize."""
    def analyze_all():
        return {run.label: run.report.metadata_conflicts
                for run in study8}

    results = benchmark(analyze_all)
    table = AsciiTable(["configuration", "pairs", "cross-process",
                        "kinds"],
                       title="Metadata produce/consume dependencies")
    for label, mc in results.items():
        table.add_row(label, len(mc), len(mc.cross_process),
                      ", ".join(sorted(mc.kinds())) or "-")
    # shared-file apps must show cross-process namespace dependencies
    assert results["FLASH-HDF5 fbs"].cross_process
    assert results["pF3D-IO-POSIX"].cross_process
    # a rank-0-only app has none
    assert not results["GTC-POSIX"].cross_process
    save_artifact(artifacts, "metadata_conflicts.txt", table.render())


def test_bench_compatibility_matrix(benchmark, study8, artifacts):
    """The §1 gap, filled: the full application x file-system matrix."""
    from repro.study.compat import (
        compat_text,
        compatibility_matrix,
        safest_relaxed_filesystems,
    )

    matrix = benchmark(compatibility_matrix, study8)
    compatible = sum(1 for ok in matrix.values() if ok)
    # the paper's conclusion in matrix form: the overwhelming majority
    # of (application, file system) combinations are safe
    assert compatible / len(matrix) > 0.8
    safest = {fs.name for fs in safest_relaxed_filesystems(study8)}
    assert "UnifyFS" in safest
    save_artifact(artifacts, "compatibility_matrix.txt",
                  compat_text(study8))
