"""Bench: regenerate Table 2 (build configs) and Table 5 (run configs)."""

from benchmarks.conftest import save_artifact
from repro.apps.registry import APPLICATIONS
from repro.study.tables import table2_text, table5_text


def test_bench_table2(benchmark, artifacts):
    text = benchmark(table2_text)
    # paper: three compiler/MPI combinations (plus binary-only rows)
    assert "Intel 19.1.0" in text
    assert "MVAPICH 2.2" in text
    assert "GCC 7.3.0" in text
    save_artifact(artifacts, "table2.txt", text)


def test_bench_table5(benchmark, artifacts):
    text = benchmark(table5_text)
    assert len(APPLICATIONS) == 18
    for spec in APPLICATIONS:
        assert spec.name in text
    save_artifact(artifacts, "table5.txt", text)
