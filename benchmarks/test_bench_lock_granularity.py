"""Ablation bench: lock granularity under strong semantics (§3.1).

"Locks may be applied to blocks, file segments, full files, or other
granularities ... the metadata server, where the locks are normally
maintained, may become a bottleneck."  We sweep the granularity on a
disjoint N-1 checkpoint: whole-file locks serialize everything (false
sharing), block locks restore parallelism, and the remaining cost is the
MDS round-trip — which relaxed semantics removes entirely.
"""

import pytest

from benchmarks.conftest import save_artifact
from repro.core.semantics import Semantics
from repro.pfs.client import PFSimulator
from repro.pfs.config import PFSConfig
from repro.util.tables import AsciiTable

NCLIENTS = 16
STEPS = 16
BLOCK = 4096


def checkpoint(config: PFSConfig) -> PFSimulator:
    sim = PFSimulator(config)
    clients = [sim.client(i) for i in range(NCLIENTS)]
    for step in range(STEPS):
        for c in clients:
            offset = (step * NCLIENTS + c.client_id) * BLOCK
            c.write("/ckpt", offset, b"x" * BLOCK)
    return sim


GRANULARITIES = {
    "whole-file": 0,
    "1 MiB segments": 1 << 20,
    "64 KiB blocks": 1 << 16,
    "4 KiB blocks": 4096,
}


@pytest.mark.parametrize("name", list(GRANULARITIES))
def test_bench_lock_granularity(benchmark, name):
    gran = GRANULARITIES[name]

    def run():
        return checkpoint(PFSConfig(semantics=Semantics.STRONG,
                                    lock_mode="range",
                                    lock_granularity=gran))

    sim = benchmark(run)
    assert sim.stats.makespan > 0


def test_bench_granularity_shape(benchmark, artifacts):
    table = AsciiTable(
        ["locking", "makespan (ms)", "lock waits", "total wait (ms)"],
        title="Strong-semantics lock granularity on a disjoint N-1 "
              "checkpoint")
    def sweep():
        return {name: checkpoint(PFSConfig(
                    semantics=Semantics.STRONG, lock_mode="range",
                    lock_granularity=gran))
                for name, gran in GRANULARITIES.items()}

    sims = benchmark.pedantic(sweep, rounds=1, iterations=1)
    makespans = {}
    for name, sim in sims.items():
        makespans[name] = sim.stats.makespan
        table.add_row(name, f"{sim.stats.makespan * 1e3:.2f}",
                      sim.locks.waits,
                      f"{sim.locks.total_wait * 1e3:.2f}")
    relaxed = checkpoint(PFSConfig(semantics=Semantics.COMMIT))
    table.add_row("(commit semantics, no locks)",
                  f"{relaxed.stats.makespan * 1e3:.2f}", "-", "-")

    # shape: finer granularity helps; relaxed beats everything
    assert makespans["whole-file"] > makespans["4 KiB blocks"]
    assert relaxed.stats.makespan < makespans["4 KiB blocks"]
    save_artifact(artifacts, "lock_granularity.txt", table.render())
