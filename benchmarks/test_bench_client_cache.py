"""Bench: the §6.2 optimization claim, quantified.

"PFS performance can be improved by read-ahead or by aggregating
delayed writes" — replay a consecutive-pattern application (HACC-IO
POSIX) and a strided one (ParaDiS POSIX) with and without the client
cache; aggregation collapses the consecutive stream into a few large
transfers while the strided stream barely benefits.
"""

import pytest

import repro
from benchmarks.conftest import save_artifact
from repro.core.semantics import Semantics
from repro.pfs.config import PFSConfig
from repro.pfs.replay import replay_trace
from repro.util.tables import AsciiTable

APPS = {
    "HACC-IO (consecutive)": ("HACC-IO", "POSIX"),
    "ParaDiS (strided)": ("ParaDiS", "POSIX"),
    "LBANN (sequential reads)": ("LBANN", "POSIX"),
}


@pytest.fixture(scope="module")
def traces():
    return {name: repro.run(app, io_library=lib, nranks=8)
            for name, (app, lib) in APPS.items()}


def replay(trace, cache: bool):
    return replay_trace(trace, PFSConfig(semantics=Semantics.COMMIT,
                                         client_cache=cache))


@pytest.mark.parametrize("name", list(APPS))
def test_bench_cached_replay(benchmark, traces, name):
    trace = traces[name]
    res = benchmark(replay, trace, True)
    assert res.clean


def test_bench_cache_benefit_shape(benchmark, traces, artifacts):
    def sweep():
        rows = {}
        for name, trace in traces.items():
            plain = replay(trace, cache=False)
            cached = replay(trace, cache=True)
            rows[name] = (plain, cached)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = AsciiTable(
        ["workload", "OST reqs (no cache)", "OST reqs (cache)",
         "makespan gain"],
        title="Client write aggregation + read-ahead (commit semantics)")
    gains = {}
    for name, (plain, cached) in rows.items():
        reqs_plain = sum(o.queue.requests for o in plain.simulator.osts)
        reqs_cached = sum(o.queue.requests
                          for o in cached.simulator.osts)
        gain = plain.makespan / cached.makespan
        gains[name] = (reqs_plain / max(1, reqs_cached), gain)
        table.add_row(name, reqs_plain, reqs_cached, f"{gain:.2f}x")

    # consecutive workload aggregates far better than the strided one
    assert gains["HACC-IO (consecutive)"][0] > \
        2 * gains["ParaDiS (strided)"][0]
    # read-ahead cuts server requests for the sequential reader
    assert gains["LBANN (sequential reads)"][0] > 1.5
    save_artifact(artifacts, "client_cache.txt", table.render())
